//! StorM: tenant-defined cloud storage middle-box services.
//!
//! Umbrella crate re-exporting the whole workspace. See the individual
//! crates for details; [`storm_core`] holds the paper's contribution.

#![forbid(unsafe_code)]

pub use storm_block as block;
pub use storm_cloud as cloud;
pub use storm_core as core;
pub use storm_crypto as crypto;
pub use storm_extfs as extfs;
pub use storm_faults as faults;
pub use storm_iscsi as iscsi;
pub use storm_net as net;
pub use storm_nvmeq as nvmeq;
pub use storm_qos as qos;
pub use storm_services as services;
pub use storm_sim as sim;
pub use storm_telemetry as telemetry;
pub use storm_workloads as workloads;

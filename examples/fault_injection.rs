//! Fault injection: replay the paper's Figure-13 failure with `storm-faults`.
//!
//! An OLTP database runs through a replication middle-box with two backup
//! replicas. A fault plan mutes one replica's storage host at t=4s — it
//! keeps serving I/O but its responses never leave the host. The relay's
//! watchdog times the stuck requests out, retries with backoff, evicts
//! the replica, and the replication service re-serves its unfinished
//! reads from a surviving copy. The guest never sees an error.
//!
//! Run with `cargo run --release --example fault_injection`.

use storm::cloud::{Cloud, CloudConfig};
use storm::core::relay::{ActiveRelayMb, ReplicaTarget};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm::faults::{Fault, FaultPlan, FaultRunner};
use storm::services::ReplicationService;
use storm::sim::{SimDuration, SimTime};
use storm::workloads::{OltpConfig, OltpWorkload};

const RUN_SECS: u64 = 10;
const FAIL_AT_SECS: u64 = 4;

fn main() {
    let mut cfg = CloudConfig {
        storage_hosts: 3,
        backing_bytes: 8 << 30,
        ..CloudConfig::default()
    };
    cfg.target.disk.cache_blocks = 32_768;
    let mut cloud = Cloud::build(cfg);
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(1 << 30, 0);
    let rep1 = cloud.create_volume(1 << 30, 1);
    let rep2 = cloud.create_volume(1 << 30, 2);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec {
            host_idx: 3,
            mode: RelayMode::Active,
            services: vec![Box::new(ReplicationService::new(2, true))],
            replicas: vec![
                ReplicaTarget {
                    portal: rep1.portal,
                    iqn: rep1.iqn.clone(),
                },
                ReplicaTarget {
                    portal: rep2.portal,
                    iqn: rep2.iqn.clone(),
                },
            ],
        }],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:mysql",
        &vol,
        Box::new(OltpWorkload::new(OltpConfig {
            threads: 2,
            reads_per_txn: 2,
            area_sectors: 1 << 19,
            duration: SimDuration::from_secs(RUN_SECS),
        })),
        77,
        false,
    );

    let plan = FaultPlan::new(0xF1613).at(
        SimTime::from_secs(FAIL_AT_SECS),
        Fault::MuteTarget {
            host: rep1.storage_host as u32,
        },
    );
    let mut runner = FaultRunner::new(plan.schedule());
    runner.arm_cloud(&mut cloud);
    let (mb_node, mb_app) = (deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap());
    assert!(runner.arm_mb(&mut cloud, 0, mb_node, mb_app));

    println!("fault plan (seed 0xF1613):");
    println!(
        "  t={FAIL_AT_SECS}s  mute storage host {} (replica 0)",
        rep1.storage_host
    );
    println!();
    runner.run(&mut cloud, SimTime::from_secs(RUN_SECS + 2));

    let client = cloud.client_mut(0, app);
    let errors = client.stats.errors;
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<OltpWorkload>()
        .unwrap();
    println!("TPS timeline (failure at t={FAIL_AT_SECS}s):");
    for s in 0..RUN_SECS as usize {
        let tps = w.mean_tps(s, s + 1);
        let bar = "#".repeat((tps / 400.0).round() as usize);
        let mark = if s == FAIL_AT_SECS as usize {
            "  <- replica muted"
        } else {
            ""
        };
        println!("  t={s:>2}s {tps:>7.0} tps {bar}{mark}");
    }
    println!();

    let relay = cloud
        .net
        .app_mut(mb_node, mb_app)
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let svc = relay
        .service(0)
        .unwrap()
        .downcast_ref::<ReplicationService>()
        .unwrap();
    println!("recovery:");
    println!("  guest-visible I/O errors : {errors}");
    println!("  alive replicas           : {} of 2", svc.alive_replicas());
    println!("  reads re-dispatched      : {}", svc.stats.retried_reads);
    println!("  replica write failures   : {}", svc.stats.write_failures);
    println!();

    let trace = runner.trace();
    println!("fault trace ({} events, first 6):", trace.len());
    for line in trace.iter().take(6) {
        println!("  {line}");
    }

    assert_eq!(errors, 0, "the database must never see an I/O error");
    assert_eq!(svc.alive_replicas(), 1, "the muted replica must be evicted");
    assert!(
        svc.stats.retried_reads > 0,
        "unfinished reads must be re-served"
    );
    println!("\nOK: replica eliminated, unfinished reads re-served, zero lost reads.");
}

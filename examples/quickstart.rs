//! Quickstart: build a cloud, deploy a StorM encryption middle-box for a
//! tenant volume, run I/O through it, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::{MbSpec, RelayMode, ServiceSpec, StormPlatform, TenantPolicy, VolumePolicy};
use storm::services::EncryptionService;
use storm::telemetry::names::tenant_scoped;
use storm::telemetry::{analyze, MetricsRegistry, Recorder};
use storm_block::BlockDevice;
use storm_sim::SimTime;

/// A tiny workload: write a secret, read it back, verify.
struct Quickstart {
    write: Option<ReqId>,
    secret: Vec<u8>,
}

impl Workload for Quickstart {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        println!("[vm] volume attached; writing 4 KiB of sensitive data");
        self.write = Some(io.write(128, Bytes::from(self.secret.clone())));
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, kind: IoKind, result: IoResult) {
        assert!(result.ok);
        if Some(req) == self.write {
            println!("[vm] write acknowledged in {}", result.latency);
            io.read(128, 8);
        } else {
            assert_eq!(kind, IoKind::Read);
            assert_eq!(
                &result.data[..],
                &self.secret[..],
                "decryption must round-trip"
            );
            println!("[vm] read back and verified in {}", result.latency);
            io.stop();
        }
    }
}

fn main() {
    // 1. The tenant's policy document (what they submit to the provider).
    let policy = TenantPolicy {
        tenant: 1,
        volumes: vec![VolumePolicy {
            vm: "web-1".into(),
            volume_gb: 1,
            services: vec![ServiceSpec::new("encryption").param("cipher", "aes-256-xts")],
        }],
    };
    policy.validate().expect("policy is well-formed");
    println!(
        "[policy] validated: {} service(s) for vm {}",
        policy.volumes[0].services.len(),
        policy.volumes[0].vm
    );

    // 2. The provider builds the cloud and deploys the chain, with the
    //    telemetry recorder armed across every layer.
    let mut cloud = Cloud::build(CloudConfig::default());
    let recorder = Arc::new(Recorder::new());
    cloud.set_trace_hook(Recorder::hook(&recorder));
    let platform = StormPlatform::default();
    let volume = cloud.create_volume(1 << 30, 0);
    let key = [0x42u8; 64];
    let mbs = vec![MbSpec::with_services(
        3,
        RelayMode::Active,
        vec![Box::new(EncryptionService::aes_xts(&key))],
    )];
    let deployment = platform.deploy_chain(&mut cloud, &volume, (1, 2), mbs);
    println!(
        "[platform] gateways on compute1/compute2, encryption middle-box on compute3 ({} chain rules)",
        deployment.forward_chain.rule_count()
    );

    // 3. Attach the volume with the paper's atomic steering window.
    let secret = b"attack at dawn..".repeat(256);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:web-1",
        &volume,
        Box::new(Quickstart {
            write: None,
            secret: secret.clone(),
        }),
        1,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(5_000_000_000));

    // 4. The workload verified plaintext round-trips; check the at-rest
    //    bytes are ciphertext.
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready());
    assert_eq!(client.stats.errors, 0);
    let mut at_rest = vec![0u8; 4096];
    volume.shared.clone().read(128, &mut at_rest).unwrap();
    assert_ne!(at_rest, secret, "the volume must hold ciphertext");
    println!("[volume] at-rest bytes differ from plaintext: encryption is transparent to the VM");

    // 5. Telemetry: registry counters plus the per-hop trace breakdown.
    let mut registry = MetricsRegistry::new();
    let client = cloud.client_mut(0, app);
    registry.inc(&tenant_scoped("vm.reads", 1), client.stats.reads.count());
    registry.inc(&tenant_scoped("vm.writes", 1), client.stats.writes.count());
    registry.merge_histogram(
        &tenant_scoped("vm.latency", 1),
        client.stats.latency.histogram(),
    );
    print!("[metrics]\n{}", registry.report());
    let report = analyze::attribute(&recorder.events());
    print!(
        "[trace] {} events recorded\n{}",
        recorder.len(),
        report.table()
    );
    println!("quickstart complete");
}

//! Per-hop latency attribution for an encrypted FTP transfer — the
//! software analogue of the paper's Figure 10 CPU breakdown.
//!
//! An FTP server VM uploads a file over a StorM encryption middle-box
//! (active relay). Every layer reports trace events through the armed
//! recorder: the guest's virtio work, gateway forwarding, the relay
//! framework, the cipher service, the target's CPU and the disk model.
//! The analyzer stitches them per request (source port + ITT) and prints
//! which hop dominates end-to-end latency.
//!
//! ```text
//! cargo run --release --example trace_breakdown
//! ```

use std::sync::Arc;

use storm::cloud::{Cloud, CloudConfig};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm::services::EncryptionService;
use storm::telemetry::{analyze, Recorder};
use storm::workloads::{FtpDirection, FtpWorkload};
use storm_sim::{SimDuration, SimTime};

fn main() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let recorder = Arc::new(Recorder::new());
    cloud.set_trace_hook(Recorder::hook(&recorder));

    let platform = StormPlatform::default();
    let volume = cloud.create_volume(256 << 20, 0);
    let mut cipher = EncryptionService::stream_cipher(&[0x11u8; 32], &[0x22u8; 12]);
    cipher.set_per_byte_cost(SimDuration::from_nanos(4));
    let deployment = platform.deploy_chain(
        &mut cloud,
        &volume,
        (1, 2),
        vec![MbSpec::with_services(
            3,
            RelayMode::Active,
            vec![Box::new(cipher)],
        )],
    );

    let total = 16u64 << 20;
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:ftp",
        &volume,
        Box::new(FtpWorkload::new(FtpDirection::Upload, total)),
        7,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(30_000_000_000));

    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "login failed");
    assert_eq!(client.stats.errors, 0);
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<FtpWorkload>()
        .unwrap();
    println!(
        "uploaded {} MiB at {:.1} MB/s through the encryption middle-box",
        w.done_bytes >> 20,
        w.throughput_mbps().expect("transfer finished")
    );

    let report = analyze::attribute(&recorder.events());
    println!("\nlatency attribution ({} trace events):", recorder.len());
    print!("{}", report.table());
    let sum: f64 = report.rows.iter().map(|r| r.share).sum();
    assert!((sum - 100.0).abs() < 0.5, "shares sum to {sum}%");
    assert!(
        report.rows.iter().any(|r| r.label == "service:encryption"),
        "cipher stage missing from trace"
    );
}

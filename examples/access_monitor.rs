//! Case study 1: the storage access monitor catching a malware install.
//!
//! Replays the `HEUR:Backdoor.Linux.Ganiw.a` installation (Table III of
//! the paper) against a monitored volume and prints what the middle-box
//! reconstructed — all from raw block traffic, with zero software inside
//! the tenant VM.
//!
//! ```text
//! cargo run --release --example access_monitor
//! ```

use storm::cloud::{Cloud, CloudConfig};
use storm::core::relay::ActiveRelayMb;
use storm::core::semantics::FsEvent;
use storm::core::{MbSpec, Reconstructor, RelayMode, StormPlatform};
use storm::services::{MonitorConfig, MonitorService};
use storm::workloads::malware;
use storm::workloads::postmark::install_image;
use storm::workloads::TraceWorkload;
use storm_sim::{SimDuration, SimTime};

fn main() {
    // A realistic pre-infection system image, and the scripted install.
    let mut image = malware::build_system_image();
    let (trace, steps) = malware::ganiw_trace(image.clone());
    println!(
        "replaying {} installation steps through the monitor...",
        steps.len()
    );

    let mut cloud = Cloud::build(CloudConfig {
        backing_bytes: 2 << 30,
        ..CloudConfig::default()
    });
    let platform = StormPlatform::default();
    let volume = cloud.create_volume(256 << 20, 0);
    install_image(&mut image, &mut volume.shared.clone());

    // The tenant marks sensitive paths; the platform bootstraps the
    // monitor's system view from the volume at attach time (dumpe2fs).
    let recon = Reconstructor::from_device(&mut volume.shared.clone(), "").unwrap();
    let monitor = MonitorService::new(
        MonitorConfig {
            watch: vec!["/etc/init.d".into(), "/bin".into()],
            per_byte_cost: SimDuration::ZERO,
        },
        recon,
    );
    let deployment = platform.deploy_chain(
        &mut cloud,
        &volume,
        (1, 2),
        vec![MbSpec::with_services(
            3,
            RelayMode::Active,
            vec![Box::new(monitor)],
        )],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:victim",
        &volume,
        Box::new(TraceWorkload::new(trace)),
        7,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(60_000_000_000));
    assert_eq!(cloud.client_mut(0, app).stats.errors, 0);

    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    println!("\nalerts raised while the malware installed itself:");
    for (at, msg) in relay.alerts() {
        println!("  [{at}] {msg}");
    }
    let monitor = relay
        .service_mut(0)
        .unwrap()
        .downcast_mut::<MonitorService>()
        .unwrap();
    println!("\nfile creations inferred from metadata writes:");
    for ev in monitor.events() {
        if let FsEvent::Created { path, .. } = ev {
            println!("  {path}");
        }
    }
    println!("\nfirst 12 reconstructed accesses:");
    for entry in monitor.analysis().into_iter().take(12) {
        println!("  {entry}");
    }
}

//! Case study 3: a database surviving a replica failure.
//!
//! Recreates the paper's Figure 12/13 scenario: a MySQL-like server VM
//! whose volume is attached through a replication middle-box with two
//! backup volumes (replication factor 3). OLTP clients hammer it; halfway
//! through, one replica's backing store fails. The database never sees an
//! error, and the failed replica is removed from service.
//!
//! ```text
//! cargo run --release --example replicated_database
//! ```

use storm::cloud::{Cloud, CloudConfig};
use storm::core::relay::{ActiveRelayMb, ReplicaTarget};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm::services::ReplicationService;
use storm::workloads::{OltpConfig, OltpWorkload};
use storm_sim::{SimDuration, SimTime};

fn main() {
    let mut cloud = Cloud::build(CloudConfig {
        storage_hosts: 3,
        backing_bytes: 8 << 30,
        ..CloudConfig::default()
    });
    let platform = StormPlatform::default();
    let primary = cloud.create_volume(2 << 30, 0);
    let rep1 = cloud.create_volume(2 << 30, 1);
    let rep2 = cloud.create_volume(2 << 30, 2);

    let deployment = platform.deploy_chain(
        &mut cloud,
        &primary,
        (1, 2),
        vec![MbSpec {
            host_idx: 3,
            mode: RelayMode::Active,
            services: vec![Box::new(ReplicationService::new(2, true))],
            replicas: vec![
                ReplicaTarget {
                    portal: rep1.portal,
                    iqn: rep1.iqn.clone(),
                },
                ReplicaTarget {
                    portal: rep2.portal,
                    iqn: rep2.iqn.clone(),
                },
            ],
        }],
    );
    println!("replication middle-box deployed: primary + 2 replicas, read striping on");

    let oltp = OltpConfig {
        duration: SimDuration::from_secs(30),
        ..OltpConfig::default()
    };
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:mysql",
        &primary,
        Box::new(OltpWorkload::new(oltp)),
        3,
        false,
    );

    // Fail replica 1 at the 15-second mark.
    cloud.net.run_until(SimTime::from_nanos(15_000_000_000));
    println!("t=15s: replica 1's backing store fails");
    rep1.shared.fail();
    cloud.net.run_until(SimTime::from_nanos(40_000_000_000));

    let client = cloud.client_mut(0, app);
    assert_eq!(
        client.stats.errors, 0,
        "the database must never see the failure"
    );
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<OltpWorkload>()
        .unwrap();
    println!("\nper-second transactions:");
    for (t, tps) in w.tps.series().iter().enumerate().step_by(3) {
        let bar = "#".repeat((*tps as usize) / 20);
        println!("  t={t:>3}s {tps:>5} {bar}");
    }
    println!(
        "\ntotal transactions: {} (zero client-visible errors)",
        w.transactions
    );

    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    for (at, msg) in relay.alerts() {
        println!("alert [{at}]: {msg}");
    }
    let svc = relay
        .service(0)
        .unwrap()
        .downcast_ref::<ReplicationService>()
        .unwrap();
    println!(
        "replica writes: {}, striped reads: {}, retried reads: {}, replicas alive: {}",
        svc.stats.replica_writes,
        svc.stats.striped_reads,
        svc.stats.retried_reads,
        svc.alive_replicas()
    );
}

//! Service chaining (paper §II-B): "a tenant concerned about data
//! security and audit logging can request both storage monitoring and
//! encryption service middle-boxes. StorM chains these middle-boxes so
//! that after the storage monitor records the I/O access, the data is
//! passed through the encryption box."
//!
//! This example deploys monitor → encryption in one active-relay
//! middle-box over a real ext-formatted volume: the monitor (first on the
//! write path) sees plaintext file operations; the volume stores
//! ciphertext.
//!
//! ```text
//! cargo run --release --example service_chain
//! ```

use std::sync::Arc;

use storm::cloud::{Cloud, CloudConfig};
use storm::core::relay::ActiveRelayMb;
use storm::core::{MbSpec, Reconstructor, RelayMode, StormPlatform};
use storm::services::{EncryptionService, MonitorConfig, MonitorService};
use storm::telemetry::names::tenant_scoped;
use storm::telemetry::{analyze, MetricsRegistry, Recorder};
use storm::workloads::postmark::install_image;
use storm::workloads::{OpClass, OpGroup, TraceWorkload};
use storm_block::{MemDisk, RecordingDevice};
use storm_extfs::ExtFs;
use storm_sim::{SimDuration, SimTime};

fn main() {
    // A volume with a filesystem and one audit-worthy file operation.
    let dev = RecordingDevice::new(MemDisk::with_capacity_bytes(128 << 20));
    let mut fs = ExtFs::mkfs(dev).unwrap();
    fs.mkdir("/finance").unwrap();
    fs.sync().unwrap();
    fs.device_mut().take_log();
    fs.create("/finance/q3-forecast.xlsx").unwrap();
    fs.write_file("/finance/q3-forecast.xlsx", 0, &vec![0x55; 16384])
        .unwrap();
    fs.sync().unwrap();
    let ops = fs.device_mut().take_log();
    let mut image = fs.into_device().unwrap().into_inner();

    let mut cloud = Cloud::build(CloudConfig::default());
    let recorder = Arc::new(Recorder::new());
    cloud.set_trace_hook(Recorder::hook(&recorder));
    let platform = StormPlatform::default();
    let volume = cloud.create_volume(128 << 20, 0);
    install_image(&mut image, &mut volume.shared.clone());

    // The chain: monitor first, then encryption — order matters.
    let recon = Reconstructor::from_device(&mut volume.shared.clone(), "").unwrap();
    let monitor = MonitorService::new(
        MonitorConfig {
            watch: vec!["/finance".into()],
            per_byte_cost: SimDuration::ZERO,
        },
        recon,
    );
    let encryption = EncryptionService::aes_xts(&[0x99; 64]);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &volume,
        (1, 2),
        vec![MbSpec::with_services(
            3,
            RelayMode::Active,
            vec![Box::new(monitor), Box::new(encryption)],
        )],
    );

    let groups = vec![OpGroup {
        class: OpClass::Create,
        label: "create+write /finance/q3-forecast.xlsx".into(),
        accesses: ops,
    }];
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:erp",
        &volume,
        Box::new(TraceWorkload::new(groups)),
        5,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(20_000_000_000));
    assert_eq!(cloud.client_mut(0, app).stats.errors, 0);

    // The monitor (stage 1) saw the plaintext file operation...
    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    println!("audit log (stage 1 — monitor, sees plaintext):");
    for (at, msg) in relay.alerts() {
        println!("  [{at}] {msg}");
    }
    let mon = relay
        .service(0)
        .unwrap()
        .downcast_ref::<MonitorService>()
        .unwrap();
    for e in mon.analysis().iter().take(8) {
        println!("  {e}");
    }
    let enc = relay
        .service(1)
        .unwrap()
        .downcast_ref::<EncryptionService>()
        .unwrap();
    let (enc_bytes, _) = enc.counters();
    println!("\nstage 2 — encryption: {enc_bytes} bytes encrypted on the write path");

    // Telemetry: per-stage counters and the chain's latency attribution.
    // The Meta events the relay emitted at arm time label the service
    // rows by name (service:monitor, service:encryption).
    let mut registry = MetricsRegistry::new();
    registry.inc(&tenant_scoped("mb.alerts", 0), relay.alerts().len() as u64);
    registry.inc(
        &tenant_scoped("mb.pdus_forwarded", 0),
        relay.pdus_forwarded(),
    );
    registry.inc(&tenant_scoped("mb.enc_bytes", 0), enc_bytes);
    let client = cloud.client_mut(0, app);
    registry.inc(&tenant_scoped("vm.ops", 0), client.stats.ops());
    registry.merge_histogram(
        &tenant_scoped("vm.latency", 0),
        client.stats.latency.histogram(),
    );
    print!("\n[metrics]\n{}", registry.report());
    let report = analyze::attribute(&recorder.events());
    print!("\n[trace] {} events\n{}", recorder.len(), report.table());

    // ...while the volume holds ciphertext.
    let mut fs_check = ExtFs::mount(volume.shared.clone());
    match fs_check {
        Ok(ref mut f) => {
            let data = f.read_file_to_end("/finance/q3-forecast.xlsx");
            match data {
                Ok(d) if d.iter().all(|&b| b == 0x55) => {
                    panic!("volume holds plaintext — encryption failed")
                }
                _ => println!("volume-side read of the file fails or yields ciphertext ✓"),
            }
        }
        Err(_) => println!("volume metadata unreadable without the key ✓"),
    }
}

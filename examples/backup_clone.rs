//! Snapshot-backed backup & clone (the suite's snapshot/CoW case study):
//! a tenant snapshots a live volume **instantly** at the middle-box,
//! keeps writing, then cuts a full clone of the snapshot image while the
//! live volume diverges — the paper's tenant-defined service story
//! applied to backup/clone workflows.
//!
//! The snapshot service parks first writes to unpreserved extents,
//! fetches the pre-image over its replica session, and lets the write
//! through only after the copy-on-first-write completes — so the clone
//! below is byte-exact even though the guest never paused.
//!
//! ```text
//! cargo run --release --example backup_clone
//! ```

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::relay::{ActiveRelayMb, ReplicaTarget};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm::services::SnapshotService;
use storm::telemetry::names::{self, tenant_scoped};
use storm::telemetry::MetricsRegistry;
use storm_block::{BlockDevice, MemDisk};
use storm_sim::{SimDuration, SimTime};

const BLOCKS: u64 = 8;
/// One CoW extent (128 sectors = 64 KiB) per written block.
const EXTENT_SECTORS: u64 = 128;
const BLOCK_BYTES: usize = 4096;

/// Writes each `(lba, payload)` pair once, in order, then stops.
struct WriteSet {
    ops: Vec<(u64, Bytes)>,
    next: usize,
    done: bool,
}

impl WriteSet {
    fn new(ops: Vec<(u64, Bytes)>) -> Self {
        WriteSet {
            ops,
            next: 0,
            done: false,
        }
    }
}

impl Workload for WriteSet {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        let (lba, data) = self.ops[0].clone();
        self.next = 1;
        io.write(lba, data);
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, _req: ReqId, _kind: IoKind, result: IoResult) {
        assert!(result.ok, "write failed");
        if self.next < self.ops.len() {
            let (lba, data) = self.ops[self.next].clone();
            self.next += 1;
            io.write(lba, data);
        } else {
            self.done = true;
            io.stop();
        }
    }
}

fn run_phase(cloud: &mut Cloud, platform: &StormPlatform, args: PhaseArgs<'_>) {
    let app = platform.attach_volume_steered(
        cloud,
        args.deployment,
        0,
        args.vm,
        args.vol,
        Box::new(WriteSet::new(args.ops)),
        args.seed,
        false,
    );
    let deadline = cloud.net.now() + SimDuration::from_secs(10);
    cloud
        .net
        .run_until(SimTime::from_nanos(deadline.as_nanos()));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0, "phase saw I/O errors");
    assert!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<WriteSet>()
            .unwrap()
            .done,
        "phase did not finish"
    );
}

struct PhaseArgs<'a> {
    deployment: &'a storm::core::ChainDeployment,
    vm: &'a str,
    vol: &'a storm::cloud::VolumeHandle,
    ops: Vec<(u64, Bytes)>,
    seed: u64,
}

fn main() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);

    // One middle-box running the snapshot service; its replica session
    // points at the primary volume for pre-image fetches.
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec {
            host_idx: 3,
            mode: RelayMode::Active,
            services: vec![Box::new(SnapshotService::new(EXTENT_SECTORS))],
            replicas: vec![ReplicaTarget {
                portal: vol.portal,
                iqn: vol.iqn.clone(),
            }],
        }],
    );

    // Phase 1: the "database" lays down version-1 content, one block per
    // CoW extent. Epoch 0: the service forwards verbatim, zero overhead.
    let v1: Vec<(u64, Bytes)> = (0..BLOCKS)
        .map(|i| {
            (
                i * EXTENT_SECTORS,
                Bytes::from(vec![0x10 + i as u8; BLOCK_BYTES]),
            )
        })
        .collect();
    run_phase(
        &mut cloud,
        &platform,
        PhaseArgs {
            deployment: &deployment,
            vm: "vm:db-v1",
            vol: &vol,
            ops: v1.clone(),
            seed: 31,
        },
    );

    // Instant snapshot: one O(1) epoch bump at the middle-box. No I/O,
    // no quiesce, no copy yet.
    let (mb_node, mb_app) = (deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap());
    let snap_id = {
        let relay = cloud
            .net
            .app_mut(mb_node, mb_app)
            .unwrap()
            .downcast_mut::<ActiveRelayMb>()
            .unwrap();
        let snap = relay
            .service_mut(0)
            .unwrap()
            .downcast_mut::<SnapshotService>()
            .unwrap();
        snap.take_snapshot()
    };
    println!("snapshot {snap_id} taken at the middle-box (O(1), no copy)");

    // Phase 2: the live volume diverges — every even block is
    // overwritten, triggering copy-on-first-write per extent.
    let v2: Vec<(u64, Bytes)> = (0..BLOCKS)
        .step_by(2)
        .map(|i| {
            (
                i * EXTENT_SECTORS,
                Bytes::from(vec![0x60 + i as u8; BLOCK_BYTES]),
            )
        })
        .collect();
    run_phase(
        &mut cloud,
        &platform,
        PhaseArgs {
            deployment: &deployment,
            vm: "vm:db-v2",
            vol: &vol,
            ops: v2,
            seed: 32,
        },
    );

    // Clone: materialize the snapshot image onto a fresh device — live
    // data except where a preserved pre-image supersedes it.
    let mut clone = MemDisk::with_capacity_bytes(64 << 20);
    let (cow_copies, preserved_bytes) = {
        let relay = cloud
            .net
            .app_mut(mb_node, mb_app)
            .unwrap()
            .downcast_mut::<ActiveRelayMb>()
            .unwrap();
        let snap = relay
            .service(0)
            .unwrap()
            .downcast_ref::<SnapshotService>()
            .unwrap();
        snap.cow()
            .materialize(snap_id, &mut vol.shared.clone(), &mut clone)
            .expect("materialize clone");
        (snap.stats.cow_copies, snap.stats.preserved_bytes)
    };
    println!(
        "clone cut: {cow_copies} extents were copy-on-first-write ({preserved_bytes} bytes preserved)"
    );
    assert_eq!(
        cow_copies,
        BLOCKS.div_ceil(2),
        "one CoW per diverged extent"
    );

    // The clone is the exact v1 image — including the blocks the live
    // volume has since overwritten.
    let mut buf = vec![0u8; BLOCK_BYTES];
    for (i, (lba, data)) in v1.iter().enumerate() {
        clone.read(*lba, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..], "clone block {i} diverged from v1");
    }
    // ...while the live volume carries the v2 overwrites.
    let mut live = vol.shared.clone();
    for i in (0..BLOCKS).step_by(2) {
        live.read(i * EXTENT_SECTORS, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0x60 + i as u8),
            "live block {i} must hold v2"
        );
    }
    println!("clone holds v1 everywhere; live volume holds v2 on diverged blocks ✓");

    // The clone is independent: scribbling on it leaves both the live
    // volume and the preserved snapshot untouched.
    clone.write(0, &vec![0xEE; BLOCK_BYTES]).unwrap();
    live.read(0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x60), "live volume must not move");
    println!("clone diverged independently of the live volume ✓");

    // Suite counters land in the per-tenant namespace.
    let mut registry = MetricsRegistry::new();
    registry.inc(&tenant_scoped(names::SVC_SNAP_COW_COPIES, 0), cow_copies);
    registry.set_gauge(
        &tenant_scoped(names::SVC_SNAP_PRESERVED_BYTES, 0),
        preserved_bytes as i64,
    );
    print!("\n[metrics]\n{}", registry.report());
}

//! Noisy neighbor: per-tenant QoS protecting a latency-sensitive tenant
//! from an IOPS hog on the same storage host.
//!
//! Two tenants share the fast tier of one Cinder node. Without QoS the
//! aggressor's closed-loop 4 KiB flood queues ahead of the victim's I/O;
//! with a token-bucket rate limit on the aggressor and a WFQ weight on
//! the victim, the victim's tail latency returns to (near) its solo
//! value. The same knobs the provisioning engine uses — tenant limits,
//! tenant weights, tiered placement — driven by hand.
//!
//! ```text
//! cargo run --release --example noisy_neighbor
//! ```

use storm::cloud::{Cloud, CloudConfig, DiskSpec};
use storm::qos::{DiskTier, RateLimitSpec};
use storm::telemetry::names::tenant_scoped;
use storm::telemetry::MetricsRegistry;
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{FioJob, FioWorkload};

const VICTIM: u32 = 1;
const AGGRESSOR: u32 = 2;

/// One contended run; returns the victim's p99 in milliseconds and the
/// number of target-side ops the shaper throttled.
fn contended_run(shaped: bool) -> (f64, u64) {
    let mut cloud = Cloud::build(CloudConfig {
        seed: 7,
        ..CloudConfig::default()
    });
    let duration = SimDuration::from_secs(1);
    let victim_vol = cloud.create_volume(1 << 30, 0);
    let aggr_vol = cloud.create_volume(1 << 30, 0);
    {
        let target = cloud.target_mut(0);
        target.enable_qos(DiskSpec::fast_tier(), DiskSpec::slow_tier());
        target.register_qos_volume(&victim_vol.iqn, VICTIM, DiskTier::Fast);
        target.register_qos_volume(&aggr_vol.iqn, AGGRESSOR, DiskTier::Fast);
        if shaped {
            // The aggressor gets 200 IOPS and a quarter of the victim's
            // scheduler weight; everything else is unchanged.
            target.set_tenant_limit(AGGRESSOR, RateLimitSpec::iops_limit(200, 4));
            target.set_tenant_weight(VICTIM, 8);
        }
    }
    let victim_job = FioJob::randrw(64 * 1024, duration, victim_vol.sectors).threads(1);
    let victim = cloud.attach_volume(
        0,
        "vm:victim",
        &victim_vol,
        Box::new(FioWorkload::new(victim_job)),
        7,
        false,
    );
    let aggr_job = FioJob::randrw(4096, duration, aggr_vol.sectors).threads(4);
    let aggressor = cloud.attach_volume(
        1,
        "vm:aggressor",
        &aggr_vol,
        Box::new(FioWorkload::new(aggr_job)),
        8,
        false,
    );
    let deadline = cloud.net.now() + SimDuration::from_secs(5);
    while cloud.net.now() < deadline {
        cloud.net.run_for(SimDuration::from_millis(1));
        let ready =
            cloud.client_mut(0, victim).is_ready() && cloud.client_mut(1, aggressor).is_ready();
        if ready {
            break;
        }
    }
    let end = cloud.net.now() + duration + SimDuration::from_secs(2);
    cloud.net.run_until(SimTime::from_nanos(end.as_nanos()));

    let (throttled, _) = cloud.target_mut(0).qos_throttle_stats();
    let mut registry = MetricsRegistry::new();
    for (tenant, host, app) in [(VICTIM, 0usize, victim), (AGGRESSOR, 1usize, aggressor)] {
        let client = cloud.client_mut(host, app);
        assert!(client.is_ready(), "tenant {tenant} login failed");
        assert_eq!(client.stats.errors, 0);
        registry.inc(&tenant_scoped("vm.ops", tenant), client.stats.ops());
        registry.merge_histogram(
            &tenant_scoped("vm.latency", tenant),
            client.stats.latency.histogram(),
        );
    }
    let label = if shaped { "with QoS" } else { "no QoS" };
    println!("[{label}]");
    print!("{}", registry.report());
    let p99 = cloud
        .client_mut(0, victim)
        .stats
        .latency
        .percentile(99.0)
        .as_nanos() as f64
        / 1e6;
    (p99, throttled)
}

fn main() {
    println!("two tenants, one fast tier: 64 KiB victim vs 4 KiB closed-loop aggressor\n");
    let (contended, _) = contended_run(false);
    let (shaped, throttled) = contended_run(true);
    println!();
    println!("victim p99, no QoS:   {contended:.2} ms");
    println!("victim p99, with QoS: {shaped:.2} ms ({throttled} aggressor ops throttled)");
    assert!(
        shaped < contended,
        "shaping must improve the victim's tail latency"
    );
    println!("\nnoisy neighbor tamed");
}

//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! Parses just enough of the item (skipping attributes, visibility and
//! doc comments) to find the type name, then emits an empty marker impl.
//! `#[serde(...)]` helper attributes are declared so they parse and are
//! discarded. Generic types get their parameters forwarded verbatim with
//! no extra bounds — the marker traits need none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

fn type_name_and_generics(input: TokenStream) -> (String, String) {
    let mut iter = input.into_iter().peekable();
    // Skip leading attributes (`# [ ... ]`) and visibility / qualifiers
    // until the `struct` / `enum` / `union` keyword.
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    // Capture generic parameter *names* (stripping bounds) from `<...>`.
    let mut generics = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut at_param_start = true;
        while let Some(tt) = iter.next() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && at_param_start => {
                    // Lifetime parameter: keep the quote + following ident.
                    if let Some(TokenTree::Ident(id)) = iter.next() {
                        generics.push(format!("'{id}"));
                    }
                    at_param_start = false;
                }
                TokenTree::Ident(id) if depth == 1 && at_param_start => {
                    let s = id.to_string();
                    if s == "const" {
                        // `const N: usize` — the name is the next ident.
                        if let Some(TokenTree::Ident(n)) = iter.next() {
                            generics.push(n.to_string());
                        }
                    } else {
                        generics.push(s);
                    }
                    at_param_start = false;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::None => {}
                _ => {}
            }
        }
    }
    let generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };
    (name, generics)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_name_and_generics(input);
    format!("impl{generics} ::serde::Serialize for {name}{generics} {{}}")
        .parse()
        .expect("valid impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_name_and_generics(input);
    format!(
        "impl<'storm_de, {g}> ::serde::Deserialize<'storm_de> for {name}{angle} {{}}",
        g = generics.trim_start_matches('<').trim_end_matches('>'),
        angle = generics,
    )
    .parse()
    .expect("valid impl")
}

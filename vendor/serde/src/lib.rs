//! Offline stand-in for `serde`.
//!
//! Storm only derives `Serialize`/`Deserialize` as a statement of intent on
//! policy structs — nothing in the workspace performs serialization (there
//! is no `serde_json`/`bincode` here). The stand-in keeps the derive
//! attribute surface compiling: the traits are markers and the derive
//! macros emit empty impls while accepting `#[serde(...)]` attributes.

/// Marker for types that would be serializable with real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with real serde.
pub trait Deserialize<'de> {}

/// Marker mirroring serde's owned-deserialization alias.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

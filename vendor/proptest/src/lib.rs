//! Offline stand-in for `proptest`.
//!
//! Implements the generation half of the proptest API the storm test
//! suites use — `proptest!`, strategies over ranges / tuples / collections
//! / arrays, `any::<T>()`, `prop_oneof!`, `prop_map` — with a fixed
//! deterministic seed per test case and **no shrinking**: a failing case
//! panics with the offending inputs' `Debug` rendering instead of a
//! minimized counterexample. That trade keeps the dependency surface at
//! zero while preserving the property coverage.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic per-test RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A value generator. The stand-in generates eagerly and never shrinks.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone + Debug> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Integers and floats drawable from a uniform range strategy.
pub trait RangeSample: Sized + Debug + Copy {
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample_uint {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64) as $t
            }
        }
    )*};
}
impl_range_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty strategy range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl RangeSample for f64 {
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitive `T`.
#[derive(Debug, Clone, Copy)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> AnyOf<bool> {
        AnyOf(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let pick = rng.below(self.0.len() as u64) as usize;
        self.0[pick].generate(rng)
    }
}

/// Run configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Unused knob kept for source compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Source-compat constructor.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Strategy combinators namespace (`proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// Size specification for [`vec`]: a fixed count or a range.
        pub trait IntoSizeRange {
            fn bounds(&self) -> (usize, usize);
        }
        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }
        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }
        impl IntoSizeRange for Range<i32> {
            fn bounds(&self) -> (usize, usize) {
                (self.start as usize, self.end as usize)
            }
        }
        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }
        impl IntoSizeRange for std::ops::RangeInclusive<i32> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start() as usize, *self.end() as usize + 1)
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        /// Generates vectors whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            assert!(lo < hi, "empty vec size range");
            VecStrategy { element, lo, hi }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy yielding `[S::Value; N]`.
        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
        where
            S::Value: Debug,
        {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.0.generate(rng))
            }
        }

        macro_rules! uniform_fn {
            ($($name:ident => $n:literal),*) => {$(
                /// Generates a fixed-size array from one element strategy.
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n>
                where
                    S::Value: Debug,
                {
                    UniformArray(element)
                }
            )*};
        }
        uniform_fn!(
            uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
            uniform8 => 8, uniform12 => 12, uniform16 => 16, uniform24 => 24,
            uniform32 => 32
        );
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Discards the current case when its precondition fails. The stand-in
/// cannot re-draw, so it simply skips the rest of the case via early
/// return from the per-case closure — implemented as a plain `if`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Property assertion; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs
/// `cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($config:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        // One helper per `proptest!` block carries the (optional) config
        // past the per-fn repetition, where `$config` cannot appear.
        #[allow(dead_code)]
        fn __storm_proptest_config() -> $crate::ProptestConfig {
            #[allow(unused_mut, unused_assignments)]
            let mut config = $crate::ProptestConfig::default();
            $(config = $config;)?
            config
        }
        $(
            $(#[$meta])*
            fn $name() {
                let config = __storm_proptest_config();
                // Stable per-test seed: the test name hashed via FNV-1a.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x1000_0000_01b3);
                }
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in prop::collection::vec(0u8..4, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            (10u8..14).prop_map(|x| x as u32),
        ]) {
            prop_assert!(v < 4 || (10..14).contains(&v));
        }

        #[test]
        fn arrays_fill(a in prop::array::uniform16(any::<u8>())) {
            prop_assert_eq!(a.len(), 16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::seed_from_u64(9);
        let mut b = TestRng::seed_from_u64(9);
        let s = prop::collection::vec(0u64..100, 2..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}

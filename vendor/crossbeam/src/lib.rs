//! Offline stand-in for `crossbeam`: an MPMC unbounded channel built on
//! `Mutex<VecDeque>` + `Condvar`. Correctness over speed — the storm
//! pipeline only needs multi-consumer semantics and clean shutdown.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned when sending on a channel with no receivers left.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when receiving on an empty channel with no senders.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.queue.lock().unwrap();
            if let Some(v) = st.items.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0u32;
                        while let Ok(v) = rx.recv() {
                            got += v;
                        }
                        got
                    })
                })
                .collect();
            for i in 1..=100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }

        #[test]
        fn send_after_receivers_gone_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_after_senders_gone_drains_then_errors() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}

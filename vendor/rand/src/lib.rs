//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset storm uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] and the [`RngExt`] sampling helpers. `SmallRng` is a
//! xoshiro256++ generator seeded through SplitMix64 — deterministic and
//! stable across runs, which is all the simulator needs.

use std::ops::Range;

/// A source of uniformly distributed random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling adaptors on any [`RngCore`] (the `rand 0.10` `Rng`/`RngExt`
/// surface storm calls).
pub trait RngExt: RngCore {
    /// Uniform sample of `T` over its full domain (`random()` in rand 0.9+).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }

    /// Fills `buf` with random bytes.
    fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore> RngExt for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types samplable uniformly from a half-open range.
pub trait UniformRange: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire); span <= u64::MAX here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                range.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let off = u64::sample_range(rng, 0..span);
                range.start.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + unit_f64(rng.next_u64()) * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

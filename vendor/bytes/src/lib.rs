//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: cheaply cloneable
//! immutable [`Bytes`] (an `Arc<[u8]>` plus a window) and a growable
//! [`BytesMut`] that freezes into one. Semantics match the real crate for
//! the covered surface; anything else is intentionally absent.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// `None` storage means the empty view, so [`Bytes::new`] can be `const`
/// (the real crate supports `static EMPTY: Bytes = Bytes::new()`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            data: None,
            start: 0,
            end: 0,
        }
    }

    /// Creates `Bytes` from a static slice without copying semantics that
    /// matter here (the stand-in copies; callers only rely on the value).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn storage(&self) -> &[u8] {
        match &self.data {
            Some(d) => d,
            None => &[],
        }
    }

    /// Returns a sub-view sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// The remaining bytes (Buf::chunk in the real crate).
    pub fn chunk(&self) -> &[u8] {
        &self.storage()[self.start..self.end]
    }

    /// Remaining byte count (Buf::remaining).
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// Advances the view by `cnt` bytes (Buf::advance).
    ///
    /// # Panics
    ///
    /// Panics if `cnt` exceeds the remaining length.
    pub fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance {cnt} past end of {}",
            self.len()
        );
        self.start += cnt;
    }

    /// Copies the whole view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Whether `other` is the same window of the same backing storage.
    ///
    /// This is *identity*, not equality: two views holding equal bytes in
    /// different allocations compare `false`. Zero-copy datapaths use it
    /// to prove a value was moved, not re-materialized. Empty views are
    /// all identical.
    pub fn same_storage(&self, other: &Bytes) -> bool {
        if self.is_empty() && other.is_empty() {
            return true;
        }
        match (&self.data, &other.data) {
            (Some(a), Some(b)) => {
                Arc::ptr_eq(a, b) && self.start == other.start && self.end == other.end
            }
            _ => false,
        }
    }

    /// Attempts to extend this view with `next` without copying: succeeds
    /// when `next` is the continuation of `self` in the same backing
    /// storage (or when either side is empty). Returns the merged view,
    /// or `None` when the two views are not contiguous.
    pub fn try_join(&self, next: &Bytes) -> Option<Bytes> {
        if next.is_empty() {
            return Some(self.clone());
        }
        if self.is_empty() {
            return Some(next.clone());
        }
        match (&self.data, &next.data) {
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) && self.end == next.start => Some(Bytes {
                data: Some(a.clone()),
                start: self.start,
                end: next.end,
            }),
            _ => None,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let end = data.len();
        Bytes {
            data: Some(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.chunk() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.chunk() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.chunk()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.chunk() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.chunk().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.chunk().cmp(other.chunk())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.chunk().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.chunk().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut {
            data: Vec::new(),
            read: 0,
        }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Creates a zero-filled buffer of length `len`.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            data: vec![0; len],
            read: 0,
        }
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Length of the unread window.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// Whether the unread window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` bytes as a new `BytesMut`.
    ///
    /// # Panics
    ///
    /// Panics if `at` exceeds the buffer length.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to {at} past end of {}", self.len());
        let head = self.data[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut {
            data: head,
            read: 0,
        }
    }

    /// The unread bytes (Buf::chunk).
    pub fn chunk(&self) -> &[u8] {
        &self.data[self.read..]
    }

    /// Remaining byte count (Buf::remaining).
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// Advances past `cnt` bytes (Buf::advance).
    ///
    /// # Panics
    ///
    /// Panics if `cnt` exceeds the remaining length.
    pub fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance {cnt} past end of {}",
            self.len()
        );
        self.read += cnt;
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.read == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(self.data[self.read..].to_vec())
        }
    }

    /// Copies the unread window into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.data[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        self.deref_mut()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut {
            data: v.to_vec(),
            read: 0,
        }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::zeroed(3);
        m.extend_from_slice(&[7, 8]);
        assert_eq!(m.len(), 5);
        let head = m.split_to(2);
        assert_eq!(&head[..], &[0, 0]);
        m.advance(1);
        assert_eq!(&m.freeze()[..], &[7, 8]);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, Bytes::copy_from_slice(b"abc"));
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc".to_vec());
    }

    #[test]
    fn same_storage_is_identity_not_equality() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert!(a.same_storage(&b));
        assert!(!a.same_storage(&a.slice(0..3)));
        assert!(!a.same_storage(&Bytes::from(vec![1, 2, 3, 4])));
        assert!(Bytes::new().same_storage(&Bytes::from(Vec::new())));
    }

    #[test]
    fn try_join_merges_adjacent_views() {
        let whole = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let head = whole.slice(..3);
        let tail = whole.slice(3..);
        let joined = head.try_join(&tail).expect("contiguous");
        assert!(joined.same_storage(&whole));
        assert_eq!(joined, whole);
        // Non-contiguous windows and foreign storage do not join.
        assert!(whole.slice(..2).try_join(&whole.slice(3..)).is_none());
        assert!(head.try_join(&Bytes::from(vec![3, 4])).is_none());
        // Empty sides join onto anything.
        assert!(head.try_join(&Bytes::new()).unwrap().same_storage(&head));
        assert!(Bytes::new().try_join(&tail).unwrap().same_storage(&tail));
    }
}

//! Offline stand-in for `criterion`: runs each benchmark closure a fixed
//! number of warm-up + timed iterations and prints mean wall-clock per
//! iteration (plus throughput when configured). No statistics engine, no
//! HTML reports — enough to execute the `cargo bench` targets and eyeball
//! relative numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 10;
const MIN_TIMED_ITERS: u64 = 30;
const TARGET_RUN: Duration = Duration::from_millis(300);

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, repeating it until the sample is long enough.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if iters >= MIN_TIMED_ITERS && start.elapsed() >= TARGET_RUN {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn report(name: &str, total: Duration, iters: u64, throughput: Option<Throughput>) {
    if iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let per_iter = total / iters as u32;
    let mut line = format!("{name:<40} {per_iter:>12.2?}/iter ({iters} iters)");
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(b) => {
                line.push_str(&format!(
                    "  {:>9.1} MiB/s",
                    b as f64 / secs / (1 << 20) as f64
                ));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!("  {:>9.1} Kelem/s", e as f64 / secs / 1e3));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, b.total, b.iters, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("  {name}"), b.total, b.iters, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `parking_lot`: std locks with the
//! panic-free-on-poison `parking_lot` calling convention.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in an rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}

//! Figure 11: PostMark component throughput — encryption in the tenant VM
//! vs in a StorM middle-box.
//!
//! Paper reference (middle-box normalized to tenant-side): read ops 1.34,
//! append ops 1.34, creation 1.34, deletion 1.34, read rate 1.29, write
//! rate 1.23.

use storm_bench::{attach_over_path, build_cloud, PathMode, Testbed};
use storm_core::{MbSpec, RelayMode, StormPlatform};
use storm_services::EncryptionService;
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{postmark, OpClass, TraceWorkload};

const VM_CIPHER_PER_BYTE: SimDuration = SimDuration::from_nanos(19);
/// Fixed dm-crypt bio overhead dominating small-file workloads.
const VM_CIPHER_PER_ACCESS: SimDuration = SimDuration::from_micros(350);
const MB_CIPHER_PER_BYTE: SimDuration = SimDuration::from_nanos(6);

struct Components {
    read_ops: f64,
    append_ops: f64,
    create_ops: f64,
    delete_ops: f64,
    read_mbps: f64,
    write_mbps: f64,
}

fn components(w: &TraceWorkload) -> Components {
    let secs = w.elapsed().expect("postmark finished").as_secs_f64();
    let rate = |c: OpClass| w.class_stats(c).ops.count() as f64 / secs;
    let read_bytes: u64 = [
        OpClass::Read,
        OpClass::Append,
        OpClass::Create,
        OpClass::Delete,
    ]
    .into_iter()
    .map(|c| w.class_stats(c).bytes_read)
    .sum();
    let write_bytes: u64 = [
        OpClass::Read,
        OpClass::Append,
        OpClass::Create,
        OpClass::Delete,
    ]
    .into_iter()
    .map(|c| w.class_stats(c).bytes_written)
    .sum();
    Components {
        read_ops: rate(OpClass::Read),
        append_ops: rate(OpClass::Append),
        create_ops: rate(OpClass::Create),
        delete_ops: rate(OpClass::Delete),
        read_mbps: read_bytes as f64 / 1e6 / secs,
        write_mbps: write_bytes as f64 / 1e6 / secs,
    }
}

fn run(testbed: &Testbed, middlebox: bool) -> Components {
    let cfg = postmark::PostmarkConfig::default();
    let (mut image, groups) = postmark::prepare(&cfg);
    let mut cloud = build_cloud(testbed.seed);
    let vol = cloud.create_volume(cfg.volume_bytes, 0);
    postmark::install_image(&mut image, &mut vol.shared.clone());
    let app = if middlebox {
        let platform = StormPlatform::default();
        let mut enc = EncryptionService::aes_xts(&[0x31; 64]);
        enc.set_per_byte_cost(MB_CIPHER_PER_BYTE);
        let deployment = platform.deploy_chain(
            &mut cloud,
            &vol,
            (1, 2),
            vec![MbSpec::with_services(
                3,
                RelayMode::Active,
                vec![Box::new(enc)],
            )],
        );
        platform.attach_volume_steered(
            &mut cloud,
            &deployment,
            0,
            "vm:tenant",
            &vol,
            Box::new(TraceWorkload::new(groups)),
            testbed.seed,
            false,
        )
    } else {
        let w = TraceWorkload::new(groups).with_vm_cipher(VM_CIPHER_PER_BYTE, VM_CIPHER_PER_ACCESS);
        attach_over_path(
            &mut cloud,
            PathMode::Legacy,
            &vol,
            Box::new(w),
            testbed,
            false,
        )
    };
    cloud.net.run_until(SimTime::from_nanos(120_000_000_000));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0);
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<TraceWorkload>()
        .unwrap();
    assert!(w.is_finished(), "postmark must finish");
    components(w)
}

fn main() {
    let testbed = Testbed::default();
    println!("# Figure 11: PostMark components, tenant-side vs middle-box encryption");
    println!("# paper normalized (MB / tenant-side): 1.34 1.34 1.34 1.34 1.29 1.23");
    println!();
    let tenant = run(&testbed, false);
    let mb = run(&testbed, true);
    println!(
        "{:<12} | {:>12} | {:>12} | {:>6}",
        "component", "tenant-side", "middle-box", "norm"
    );
    let rows: [(&str, f64, f64); 6] = [
        ("read ops/s", tenant.read_ops, mb.read_ops),
        ("append ops/s", tenant.append_ops, mb.append_ops),
        ("create ops/s", tenant.create_ops, mb.create_ops),
        ("delete ops/s", tenant.delete_ops, mb.delete_ops),
        ("read MB/s", tenant.read_mbps, mb.read_mbps),
        ("write MB/s", tenant.write_mbps, mb.write_mbps),
    ];
    for (name, t, m) in rows {
        println!("{name:<12} | {t:>12.2} | {m:>12.2} | {:>6.2}", m / t);
    }
}

//! Figure 10: CPU utilization breakdown during an FTP bulk transfer, with
//! encryption performed (a) inside the tenant VM (dm-crypt style) and
//! (b) in a StorM encryption middle-box.
//!
//! Paper reference: tenant-side — VM 85.0 %, target 25.1 %; middle-box —
//! VM 37.1 %, MB 25.0 %, target 24.4 %; the middle-box solution cuts
//! total CPU by ~20 % while both reach ~84–88 MB/s.

use storm_bench::{attach_over_path, build_cloud, PathMode, Testbed};
use storm_core::{MbSpec, RelayMode, StormPlatform};
use storm_services::EncryptionService;
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{FtpDirection, FtpWorkload};

/// dm-crypt inside the VM: cycles per byte including its spinlock waste.
const VM_CIPHER_PER_BYTE: SimDuration = SimDuration::from_nanos(7);
/// The middle-box pipeline encrypts the same data without the in-guest
/// lock contention.
const MB_CIPHER_PER_BYTE: SimDuration = SimDuration::from_nanos(4);
/// Utilization is reported against 2 vCPUs, like the paper's VMs.
const VCPUS: f64 = 2.0;

const TRANSFER: u64 = 512 << 20;

struct Outcome {
    mbps: f64,
    vm_pct: f64,
    mb_pct: f64,
    target_pct: f64,
}

fn pct(busy: SimDuration, elapsed: SimDuration) -> f64 {
    100.0 * busy.as_secs_f64() / (elapsed.as_secs_f64() * VCPUS)
}

fn run_tenant_side(testbed: &Testbed) -> Outcome {
    let mut cloud = build_cloud(testbed.seed);
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let ftp = FtpWorkload::new(FtpDirection::Upload, TRANSFER).with_vm_cipher(VM_CIPHER_PER_BYTE);
    let app = attach_over_path(
        &mut cloud,
        PathMode::Legacy,
        &vol,
        Box::new(ftp),
        testbed,
        false,
    );
    let start = cloud.net.now();
    cloud.net.run_until(SimTime::from_nanos(60_000_000_000));
    let elapsed;
    let mbps;
    {
        let client = cloud.client_mut(0, app);
        let w = client
            .workload_ref()
            .unwrap()
            .downcast_ref::<FtpWorkload>()
            .unwrap();
        elapsed = w.elapsed().expect("transfer finished");
        mbps = w.throughput_mbps().unwrap();
        let _ = start;
    }
    let vm_busy = cloud
        .net
        .host(cloud.computes[0].host)
        .cpu
        .busy_for("vm:tenant");
    let target_busy = cloud
        .net
        .host(cloud.storages[0].host)
        .cpu
        .busy_for("target");
    Outcome {
        mbps,
        vm_pct: pct(vm_busy, elapsed),
        mb_pct: 0.0,
        target_pct: pct(target_busy, elapsed),
    }
}

fn run_middlebox(testbed: &Testbed) -> Outcome {
    let mut cloud = build_cloud(testbed.seed);
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let mut enc = EncryptionService::aes_xts(&[0x2F; 64]);
    enc.set_per_byte_cost(MB_CIPHER_PER_BYTE);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::with_services(
            3,
            RelayMode::Active,
            vec![Box::new(enc)],
        )],
    );
    let ftp = FtpWorkload::new(FtpDirection::Upload, TRANSFER);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:tenant",
        &vol,
        Box::new(ftp),
        testbed.seed,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(60_000_000_000));
    let elapsed;
    let mbps;
    {
        let client = cloud.client_mut(0, app);
        let w = client
            .workload_ref()
            .unwrap()
            .downcast_ref::<FtpWorkload>()
            .unwrap();
        elapsed = w.elapsed().expect("transfer finished");
        mbps = w.throughput_mbps().unwrap();
    }
    let vm_busy = cloud
        .net
        .host(cloud.computes[0].host)
        .cpu
        .busy_for("vm:tenant");
    let mb_node = deployment.mb_nodes[0].node;
    let mb_busy =
        cloud.net.host(mb_node).cpu.busy_for("mb") + cloud.net.host(mb_node).cpu.busy_for("fwd");
    let target_busy = cloud
        .net
        .host(cloud.storages[0].host)
        .cpu
        .busy_for("target");
    Outcome {
        mbps,
        vm_pct: pct(vm_busy, elapsed),
        mb_pct: pct(mb_busy, elapsed),
        target_pct: pct(target_busy, elapsed),
    }
}

fn main() {
    let testbed = Testbed::default();
    println!("# Figure 10: CPU utilization breakdown, FTP upload with encryption");
    println!("# paper: tenant-side VM 85.0% + target 25.1% (total 110.1%)");
    println!("#        middle-box  VM 37.1% + MB 25.0% + target 24.4% (total 86.5%)");
    println!();
    let tenant = run_tenant_side(&testbed);
    let mb = run_middlebox(&testbed);
    println!(
        "{:<24} | {:>9} | {:>8} | {:>8} | {:>8} | {:>8}",
        "solution", "MB/s", "VM %", "MB-VM %", "target %", "total %"
    );
    for (name, o) in [
        ("performed by tenant VM", &tenant),
        ("performed by MB VM", &mb),
    ] {
        println!(
            "{:<24} | {:>9.1} | {:>8.1} | {:>8.1} | {:>8.1} | {:>8.1}",
            name,
            o.mbps,
            o.vm_pct,
            o.mb_pct,
            o.target_pct,
            o.vm_pct + o.mb_pct + o.target_pct,
        );
    }
    let saved = (tenant.vm_pct + tenant.target_pct) - (mb.vm_pct + mb.mb_pct + mb.target_pct);
    println!();
    println!(
        "total CPU saved by the middle-box solution: {saved:.1} points (paper: ~20% reduction)"
    );
}

//! Figures 12 and 13: the tenant-defined replication service under a
//! replica failure.
//!
//! Setup per Figure 12: a MySQL server VM with a volume attached through a
//! replication middle-box holding two extra replicas (replication factor
//! 3), driven by Sysbench-style OLTP clients; a replica is killed at the
//! 60-second mark. Paper reference: the database keeps running, TPS drops
//! a little after the failure (lower read parallelism), and 3-replica
//! striped reads beat the 1-replica baseline by ~80 %.

use storm_bench::Testbed;
use storm_cloud::{Cloud, CloudConfig};
use storm_core::relay::{ActiveRelayMb, ReplicaTarget};
use storm_core::{MbSpec, RelayMode, StormPlatform};
use storm_services::ReplicationService;
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{OltpConfig, OltpWorkload};

const RUN_SECS: u64 = 120;
const FAIL_AT_SECS: u64 = 60;

fn oltp_config() -> OltpConfig {
    OltpConfig {
        threads: 6,
        reads_per_txn: 3,
        // A 2 GiB hot set: far larger than the configured page cache, so
        // reads hit the spindles — the regime where striped reads across
        // three replicas aggregate throughput (paper: "enhanced read
        // throughput ... aggregated from all available replicas").
        area_sectors: 4 << 20,
        duration: SimDuration::from_secs(RUN_SECS),
    }
}

fn build(replicated: bool) -> (Vec<u64>, f64, f64, usize) {
    let mut cfg = CloudConfig {
        storage_hosts: 3,
        backing_bytes: 32 << 30,
        seed: Testbed::default().seed,
        ..CloudConfig::default()
    };
    // Database pages do not fit the page cache (128 MiB here), unlike the
    // fio experiments' steady-state working sets.
    cfg.target.disk.cache_blocks = 32_768;
    let mut cloud = Cloud::build(cfg);
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(4 << 30, 0);
    let (deployment, app) = if replicated {
        let rep1 = cloud.create_volume(4 << 30, 1);
        let rep2 = cloud.create_volume(4 << 30, 2);
        let svc = ReplicationService::new(2, true);
        let deployment = platform.deploy_chain(
            &mut cloud,
            &vol,
            (1, 2),
            vec![MbSpec {
                host_idx: 3,
                mode: RelayMode::Active,
                services: vec![Box::new(svc)],
                replicas: vec![
                    ReplicaTarget {
                        portal: rep1.portal,
                        iqn: rep1.iqn.clone(),
                    },
                    ReplicaTarget {
                        portal: rep2.portal,
                        iqn: rep2.iqn.clone(),
                    },
                ],
            }],
        );
        let app = platform.attach_volume_steered(
            &mut cloud,
            &deployment,
            0,
            "vm:mysql",
            &vol,
            Box::new(OltpWorkload::new(oltp_config())),
            77,
            false,
        );
        // Fail replica 1's backing volume at the 60 s mark.
        cloud
            .net
            .run_until(SimTime::from_nanos(FAIL_AT_SECS * 1_000_000_000));
        rep1.shared.fail();
        (Some(deployment), app)
    } else {
        // Baseline: the same volume attached directly (no middle-box).
        let app = cloud.attach_volume(
            0,
            "vm:mysql",
            &vol,
            Box::new(OltpWorkload::new(oltp_config())),
            77,
            false,
        );
        (None, app)
    };
    cloud
        .net
        .run_until(SimTime::from_nanos((RUN_SECS + 10) * 1_000_000_000));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0, "MySQL must never see an I/O error");
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<OltpWorkload>()
        .unwrap();
    let series = w.tps.series().to_vec();
    let before = w.mean_tps(10, FAIL_AT_SECS as usize);
    let after = w.mean_tps(FAIL_AT_SECS as usize + 5, RUN_SECS as usize);
    let alive = deployment
        .map(|d| {
            let relay = cloud
                .net
                .app_mut(d.mb_nodes[0].node, d.mb_apps[0].unwrap())
                .unwrap()
                .downcast_mut::<ActiveRelayMb>()
                .unwrap();
            relay
                .service(0)
                .unwrap()
                .downcast_ref::<ReplicationService>()
                .unwrap()
                .alive_replicas()
        })
        .unwrap_or(0);
    (series, before, after, alive)
}

fn main() {
    println!("# Figure 13: MySQL TPS with 3 replicas; one replica fails at t=60 s");
    println!("# paper: DB keeps running; TPS dips slightly after the failure;");
    println!("#        3 replicas beat the 1-replica baseline by ~80% (read striping)");
    println!();
    let (series3, before3, after3, alive) = build(true);
    let (series1, before1, _after1, _) = build(false);
    println!("t(s) | TPS (3 replicas) | TPS (1 replica)");
    for t in (0..RUN_SECS as usize).step_by(5) {
        let tps3 = series3.get(t).copied().unwrap_or(0);
        let tps1 = series1.get(t).copied().unwrap_or(0);
        let marker = if t == FAIL_AT_SECS as usize {
            "  <-- replica fails"
        } else {
            ""
        };
        println!("{t:>4} | {tps3:>16} | {tps1:>15}{marker}");
    }
    println!();
    println!("mean TPS 3-replica before failure : {before3:.0}");
    println!("mean TPS 3-replica after  failure : {after3:.0}  (surviving replicas: {alive})");
    println!("mean TPS 1-replica baseline       : {before1:.0}");
    println!(
        "3-replica speedup over baseline   : {:.2}x (paper: ~1.8x)",
        before3 / before1
    );
    assert!(after3 > 0.0, "database must keep running after the failure");
}

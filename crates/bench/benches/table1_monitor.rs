//! Tables I and II: the storage access monitor reconstructing high-level
//! file operations from block-level accesses.
//!
//! Reproduces the paper's synthetic scenario: an ext-formatted volume
//! mounted at `/mnt/box` with folders `name0..name9` holding `1.img` …
//! `10.img`; file operations issued in the tenant VM (Table II) are
//! reconstructed by the monitoring middle-box into the access log
//! (Table I).

use storm_bench::{build_cloud, Testbed};
use storm_block::{MemDisk, RecordingDevice};
use storm_core::relay::ActiveRelayMb;
use storm_core::{MbSpec, Reconstructor, RelayMode, StormPlatform};
use storm_extfs::ExtFs;
use storm_services::{MonitorConfig, MonitorService};
use storm_sim::{SimDuration, SimTime};
use storm_workloads::postmark::install_image;
use storm_workloads::{OpClass, OpGroup, TraceWorkload};

fn main() {
    let testbed = Testbed::default();
    println!("# Table I / Table II: semantic reconstruction of tenant file operations");
    println!();

    // Build the volume image: /name0../name9 each with 1.img..10.img.
    let dev = RecordingDevice::new(MemDisk::with_capacity_bytes(256 << 20));
    let mut fs = ExtFs::mkfs(dev).expect("mkfs");
    for d in 0..10 {
        fs.mkdir(&format!("/name{d}")).unwrap();
        for i in 1..=10 {
            let p = format!("/name{d}/{i}.img");
            fs.create(&p).unwrap();
            fs.write_file(&p, 0, &vec![(d * 10 + i) as u8; 4096])
                .unwrap();
        }
    }
    fs.sync().unwrap();
    fs.device_mut().take_log();

    // Table II: the tenant's file operations.
    println!("Table II — file operations issued in the tenant VM:");
    println!("  1  write /mnt/box/name1/1.img 32768");
    println!("  2  read  /mnt/box/name9/7.img 4096");
    println!();
    fs.write_file("/name1/1.img", 0, &vec![0xEE; 32768])
        .unwrap();
    fs.sync().unwrap();
    let write_ops = fs.device_mut().take_log();
    let _ = fs.read_file_to_end("/name9/7.img").unwrap();
    let read_ops = fs.device_mut().take_log();
    let groups = vec![
        OpGroup {
            class: OpClass::Append,
            label: "write name1/1.img".into(),
            accesses: write_ops,
        },
        OpGroup {
            class: OpClass::Read,
            label: "read name9/7.img".into(),
            accesses: read_ops,
        },
    ];
    let mut image = fs.into_device().expect("unmount").into_inner();

    // Deploy the monitor middle-box and replay over the wire.
    let mut cloud = build_cloud(testbed.seed);
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(256 << 20, 0);
    install_image(&mut image, &mut vol.shared.clone());
    let recon = Reconstructor::from_device(&mut vol.shared.clone(), "/mnt/box").unwrap();
    let monitor = MonitorService::new(
        MonitorConfig {
            watch: vec!["/mnt/box/name9".into()],
            per_byte_cost: SimDuration::ZERO,
        },
        recon,
    );
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::with_services(
            3,
            RelayMode::Active,
            vec![Box::new(monitor)],
        )],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:tenant",
        &vol,
        Box::new(TraceWorkload::new(groups)),
        testbed.seed,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(30_000_000_000));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0);

    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let monitor = relay
        .service(0)
        .unwrap()
        .downcast_ref::<MonitorService>()
        .unwrap();
    println!("Table I — access log reconstructed inside the monitoring middle-box:");
    println!("{:>4}  {:<8} {:<44} {:>8}", "ID", "op", "file", "size");
    for entry in monitor.analysis() {
        println!(
            "{:>4}  {:<8} {:<44} {:>8}",
            entry.id,
            entry.row.op.to_string(),
            entry.row.target.to_string(),
            entry.row.bytes
        );
    }
    println!();
    println!("alerts (watched directory /mnt/box/name9):");
    for (at, msg) in relay.alerts() {
        println!("  [{at}] {msg}");
    }
}

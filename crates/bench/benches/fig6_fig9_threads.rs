//! Figures 6 and 9: parallelism sweep — 16 KiB requests, 4–32 Fio
//! threads, the three middle-box modes plus LEGACY.
//!
//! Paper reference: MB-ACTIVE-RELAY beats MB-FWD by
//! 1.06/1.10/1.27/1.39× in IOPS and cuts latency to 0.95/0.91/0.79/0.70×
//! as threads grow; at 32 threads the active relay is within 10 % of the
//! paper's LEGACY (whose testbed saturated earlier than this simulator's
//! full-duplex line rate — see EXPERIMENTS.md).

use storm_bench::{fio_point, norm, PathMode, Testbed};

fn main() {
    let testbed = Testbed::default();
    println!("# Figure 6 + Figure 9: parallelism (16 KiB, 50/50 randrw, stream cipher)");
    println!("# paper act/fwd IOPS: 1.06 1.10 1.27 1.39 ; act/fwd latency: 0.95 0.91 0.79 0.70");
    println!();
    println!(
        "{:>4} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} | {:>8}",
        "thr", "LEG iops", "FWD iops", "PAS iops", "ACT iops", "act/fwd", "act lat", "pas/fwd"
    );
    for threads in [4usize, 8, 16, 32] {
        let leg = fio_point(PathMode::Legacy, 16 * 1024, threads, &testbed);
        let fwd = fio_point(PathMode::MbFwd, 16 * 1024, threads, &testbed);
        let pas = fio_point(PathMode::MbPassiveRelay, 16 * 1024, threads, &testbed);
        let act = fio_point(PathMode::MbActiveRelay, 16 * 1024, threads, &testbed);
        println!(
            "{:>4} | {:>9.0} {:>9.0} {:>9.0} {:>9.0} | {:>8} {:>8} | {:>8}",
            threads,
            leg.iops,
            fwd.iops,
            pas.iops,
            act.iops,
            norm(act.iops, fwd.iops),
            norm(act.mean_latency_ms, fwd.mean_latency_ms),
            norm(pas.iops, fwd.iops),
        );
    }
}

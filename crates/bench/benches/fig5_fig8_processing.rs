//! Figures 5 and 8: middle-box processing overhead — MB-FWD vs
//! MB-PASSIVE-RELAY vs MB-ACTIVE-RELAY, all running the byte-wise stream
//! cipher service (except MB-FWD, which does no processing).
//!
//! Paper reference (normalized IOPS to MB-FWD): active
//! 1.01/1.00/1.06/1.14; passive loses 3–13 % as I/O size grows. Latency
//! (active/fwd): 0.98/1.01/0.94/0.89.

use storm_bench::{fio_point, norm, PathMode, Testbed};

fn main() {
    let testbed = Testbed::default();
    println!("# Figure 5 + Figure 8: processing overhead (1 Fio thread, stream cipher)");
    println!("# paper act/fwd IOPS: 1.01 1.00 1.06 1.14 ; act/fwd latency: 0.98 1.01 0.94 0.89");
    println!();
    println!(
        "{:>6} | {:>9} {:>9} {:>9} | {:>8} {:>8} | {:>9} {:>9}",
        "size", "FWD iops", "PAS iops", "ACT iops", "pas/fwd", "act/fwd", "pas lat", "act lat"
    );
    for kb in [4usize, 16, 64, 256] {
        let fwd = fio_point(PathMode::MbFwd, kb * 1024, 1, &testbed);
        let pas = fio_point(PathMode::MbPassiveRelay, kb * 1024, 1, &testbed);
        let act = fio_point(PathMode::MbActiveRelay, kb * 1024, 1, &testbed);
        println!(
            "{:>5}K | {:>9.0} {:>9.0} {:>9.0} | {:>8} {:>8} | {:>9} {:>9}",
            kb,
            fwd.iops,
            pas.iops,
            act.iops,
            norm(pas.iops, fwd.iops),
            norm(act.iops, fwd.iops),
            norm(pas.mean_latency_ms, fwd.mean_latency_ms),
            norm(act.mean_latency_ms, fwd.mean_latency_ms),
        );
    }
}

//! Figures 4 and 7: traffic-redirection overhead, LEGACY vs MB-FWD.
//!
//! One Fio thread, 50/50 random read/write, request sizes 4 KiB–256 KiB;
//! the middle-box performs no processing, so only the extra routing hops
//! are measured. Paper reference points: IOPS ratio 0.93/0.86/0.83/0.82,
//! latency ratio 1.08/1.22/1.25/1.30.

use storm_bench::{fio_point, norm, PathMode, Testbed};

fn main() {
    let testbed = Testbed::default();
    println!("# Figure 4 + Figure 7: routing overhead (1 Fio thread, 50/50 randrw)");
    println!("# paper normalized IOPS (MB-FWD/LEGACY): 0.93 0.86 0.83 0.82");
    println!("# paper normalized latency:              1.08 1.22 1.25 1.30");
    println!();
    println!(
        "{:>6} | {:>12} {:>12} | {:>10} | {:>12} {:>12} | {:>10}",
        "size", "LEGACY iops", "MB-FWD iops", "norm iops", "LEGACY ms", "MB-FWD ms", "norm lat"
    );
    for kb in [4usize, 16, 64, 256] {
        let legacy = fio_point(PathMode::Legacy, kb * 1024, 1, &testbed);
        let fwd = fio_point(PathMode::MbFwd, kb * 1024, 1, &testbed);
        println!(
            "{:>5}K | {:>12.0} {:>12.0} | {:>10} | {:>12.3} {:>12.3} | {:>10}",
            kb,
            legacy.iops,
            fwd.iops,
            norm(fwd.iops, legacy.iops),
            legacy.mean_latency_ms,
            fwd.mean_latency_ms,
            norm(fwd.mean_latency_ms, legacy.mean_latency_ms),
        );
    }
}

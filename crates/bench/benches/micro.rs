//! Criterion micro-benchmarks of the performance-critical primitives:
//! PDU codec, ciphers, flow-table lookup, filesystem operations, semantic
//! reconstruction and the event engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bytes::Bytes;
use storm_block::{MemDisk, RecordingDevice};
use storm_core::{FsOp, Reconstructor};
use storm_crypto::{AesXts, ChaCha20};
use storm_extfs::ExtFs;
use storm_iscsi::{Cdb, DataOut, Pdu, PduStream, ScsiCommand};
use storm_net::{steering_rule, FlowMatch, FlowTable, Frame, MacAddr, TcpFlags, TcpSegment};
use storm_sim::{EventQueue, SimTime};

fn bench_pdu_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("iscsi_codec");
    let pdu = Pdu::DataOut(DataOut {
        final_pdu: true,
        lun: 0,
        itt: 7,
        ttt: 9,
        exp_stat_sn: 1,
        data_sn: 0,
        buffer_offset: 0,
        data: Bytes::from(vec![0xA5u8; 8192]),
    });
    g.throughput(Throughput::Bytes(pdu.wire_len() as u64));
    g.bench_function("encode_8k_data_out", |b| b.iter(|| black_box(pdu.encode())));
    let wire = pdu.encode();
    g.bench_function("stream_parse_8k_data_out", |b| {
        b.iter(|| {
            let mut s = PduStream::new();
            black_box(s.feed(&wire).unwrap())
        })
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let xts = AesXts::from_master_key(&[7u8; 64]);
    let mut sector = vec![0u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("aes_xts_4k", |b| {
        b.iter(|| xts.encrypt_run(black_box(42), 512, &mut sector))
    });
    let chacha = ChaCha20::new(&[9u8; 32], &[1u8; 12]);
    g.bench_function("chacha20_4k", |b| {
        b.iter(|| chacha.apply_keystream_at(black_box(0), &mut sector))
    });
    g.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let mut table = FlowTable::new();
    for i in 0..64u64 {
        table.install(steering_rule(
            10,
            FlowMatch::any()
                .src_mac(MacAddr::nth(i))
                .dst_mac(MacAddr::nth(1000 + i))
                .dst_port(3260),
            MacAddr::nth(2000 + i),
        ));
    }
    let frame = Frame {
        src_mac: MacAddr::nth(63),
        dst_mac: MacAddr::nth(1063),
        src_ip: [10, 0, 0, 1].into(),
        dst_ip: [10, 0, 0, 2].into(),
        tcp: TcpSegment {
            src_port: 40001,
            dst_port: 3260,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            wnd: 0,
            payload: Bytes::new().into(),
        },
        hops: 0,
    };
    c.bench_function("flow_table_lookup_64_rules", |b| {
        b.iter(|| black_box(table.lookup(&frame, storm_net::PortNo(0)).is_some()))
    });
}

fn bench_extfs(c: &mut Criterion) {
    c.bench_function("extfs_create_write_4k", |b| {
        let mut fs = ExtFs::mkfs(MemDisk::with_capacity_bytes(512 << 20)).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/f{i}");
            i += 1;
            fs.create(&path).unwrap();
            fs.write_file(&path, 0, &[0xAB; 4096]).unwrap();
        })
    });
}

fn bench_reconstruction(c: &mut Criterion) {
    // Build a filesystem and a recorded write burst, then measure observe().
    let dev = RecordingDevice::new(MemDisk::with_capacity_bytes(128 << 20));
    let mut fs = ExtFs::mkfs(dev).unwrap();
    fs.mkdir("/d").unwrap();
    fs.create("/d/f").unwrap();
    fs.sync().unwrap();
    fs.device_mut().take_log();
    fs.write_file("/d/f", 0, &vec![7u8; 64 * 1024]).unwrap();
    fs.sync().unwrap();
    let log = fs.device_mut().take_log();
    let mut dev = fs.into_device().unwrap().into_inner();
    let bytes: u64 = log.iter().map(|r| r.len_bytes() as u64).sum();
    let mut g = c.benchmark_group("semantics");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("observe_64k_file_write", |b| {
        b.iter(|| {
            let mut recon = Reconstructor::from_device(&mut dev, "/mnt").unwrap();
            for rec in &log {
                black_box(recon.observe(FsOp::Write, rec.lba, rec.len_bytes(), Some(&rec.data)));
            }
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos(i * 37 % 5000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_scsi_cdb(c: &mut Criterion) {
    let cdb = Cdb::Write {
        lba: 123456,
        sectors: 128,
    }
    .to_bytes();
    c.bench_function("cdb_parse", |b| {
        b.iter(|| black_box(Cdb::parse(&cdb).unwrap()))
    });
    let cmd = Pdu::ScsiCommand(ScsiCommand {
        immediate: false,
        final_pdu: true,
        read: false,
        write: true,
        lun: 0,
        itt: 1,
        edtl: 65536,
        cmd_sn: 1,
        exp_stat_sn: 1,
        cdb,
        data: Bytes::new(),
    });
    c.bench_function("scsi_command_encode", |b| {
        b.iter(|| black_box(cmd.encode()))
    });
}

criterion_group!(
    benches,
    bench_pdu_codec,
    bench_crypto,
    bench_flow_table,
    bench_extfs,
    bench_reconstruction,
    bench_event_queue,
    bench_scsi_cdb
);
criterion_main!(benches);

//! Shared experiment runners behind the per-figure bench targets.
//!
//! Every `cargo bench` target in this crate regenerates one table or
//! figure of the paper's evaluation (see DESIGN.md's experiment index).
//! The runners here assemble the testbed exactly as §V describes: a
//! cloud of compute hosts + one Cinder storage host, a 20 GB volume, the
//! tenant VM on one host and — in the middle-box cases — the ingress
//! gateway, middle-box VM and egress gateway spread across *different*
//! physical hosts ("to measure the routing impact in the worst case").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use storm_cloud::{Cloud, CloudConfig, VolumeHandle};
use storm_core::{ActiveRelayMb, MbSpec, RelayCopyStats, RelayMode, StormPlatform};
use storm_net::AppId;
use storm_services::EncryptionService;
use storm_sim::trace::TraceHook;
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{FioJob, FioWorkload};

mod fleet;
mod qos;
mod results;
mod services_suite;

pub use fleet::{run_fleet, FleetConfig, FleetRun};
pub use qos::{interference_point, provisioning_churn_point, ChurnOutcome, InterferenceOutcome};
pub use results::{BenchResults, ScenarioResult};
pub use services_suite::{
    cache_hit_point, dedup_ratio_point, suite_passthrough_point, CacheHitOutcome, DedupRatioOutcome,
};

/// Which data path the experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMode {
    /// Direct VM → target (the baseline without StorM).
    Legacy,
    /// Steered through a middle-box doing pure IP forwarding.
    MbFwd,
    /// Steered through a passive-relay middle-box running the stream
    /// cipher service.
    MbPassiveRelay,
    /// Steered through an active-relay middle-box running the stream
    /// cipher service.
    MbActiveRelay,
}

impl std::fmt::Display for PathMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathMode::Legacy => write!(f, "LEGACY"),
            PathMode::MbFwd => write!(f, "MB-FWD"),
            PathMode::MbPassiveRelay => write!(f, "MB-PASSIVE-RELAY"),
            PathMode::MbActiveRelay => write!(f, "MB-ACTIVE-RELAY"),
        }
    }
}

/// Result of one Fio experiment point.
#[derive(Debug, Clone, Copy)]
pub struct FioPoint {
    /// Completed operations.
    pub ops: u64,
    /// Operations per second over the measurement window.
    pub iops: f64,
    /// Mean I/O latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median I/O latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile I/O latency in milliseconds.
    pub p99_ms: f64,
}

/// The shared testbed parameters (one place to calibrate).
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Volume size in bytes (paper: 20 GB).
    pub volume_bytes: u64,
    /// Measurement duration per point.
    pub duration: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Stream-cipher per-byte processing cost inside the middle-box.
    pub cipher_cost_per_byte: SimDuration,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            volume_bytes: 20 << 30,
            duration: SimDuration::from_secs(5),
            seed: 20160628,
            // A byte-wise software stream cipher (~250 MB/s single core).
            cipher_cost_per_byte: SimDuration::from_nanos(4),
        }
    }
}

/// Builds the standard cloud: tenant VM on compute0, gateways on 1 and 2,
/// middle-box on compute3 (all different physical machines), one storage
/// host.
pub fn build_cloud(seed: u64) -> Cloud {
    let mut cfg = CloudConfig {
        seed,
        backing_bytes: 64 << 30, // room for the 20 GB test volume + replicas
        ..CloudConfig::default()
    };
    // Steady-state page cache, as after the paper's repeated runs.
    cfg.target.disk.prewarmed = true;
    Cloud::build(cfg)
}

/// Attaches `volume` on compute0 over the requested path and returns the
/// client app.
pub fn attach_over_path(
    cloud: &mut Cloud,
    mode: PathMode,
    volume: &VolumeHandle,
    workload: Box<dyn storm_cloud::Workload>,
    testbed: &Testbed,
    timeline: bool,
) -> AppId {
    match mode {
        PathMode::Legacy => {
            let app = cloud.attach_volume(0, "vm:tenant", volume, workload, testbed.seed, timeline);
            // Drive the login to completion like the platform does
            // (event-stepped, not polled).
            let deadline = cloud.net.now() + SimDuration::from_secs(5);
            while !cloud.client_mut(0, app).is_ready() && cloud.net.step_until(deadline) {}
            app
        }
        PathMode::MbFwd | PathMode::MbPassiveRelay | PathMode::MbActiveRelay => {
            let platform = StormPlatform::default();
            let spec = match mode {
                PathMode::MbFwd => MbSpec::bare(3, RelayMode::Forward),
                PathMode::MbPassiveRelay => {
                    let mut enc = EncryptionService::stream_cipher(&[9u8; 32], &[4u8; 12]);
                    enc.set_per_byte_cost(testbed.cipher_cost_per_byte);
                    MbSpec::with_services(3, RelayMode::Passive, vec![Box::new(enc)])
                }
                PathMode::MbActiveRelay => {
                    let mut enc = EncryptionService::stream_cipher(&[9u8; 32], &[4u8; 12]);
                    enc.set_per_byte_cost(testbed.cipher_cost_per_byte);
                    MbSpec::with_services(3, RelayMode::Active, vec![Box::new(enc)])
                }
                PathMode::Legacy => unreachable!(),
            };
            let deployment = platform.deploy_chain(cloud, volume, (1, 2), vec![spec]);
            platform.attach_volume_steered(
                cloud,
                &deployment,
                0,
                "vm:tenant",
                volume,
                workload,
                testbed.seed,
                timeline,
            )
        }
    }
}

/// Runs one Fio point: `block_bytes` requests, `threads` outstanding,
/// 50/50 random mix, over the given path.
pub fn fio_point(
    mode: PathMode,
    block_bytes: usize,
    threads: usize,
    testbed: &Testbed,
) -> FioPoint {
    fio_point_traced(mode, block_bytes, threads, testbed, TraceHook::none())
}

/// Like [`fio_point`], with a trace hook armed across the whole cloud
/// before any volume is attached (pass `TraceHook::none()` to disable).
pub fn fio_point_traced(
    mode: PathMode,
    block_bytes: usize,
    threads: usize,
    testbed: &Testbed,
    hook: TraceHook,
) -> FioPoint {
    let mut cloud = build_cloud(testbed.seed);
    cloud.set_trace_hook(hook);
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let job = FioJob::randrw(block_bytes, testbed.duration, vol.sectors).threads(threads);
    let app = attach_over_path(
        &mut cloud,
        mode,
        &vol,
        Box::new(FioWorkload::new(job)),
        testbed,
        false,
    );
    let start = cloud.net.now();
    let end = start + testbed.duration + SimDuration::from_secs(2);
    cloud.net.run_until(SimTime::from_nanos(end.as_nanos()));
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "login failed in {mode}");
    assert_eq!(client.stats.errors, 0, "I/O errors in {mode}");
    let ops = client.stats.ops();
    let iops = ops as f64 / testbed.duration.as_secs_f64();
    let mean_latency_ms = client.stats.latency.mean().as_nanos() as f64 / 1e6;
    let p50_ms = client.stats.latency.percentile(50.0).as_nanos() as f64 / 1e6;
    let p99_ms = client.stats.latency.percentile(99.0).as_nanos() as f64 / 1e6;
    FioPoint {
        ops,
        iops,
        mean_latency_ms,
        p50_ms,
        p99_ms,
    }
}

/// Result of one passthrough-chain run: the fio point plus the relay's
/// memcpy accounting.
#[derive(Debug, Clone, Copy)]
pub struct PassthroughPoint {
    /// The measured latency/throughput point.
    pub point: FioPoint,
    /// PDUs forwarded through the (empty) service chain.
    pub pdus_forwarded: u64,
    /// Raw copy counters read back from the relay.
    pub copy: RelayCopyStats,
}

impl PassthroughPoint {
    /// Data-segment bytes copied per forwarded PDU — the zero-copy
    /// acceptance metric. 0.0 when nothing was forwarded.
    pub fn bytes_copied_per_pdu(&self) -> f64 {
        if self.pdus_forwarded == 0 {
            return 0.0;
        }
        self.copy.data_bytes_copied as f64 / self.pdus_forwarded as f64
    }
}

/// Runs the zero-copy acceptance scenario: an active relay with an
/// **empty** service chain (pure passthrough), then reads the relay's
/// [`RelayCopyStats`] back out of the middle-box app.
///
/// On this path every data PDU must take the verbatim fast path, so
/// `copy.data_bytes_copied` stays 0 — only fixed 48-byte header copies
/// are allowed.
pub fn passthrough_point(
    block_bytes: usize,
    threads: usize,
    testbed: &Testbed,
) -> PassthroughPoint {
    let mut cloud = build_cloud(testbed.seed);
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let platform = StormPlatform::default();
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::bare(3, RelayMode::Active)],
    );
    let job = FioJob::randrw(block_bytes, testbed.duration, vol.sectors).threads(threads);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:tenant",
        &vol,
        Box::new(FioWorkload::new(job)),
        testbed.seed,
        false,
    );
    let start = cloud.net.now();
    let end = start + testbed.duration + SimDuration::from_secs(2);
    cloud.net.run_until(SimTime::from_nanos(end.as_nanos()));
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "login failed on passthrough path");
    assert_eq!(client.stats.errors, 0, "I/O errors on passthrough path");
    let ops = client.stats.ops();
    let point = FioPoint {
        ops,
        iops: ops as f64 / testbed.duration.as_secs_f64(),
        mean_latency_ms: client.stats.latency.mean().as_nanos() as f64 / 1e6,
        p50_ms: client.stats.latency.percentile(50.0).as_nanos() as f64 / 1e6,
        p99_ms: client.stats.latency.percentile(99.0).as_nanos() as f64 / 1e6,
    };
    let node = deployment.mb_nodes[0].node;
    let mb_app = deployment.mb_apps[0].expect("active relay has an app");
    let relay = cloud
        .net
        .app_mut(node, mb_app)
        .expect("middle-box app present")
        .downcast_ref::<ActiveRelayMb>()
        .expect("app is an ActiveRelayMb");
    PassthroughPoint {
        point,
        pdus_forwarded: relay.pdus_forwarded(),
        copy: relay.copy_stats(),
    }
}

/// Formats a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join("  | ")
}

/// Pretty-prints a normalized value the way the paper's bar charts label
/// them.
pub fn norm(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "-".into();
    }
    format!("{:.2}", value / baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_point_produces_iops() {
        let testbed = Testbed {
            duration: SimDuration::from_secs(1),
            volume_bytes: 1 << 30,
            ..Testbed::default()
        };
        let p = fio_point(PathMode::Legacy, 4096, 1, &testbed);
        assert!(p.iops > 100.0, "{p:?}");
        assert!(p.mean_latency_ms > 0.0);
    }

    #[test]
    fn mb_fwd_point_is_slower_than_legacy() {
        let testbed = Testbed {
            duration: SimDuration::from_secs(1),
            volume_bytes: 1 << 30,
            ..Testbed::default()
        };
        let legacy = fio_point(PathMode::Legacy, 65536, 1, &testbed);
        let fwd = fio_point(PathMode::MbFwd, 65536, 1, &testbed);
        assert!(
            fwd.iops < legacy.iops,
            "redirection must cost something: {legacy:?} vs {fwd:?}"
        );
    }
}

//! Shared experiment runners behind the per-figure bench targets.
//!
//! Every `cargo bench` target in this crate regenerates one table or
//! figure of the paper's evaluation (see DESIGN.md's experiment index).
//! The runners here assemble the testbed exactly as §V describes: a
//! cloud of compute hosts + one Cinder storage host, a 20 GB volume, the
//! tenant VM on one host and — in the middle-box cases — the ingress
//! gateway, middle-box VM and egress gateway spread across *different*
//! physical hosts ("to measure the routing impact in the worst case").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use storm_cloud::{Cloud, CloudConfig, VolumeHandle};
use storm_core::{
    ActiveRelayMb, ChainDeployment, MbSpec, RelayCopyStats, RelayMode, StormPlatform,
};
use storm_iscsi::TransportKind;
use storm_net::{AppId, LinkSpec};
use storm_services::EncryptionService;
use storm_sim::trace::TraceHook;
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{FioJob, FioWorkload};

mod fleet;
mod qos;
mod results;
mod services_suite;

pub use fleet::{run_fleet, FleetConfig, FleetRun};
pub use qos::{interference_point, provisioning_churn_point, ChurnOutcome, InterferenceOutcome};
pub use results::{BenchResults, ScenarioResult};
pub use services_suite::{
    cache_hit_point, dedup_ratio_point, suite_passthrough_point, CacheHitOutcome, DedupRatioOutcome,
};

/// Which data path the experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMode {
    /// Direct VM → target (the baseline without StorM).
    Legacy,
    /// Steered through a middle-box doing pure IP forwarding.
    MbFwd,
    /// Steered through a passive-relay middle-box running the stream
    /// cipher service.
    MbPassiveRelay,
    /// Steered through an active-relay middle-box running the stream
    /// cipher service.
    MbActiveRelay,
}

impl std::fmt::Display for PathMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathMode::Legacy => write!(f, "LEGACY"),
            PathMode::MbFwd => write!(f, "MB-FWD"),
            PathMode::MbPassiveRelay => write!(f, "MB-PASSIVE-RELAY"),
            PathMode::MbActiveRelay => write!(f, "MB-ACTIVE-RELAY"),
        }
    }
}

/// Result of one Fio experiment point.
#[derive(Debug, Clone, Copy)]
pub struct FioPoint {
    /// Completed operations.
    pub ops: u64,
    /// Operations per second over the measurement window.
    pub iops: f64,
    /// Mean I/O latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median I/O latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile I/O latency in milliseconds.
    pub p99_ms: f64,
}

/// The shared testbed parameters (one place to calibrate).
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Volume size in bytes (paper: 20 GB).
    pub volume_bytes: u64,
    /// Measurement duration per point.
    pub duration: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Stream-cipher per-byte processing cost inside the middle-box.
    pub cipher_cost_per_byte: SimDuration,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            volume_bytes: 20 << 30,
            duration: SimDuration::from_secs(5),
            seed: 20160628,
            // A byte-wise software stream cipher (~250 MB/s single core).
            cipher_cost_per_byte: SimDuration::from_nanos(4),
        }
    }
}

/// Builds the standard cloud: tenant VM on compute0, gateways on 1 and 2,
/// middle-box on compute3 (all different physical machines), one storage
/// host.
pub fn build_cloud(seed: u64) -> Cloud {
    let mut cfg = CloudConfig {
        seed,
        backing_bytes: 64 << 30, // room for the 20 GB test volume + replicas
        ..CloudConfig::default()
    };
    // Steady-state page cache, as after the paper's repeated runs.
    cfg.target.disk.prewarmed = true;
    Cloud::build(cfg)
}

/// Attaches `volume` on compute0 over the requested path and returns the
/// client app.
pub fn attach_over_path(
    cloud: &mut Cloud,
    mode: PathMode,
    volume: &VolumeHandle,
    workload: Box<dyn storm_cloud::Workload>,
    testbed: &Testbed,
    timeline: bool,
) -> AppId {
    match mode {
        PathMode::Legacy => {
            let app = cloud.attach_volume(0, "vm:tenant", volume, workload, testbed.seed, timeline);
            // Drive the login to completion like the platform does
            // (event-stepped, not polled).
            let deadline = cloud.net.now() + SimDuration::from_secs(5);
            while !cloud.client_mut(0, app).is_ready() && cloud.net.step_until(deadline) {}
            app
        }
        PathMode::MbFwd | PathMode::MbPassiveRelay | PathMode::MbActiveRelay => {
            let platform = StormPlatform::default();
            let spec = match mode {
                PathMode::MbFwd => MbSpec::bare(3, RelayMode::Forward),
                PathMode::MbPassiveRelay => {
                    let mut enc = EncryptionService::stream_cipher(&[9u8; 32], &[4u8; 12]);
                    enc.set_per_byte_cost(testbed.cipher_cost_per_byte);
                    MbSpec::with_services(3, RelayMode::Passive, vec![Box::new(enc)])
                }
                PathMode::MbActiveRelay => {
                    let mut enc = EncryptionService::stream_cipher(&[9u8; 32], &[4u8; 12]);
                    enc.set_per_byte_cost(testbed.cipher_cost_per_byte);
                    MbSpec::with_services(3, RelayMode::Active, vec![Box::new(enc)])
                }
                PathMode::Legacy => unreachable!(),
            };
            let deployment = platform.deploy_chain(cloud, volume, (1, 2), vec![spec]);
            platform.attach_volume_steered(
                cloud,
                &deployment,
                0,
                "vm:tenant",
                volume,
                workload,
                testbed.seed,
                timeline,
            )
        }
    }
}

/// Runs one Fio point: `block_bytes` requests, `threads` outstanding,
/// 50/50 random mix, over the given path.
pub fn fio_point(
    mode: PathMode,
    block_bytes: usize,
    threads: usize,
    testbed: &Testbed,
) -> FioPoint {
    fio_point_traced(mode, block_bytes, threads, testbed, TraceHook::none())
}

/// Like [`fio_point`], with a trace hook armed across the whole cloud
/// before any volume is attached (pass `TraceHook::none()` to disable).
pub fn fio_point_traced(
    mode: PathMode,
    block_bytes: usize,
    threads: usize,
    testbed: &Testbed,
    hook: TraceHook,
) -> FioPoint {
    let mut cloud = build_cloud(testbed.seed);
    cloud.set_trace_hook(hook);
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let job = FioJob::randrw(block_bytes, testbed.duration, vol.sectors).threads(threads);
    let app = attach_over_path(
        &mut cloud,
        mode,
        &vol,
        Box::new(FioWorkload::new(job)),
        testbed,
        false,
    );
    run_and_measure(&mut cloud, app, testbed, &mode.to_string())
}

/// Drives an attached client to the end of the measurement window (plus
/// drain slack) and folds its stats into a [`FioPoint`]. Every scenario
/// runner funnels through here so the window arithmetic and the
/// ready/error acceptance checks live in exactly one place.
fn run_and_measure(cloud: &mut Cloud, app: AppId, testbed: &Testbed, label: &str) -> FioPoint {
    let start = cloud.net.now();
    let end = start + testbed.duration + SimDuration::from_secs(2);
    cloud.net.run_until(SimTime::from_nanos(end.as_nanos()));
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "login failed in {label}");
    assert_eq!(client.stats.errors, 0, "I/O errors in {label}");
    let ops = client.stats.ops();
    FioPoint {
        ops,
        iops: ops as f64 / testbed.duration.as_secs_f64(),
        mean_latency_ms: client.stats.latency.mean().as_nanos() as f64 / 1e6,
        p50_ms: client.stats.latency.percentile(50.0).as_nanos() as f64 / 1e6,
        p99_ms: client.stats.latency.percentile(99.0).as_nanos() as f64 / 1e6,
    }
}

/// Reads `(pdus_forwarded, copy_stats)` back out of the first middle-box
/// of a deployed chain.
fn relay_copy_stats(cloud: &mut Cloud, deployment: &ChainDeployment) -> (u64, RelayCopyStats) {
    let node = deployment.mb_nodes[0].node;
    let mb_app = deployment.mb_apps[0].expect("active relay has an app");
    let relay = cloud
        .net
        .app_mut(node, mb_app)
        .expect("middle-box app present")
        .downcast_ref::<ActiveRelayMb>()
        .expect("app is an ActiveRelayMb");
    (relay.pdus_forwarded(), relay.copy_stats())
}

/// Result of one passthrough-chain run: the fio point plus the relay's
/// memcpy accounting.
#[derive(Debug, Clone, Copy)]
pub struct PassthroughPoint {
    /// The measured latency/throughput point.
    pub point: FioPoint,
    /// PDUs forwarded through the (empty) service chain.
    pub pdus_forwarded: u64,
    /// Raw copy counters read back from the relay.
    pub copy: RelayCopyStats,
}

impl PassthroughPoint {
    /// Data-segment bytes copied per forwarded PDU — the zero-copy
    /// acceptance metric. 0.0 when nothing was forwarded.
    pub fn bytes_copied_per_pdu(&self) -> f64 {
        if self.pdus_forwarded == 0 {
            return 0.0;
        }
        self.copy.data_bytes_copied as f64 / self.pdus_forwarded as f64
    }
}

/// Runs the zero-copy acceptance scenario: an active relay with an
/// **empty** service chain (pure passthrough), then reads the relay's
/// [`RelayCopyStats`] back out of the middle-box app.
///
/// On this path every data PDU must take the verbatim fast path, so
/// `copy.data_bytes_copied` stays 0 — only fixed 48-byte header copies
/// are allowed.
pub fn passthrough_point(
    block_bytes: usize,
    threads: usize,
    testbed: &Testbed,
) -> PassthroughPoint {
    let mut cloud = build_cloud(testbed.seed);
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let platform = StormPlatform::default();
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::bare(3, RelayMode::Active)],
    );
    let job = FioJob::randrw(block_bytes, testbed.duration, vol.sectors).threads(threads);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:tenant",
        &vol,
        Box::new(FioWorkload::new(job)),
        testbed.seed,
        false,
    );
    let point = run_and_measure(&mut cloud, app, testbed, "passthrough path");
    let (pdus_forwarded, copy) = relay_copy_stats(&mut cloud, &deployment);
    PassthroughPoint {
        point,
        pdus_forwarded,
        copy,
    }
}

/// One point of the transport lab: the chosen wire protocol at a given
/// submission-queue depth, pushed through a bare active relay.
#[derive(Debug, Clone, Copy)]
pub struct TransportPoint {
    /// The measured latency/throughput point.
    pub point: FioPoint,
    /// Request size the point ran with.
    pub block_bytes: usize,
    /// Submission-queue depth the session ran with.
    pub queue_depth: u16,
    /// High-water mark of commands in the submission ring (0 on iSCSI).
    pub sq_peak: usize,
    /// `(doorbell frames sent, SQEs they carried)` — `(0, 0)` on iSCSI.
    pub doorbell: (u64, u64),
    /// `(completion frames received, CQEs they carried)` — `(0, 0)` on
    /// iSCSI.
    pub cq: (u64, u64),
    /// `(target dispatch ticks, commands admitted across them)`.
    pub dispatch: (u64, u64),
    /// Command units forwarded through the relay chain.
    pub pdus_forwarded: u64,
    /// The relay's memcpy accounting.
    pub copy: RelayCopyStats,
}

impl TransportPoint {
    /// Data throughput in MB/s (decimal, as the paper's figures label).
    pub fn throughput_mbps(&self) -> f64 {
        self.point.iops * self.block_bytes as f64 / 1e6
    }

    /// Average SQEs flushed per doorbell write.
    pub fn doorbell_batch(&self) -> f64 {
        ratio(self.doorbell.1, self.doorbell.0)
    }

    /// Average CQEs per completion interrupt — the realized
    /// interrupt-moderation coalescing factor.
    pub fn cq_batch(&self) -> f64 {
        ratio(self.cq.1, self.cq.0)
    }

    /// Average commands the target admitted per dispatch tick.
    pub fn dispatch_batch(&self) -> f64 {
        ratio(self.dispatch.1, self.dispatch.0)
    }

    /// Data-segment bytes copied per forwarded unit (the zero-copy
    /// acceptance metric; 0.0 when nothing was forwarded).
    pub fn bytes_copied_per_pdu(&self) -> f64 {
        ratio(self.copy.data_bytes_copied, self.pdus_forwarded)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs one transport-lab point: `kind` at `queue_depth`, `block_bytes`
/// requests through a **bare** active relay (the offload-vs-relay
/// scenario), with the workload keeping `queue_depth` requests
/// outstanding so the ring actually fills.
///
/// The lab swaps the testbed's 1 GbE storage fabric for 10 GbE and its
/// vhost-copied virtio vifs for SR-IOV-style passthrough vNICs (full
/// duplex, no 7 µs per-packet software copy) — the sweep measures how
/// deep queues amortize per-command costs, and either software ceiling
/// would clip the QD=32 point at ~110 MB/s before the rings matter.
pub fn transport_point(
    kind: TransportKind,
    queue_depth: u16,
    block_bytes: usize,
    testbed: &Testbed,
) -> TransportPoint {
    let mut cfg = CloudConfig {
        seed: testbed.seed,
        backing_bytes: 64 << 30,
        transport: kind,
        queue_depth,
        phys_link: LinkSpec {
            bandwidth_bps: 10_000_000_000,
            ..LinkSpec::gigabit()
        },
        virtio_link: LinkSpec {
            per_packet: SimDuration::from_micros(1),
            half_duplex: false,
            ..LinkSpec::virtio()
        },
        ..CloudConfig::default()
    };
    cfg.target.disk.prewarmed = true;
    let mut cloud = Cloud::build(cfg);
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let platform = StormPlatform::default();
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::bare(3, RelayMode::Active)],
    );
    let job =
        FioJob::randrw(block_bytes, testbed.duration, vol.sectors).threads(queue_depth as usize);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:tenant",
        &vol,
        Box::new(FioWorkload::new(job)),
        testbed.seed,
        false,
    );
    let label = format!("{kind} qd{queue_depth}");
    let point = run_and_measure(&mut cloud, app, testbed, &label);
    let (pdus_forwarded, copy) = relay_copy_stats(&mut cloud, &deployment);
    let (ticks, admitted, _peak_batch) = cloud.target_mut(0).dispatch_stats();
    let t = cloud.client_mut(0, app).transport();
    TransportPoint {
        point,
        block_bytes,
        queue_depth,
        sq_peak: t.sq_peak(),
        doorbell: t.doorbell_stats(),
        cq: t.cq_stats(),
        dispatch: (ticks, admitted),
        pdus_forwarded,
        copy,
    }
}

/// Formats a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join("  | ")
}

/// Pretty-prints a normalized value the way the paper's bar charts label
/// them.
pub fn norm(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "-".into();
    }
    format!("{:.2}", value / baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_point_produces_iops() {
        let testbed = Testbed {
            duration: SimDuration::from_secs(1),
            volume_bytes: 1 << 30,
            ..Testbed::default()
        };
        let p = fio_point(PathMode::Legacy, 4096, 1, &testbed);
        assert!(p.iops > 100.0, "{p:?}");
        assert!(p.mean_latency_ms > 0.0);
    }

    #[test]
    fn mb_fwd_point_is_slower_than_legacy() {
        let testbed = Testbed {
            duration: SimDuration::from_secs(1),
            volume_bytes: 1 << 30,
            ..Testbed::default()
        };
        let legacy = fio_point(PathMode::Legacy, 65536, 1, &testbed);
        let fwd = fio_point(PathMode::MbFwd, 65536, 1, &testbed);
        assert!(
            fwd.iops < legacy.iops,
            "redirection must cost something: {legacy:?} vs {fwd:?}"
        );
    }
}

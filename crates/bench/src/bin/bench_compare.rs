//! Compares a bench run against a committed baseline and fails on
//! regressions.
//!
//! ```text
//! bench_compare <baseline.json> <results.json>
//! ```
//!
//! For every scenario in the baseline, the run must contain a scenario
//! with the same name whose `p99_ms` and `bytes_copied_per_pdu` (when the
//! baseline records one) are no more than [`TOLERANCE`] above the
//! baseline value. A zero baseline (the zero-copy invariant) admits no
//! increase at all: any copied data byte is a regression, not noise.
//!
//! The parser is deliberately tied to the fixed key order emitted by
//! `storm_bench::results` — one JSON object per line, no escaping in
//! names — so the comparison needs no JSON dependency.

use std::process::ExitCode;

/// Allowed fractional increase over the baseline before failing.
const TOLERANCE: f64 = 0.10;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, results_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <results.json>");
        return ExitCode::from(2);
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_compare: cannot read {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let results = match std::fs::read_to_string(results_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_compare: cannot read {results_path}: {e}");
            return ExitCode::from(2);
        }
    };
    match compare(&baseline, &results) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}

/// Lower-is-better fields compared against the baseline. `p99_ms` guards
/// tail latency; `bytes_copied_per_pdu` guards the zero-copy relay
/// invariant; `peak_rss_mb` guards the fleet run's memory ceiling (its
/// committed baseline carries generous slack because RSS measures the
/// host, not the simulation); `scan_ms` guards the cold storm-lint
/// workspace scan so interprocedural analysis never becomes the slow
/// step of CI (its baseline is also a slack host-clock ceiling).
const GUARDED: [&str; 4] = ["p99_ms", "bytes_copied_per_pdu", "peak_rss_mb", "scan_ms"];

/// Higher-is-better fields: the run must not fall more than [`TOLERANCE`]
/// below the baseline. `throughput_mbps` guards data-path bandwidth —
/// most pointedly the deep-queue `transport.qd_sweep.qd32` point, whose
/// whole reason to exist is throughput; `cq_batch_avg` guards that
/// interrupt moderation keeps coalescing completions; `slo_attainment`
/// guards the QoS isolation claim; `migrations` guards that the
/// provisioning control loop still fires; `hit_rate` and `dedup_ratio`
/// guard the data-reduction suite's effectiveness on its reference
/// workloads; `events_per_sec` guards the fleet executor's throughput
/// (committed baseline is a conservative floor, ~half a healthy run,
/// because wall clocks are noisy on CI).
const GUARDED_MIN: [&str; 7] = [
    "throughput_mbps",
    "cq_batch_avg",
    "slo_attainment",
    "migrations",
    "hit_rate",
    "dedup_ratio",
    "events_per_sec",
];

/// Compares two result files; `Ok` is the pass report, `Err` the failure
/// report.
fn compare(baseline: &str, results: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut failures = 0;
    let mut checked = 0;
    for (name, base_line) in scenarios(baseline) {
        let Some(run_line) = scenarios(results).find(|(n, _)| *n == name).map(|(_, l)| l) else {
            out.push_str(&format!("FAIL {name}: missing from results\n"));
            failures += 1;
            continue;
        };
        let ceilings = GUARDED.iter().map(|f| (*f, false));
        let floors = GUARDED_MIN.iter().map(|f| (*f, true));
        for (field, higher_is_better) in ceilings.chain(floors) {
            let Some(base) = field_value(base_line, field) else {
                continue; // baseline does not guard this field for this scenario
            };
            let Some(run) = field_value(run_line, field) else {
                out.push_str(&format!("FAIL {name}: results lack \"{field}\"\n"));
                failures += 1;
                continue;
            };
            checked += 1;
            // A zero baseline tolerates zero: 10% of nothing is nothing.
            let failed = if higher_is_better {
                run < base * (1.0 - TOLERANCE) - f64::EPSILON
            } else {
                run > base * (1.0 + TOLERANCE) + f64::EPSILON
            };
            if failed {
                let dir = if higher_is_better {
                    "falls below"
                } else {
                    "exceeds"
                };
                out.push_str(&format!(
                    "FAIL {name}: {field} {run:.3} {dir} baseline {base:.3} by more than {:.0}%\n",
                    TOLERANCE * 100.0
                ));
                failures += 1;
            } else {
                out.push_str(&format!(
                    "ok   {name}: {field} {run:.3} (baseline {base:.3})\n"
                ));
            }
        }
    }
    if checked == 0 {
        return Err(format!("{out}FAIL: no guarded fields compared\n"));
    }
    if failures > 0 {
        Err(format!("{out}{failures} regression(s) against baseline\n"))
    } else {
        Ok(format!(
            "{out}all {checked} checks within {:.0}% of baseline\n",
            TOLERANCE * 100.0
        ))
    }
}

/// Yields `(name, line)` for each scenario object in a results file.
fn scenarios(json: &str) -> impl Iterator<Item = (&str, &str)> {
    json.lines().filter_map(|line| {
        let line = line.trim().trim_end_matches(',');
        let rest = line.strip_prefix("{\"name\":\"")?;
        let end = rest.find('"')?;
        Some((&rest[..end], line))
    })
}

/// Extracts a numeric field from a scenario line.
fn field_value(line: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != 'e')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "benchmarks": [
    {"name":"a","mode":"LEGACY","block_bytes":65536,"threads":1,"ops":10,"iops":10.0,"throughput_mbps":1.00,"mean_ms":1.000,"p50_ms":1.000,"p99_ms":1.000},
    {"name":"z","mode":"MB-ACTIVE-RELAY","block_bytes":65536,"threads":1,"ops":10,"iops":10.0,"throughput_mbps":1.00,"mean_ms":1.000,"p50_ms":1.000,"p99_ms":1.000,"bytes_copied_per_pdu":0.000}
  ]
}"#;

    fn run(p99_a: f64, p99_z: f64, copied: f64) -> String {
        format!(
            concat!(
                "{{\n  \"benchmarks\": [\n",
                "    {{\"name\":\"a\",\"throughput_mbps\":1.00,\"p99_ms\":{:.3}}},\n",
                "    {{\"name\":\"z\",\"throughput_mbps\":1.00,\"p99_ms\":{:.3},\
                 \"bytes_copied_per_pdu\":{:.3}}}\n",
                "  ]\n}}"
            ),
            p99_a, p99_z, copied
        )
    }

    #[test]
    fn within_tolerance_passes() {
        assert!(compare(BASE, &run(1.05, 1.09, 0.0)).is_ok());
    }

    #[test]
    fn p99_regression_fails() {
        let err = compare(BASE, &run(1.2, 1.0, 0.0)).unwrap_err();
        assert!(err.contains("FAIL a: p99_ms"), "{err}");
    }

    #[test]
    fn zero_baseline_admits_no_copies() {
        let err = compare(BASE, &run(1.0, 1.0, 0.5)).unwrap_err();
        assert!(err.contains("FAIL z: bytes_copied_per_pdu"), "{err}");
    }

    #[test]
    fn missing_scenario_fails() {
        let only_a = "{\"name\":\"a\",\"p99_ms\":1.000}";
        assert!(compare(BASE, only_a).is_err());
    }

    #[test]
    fn improvement_passes() {
        assert!(compare(BASE, &run(0.5, 0.9, 0.0)).is_ok());
    }

    const QOS_BASE: &str = r#"{
  "benchmarks": [
    {"name":"q","mode":"LEGACY","block_bytes":4096,"threads":1,"ops":10,"iops":10.0,"throughput_mbps":1.00,"mean_ms":1.000,"p50_ms":1.000,"p99_ms":2.000,"migrations":1.000,"slo_attainment":0.950}
  ]
}"#;

    fn qos_run(p99: f64, migrations: f64, attainment: f64) -> String {
        format!(
            "{{\n  \"benchmarks\": [\n    {{\"name\":\"q\",\"throughput_mbps\":1.00,\
             \"p99_ms\":{p99:.3},\
             \"migrations\":{migrations:.3},\"slo_attainment\":{attainment:.3}}}\n  ]\n}}"
        )
    }

    #[test]
    fn attainment_drop_fails() {
        let err = compare(QOS_BASE, &qos_run(2.0, 1.0, 0.5)).unwrap_err();
        assert!(err.contains("FAIL q: slo_attainment"), "{err}");
        assert!(err.contains("falls below"), "{err}");
    }

    #[test]
    fn attainment_gain_passes() {
        assert!(compare(QOS_BASE, &qos_run(2.0, 2.0, 1.0)).is_ok());
    }

    #[test]
    fn lost_migration_fails() {
        let err = compare(QOS_BASE, &qos_run(2.0, 0.0, 0.95)).unwrap_err();
        assert!(err.contains("FAIL q: migrations"), "{err}");
    }

    const SUITE_BASE: &str = r#"{
  "benchmarks": [
    {"name":"c","mode":"MB-ACTIVE-RELAY","block_bytes":4096,"threads":1,"ops":10,"iops":10.0,"throughput_mbps":1.00,"mean_ms":1.000,"p50_ms":1.000,"p99_ms":2.000,"hit_rate":0.800},
    {"name":"d","mode":"MB-ACTIVE-RELAY","block_bytes":65536,"threads":1,"ops":10,"iops":10.0,"throughput_mbps":1.00,"mean_ms":1.000,"p50_ms":1.000,"p99_ms":2.000,"dedup_ratio":4.000}
  ]
}"#;

    fn suite_run(hit_rate: f64, ratio: f64) -> String {
        format!(
            "{{\n  \"benchmarks\": [\n    {{\"name\":\"c\",\"throughput_mbps\":1.00,\
             \"p99_ms\":2.000,\
             \"hit_rate\":{hit_rate:.3}}},\n    {{\"name\":\"d\",\"throughput_mbps\":1.00,\
             \"p99_ms\":2.000,\
             \"dedup_ratio\":{ratio:.3}}}\n  ]\n}}"
        )
    }

    #[test]
    fn hit_rate_drop_fails() {
        let err = compare(SUITE_BASE, &suite_run(0.5, 4.0)).unwrap_err();
        assert!(err.contains("FAIL c: hit_rate"), "{err}");
        assert!(err.contains("falls below"), "{err}");
    }

    #[test]
    fn dedup_ratio_drop_fails() {
        let err = compare(SUITE_BASE, &suite_run(0.8, 1.2)).unwrap_err();
        assert!(err.contains("FAIL d: dedup_ratio"), "{err}");
    }

    #[test]
    fn suite_within_tolerance_passes() {
        assert!(compare(SUITE_BASE, &suite_run(0.79, 3.9)).is_ok());
    }

    const FLEET_BASE: &str = r#"{
  "benchmarks": [
    {"name":"fleet.1k_tenants.1m_requests","mode":"LEGACY","block_bytes":4096,"threads":4,"ops":1000000,"iops":9000000.0,"throughput_mbps":1.00,"mean_ms":0.020,"p50_ms":0.015,"p99_ms":0.150,"wall_ms":2000.000,"events_per_sec":1000000.000,"peak_rss_mb":400.000}
  ]
}"#;

    fn fleet_run(p99: f64, eps: f64, rss: f64) -> String {
        format!(
            "{{\n  \"benchmarks\": [\n    {{\"name\":\"fleet.1k_tenants.1m_requests\",\
             \"throughput_mbps\":1.00,\
             \"p99_ms\":{p99:.3},\"wall_ms\":1500.000,\"events_per_sec\":{eps:.3},\
             \"peak_rss_mb\":{rss:.3}}}\n  ]\n}}"
        )
    }

    #[test]
    fn fleet_throughput_drop_fails() {
        let err = compare(FLEET_BASE, &fleet_run(0.15, 800_000.0, 400.0)).unwrap_err();
        assert!(
            err.contains("FAIL fleet.1k_tenants.1m_requests: events_per_sec"),
            "{err}"
        );
        assert!(err.contains("falls below"), "{err}");
    }

    #[test]
    fn fleet_rss_growth_fails() {
        let err = compare(FLEET_BASE, &fleet_run(0.15, 1_200_000.0, 600.0)).unwrap_err();
        assert!(
            err.contains("FAIL fleet.1k_tenants.1m_requests: peak_rss_mb"),
            "{err}"
        );
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn fleet_within_tolerance_passes() {
        assert!(compare(FLEET_BASE, &fleet_run(0.15, 950_000.0, 420.0)).is_ok());
    }

    const SWEEP_BASE: &str = r#"{
  "benchmarks": [
    {"name":"transport.qd_sweep.qd32","mode":"MB-ACTIVE-RELAY","block_bytes":65536,"threads":32,"queue_depth":32,"ops":3000,"iops":3000.0,"throughput_mbps":196.00,"mean_ms":10.000,"p50_ms":9.000,"p99_ms":20.000,"bytes_copied_per_pdu":0.000,"cq_batch_avg":4.000}
  ]
}"#;

    fn sweep_run(mbps: f64, cq_batch: f64) -> String {
        format!(
            "{{\n  \"benchmarks\": [\n    {{\"name\":\"transport.qd_sweep.qd32\",\
             \"throughput_mbps\":{mbps:.2},\"p99_ms\":20.000,\
             \"bytes_copied_per_pdu\":0.000,\"cq_batch_avg\":{cq_batch:.3}}}\n  ]\n}}"
        )
    }

    #[test]
    fn qd32_throughput_drop_fails() {
        let err = compare(SWEEP_BASE, &sweep_run(150.0, 4.0)).unwrap_err();
        assert!(
            err.contains("FAIL transport.qd_sweep.qd32: throughput_mbps"),
            "{err}"
        );
        assert!(err.contains("falls below"), "{err}");
    }

    #[test]
    fn coalescing_collapse_fails() {
        let err = compare(SWEEP_BASE, &sweep_run(200.0, 1.0)).unwrap_err();
        assert!(
            err.contains("FAIL transport.qd_sweep.qd32: cq_batch_avg"),
            "{err}"
        );
    }

    #[test]
    fn sweep_within_tolerance_passes() {
        assert!(compare(SWEEP_BASE, &sweep_run(190.0, 3.8)).is_ok());
    }

    const LINT_BASE: &str = r#"{
  "benchmarks": [
    {"name":"lint.workspace","mode":"LEGACY","block_bytes":0,"threads":1,"queue_depth":1,"ops":120,"iops":0.0,"throughput_mbps":0.00,"mean_ms":0.000,"p50_ms":0.000,"p99_ms":0.000,"scan_ms":2000.000,"files_scanned":120.000,"findings":0.000}
  ]
}"#;

    fn lint_run(scan_ms: f64) -> String {
        format!(
            "{{\n  \"benchmarks\": [\n    {{\"name\":\"lint.workspace\",\
             \"throughput_mbps\":0.00,\"p99_ms\":0.000,\
             \"scan_ms\":{scan_ms:.3},\"files_scanned\":123.000,\
             \"findings\":0.000}}\n  ]\n}}"
        )
    }

    #[test]
    fn lint_scan_blowup_fails() {
        let err = compare(LINT_BASE, &lint_run(2500.0)).unwrap_err();
        assert!(err.contains("FAIL lint.workspace: scan_ms"), "{err}");
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn lint_scan_within_tolerance_passes() {
        assert!(compare(LINT_BASE, &lint_run(2100.0)).is_ok());
    }

    #[test]
    fn lint_scan_missing_from_results_fails() {
        let no_scan = "{\"name\":\"lint.workspace\",\"throughput_mbps\":0.00,\"p99_ms\":0.000}";
        let err = compare(LINT_BASE, no_scan).unwrap_err();
        assert!(err.contains("results lack \"scan_ms\""), "{err}");
    }
}

//! Calibration sweep: prints the key paper ratios for parameter tuning.

use storm_bench::{fio_point, PathMode, Testbed};
use storm_sim::SimDuration;

fn main() {
    let testbed = Testbed {
        duration: SimDuration::from_secs(3),
        ..Testbed::default()
    };
    println!("== Fig 4/7: LEGACY vs MB-FWD (1 thread) ==");
    println!("size | legacy iops | fwd iops | iops ratio (paper .93/.86/.83/.82) | lat ratio (paper 1.08/1.22/1.25/1.30)");
    for kb in [4, 16, 64, 256] {
        let l = fio_point(PathMode::Legacy, kb * 1024, 1, &testbed);
        let f = fio_point(PathMode::MbFwd, kb * 1024, 1, &testbed);
        println!(
            "{kb:>4}K | {:>8.0} | {:>8.0} | {:.3} | {:.3}",
            l.iops,
            f.iops,
            f.iops / l.iops,
            f.mean_latency_ms / l.mean_latency_ms
        );
    }
    println!("== Fig 5/8: vs MB-FWD (1 thread) ==");
    println!("size | fwd | passive | active | pas/fwd (paper .97->.87) | act/fwd (paper 1.01/1.00/1.06/1.14) | act lat ratio (paper .98/1.01/.94/.89)");
    for kb in [4, 16, 64, 256] {
        let f = fio_point(PathMode::MbFwd, kb * 1024, 1, &testbed);
        let p = fio_point(PathMode::MbPassiveRelay, kb * 1024, 1, &testbed);
        let a = fio_point(PathMode::MbActiveRelay, kb * 1024, 1, &testbed);
        println!(
            "{kb:>4}K | {:>7.0} | {:>7.0} | {:>7.0} | {:.3} | {:.3} | {:.3}",
            f.iops,
            p.iops,
            a.iops,
            p.iops / f.iops,
            a.iops / f.iops,
            a.mean_latency_ms / f.mean_latency_ms
        );
    }
    println!(
        "== Fig 6/9: 16K, threads (paper act/fwd: 1.06/1.10/1.27/1.39; lat .95/.91/.79/.70) =="
    );
    for threads in [4, 8, 16, 32] {
        let f = fio_point(PathMode::MbFwd, 16 * 1024, threads, &testbed);
        let p = fio_point(PathMode::MbPassiveRelay, 16 * 1024, threads, &testbed);
        let a = fio_point(PathMode::MbActiveRelay, 16 * 1024, threads, &testbed);
        let l = fio_point(PathMode::Legacy, 16 * 1024, threads, &testbed);
        println!(
            "{threads:>3} thr | fwd {:>7.0} | pas {:>7.0} | act {:>7.0} | legacy {:>7.0} | act/fwd {:.3} | act lat/fwd {:.3} | act/legacy {:.3}",
            f.iops, p.iops, a.iops, l.iops,
            a.iops / f.iops,
            a.mean_latency_ms / f.mean_latency_ms,
            a.iops / l.iops
        );
    }
}

//! Benchmark smoke run: one short scenario per figure family, results to
//! `BENCH_results.json`, a full trace of the active-relay scenario to
//! `BENCH_trace.jsonl`, and its latency attribution to stdout.
//!
//! This is the CI job's entry point — small enough to run in seconds but
//! exercising every data path (LEGACY, MB-FWD, MB-PASSIVE-RELAY,
//! MB-ACTIVE-RELAY) end to end.

use std::path::Path;
use std::sync::Arc;

use storm_bench::{fio_point, fio_point_traced, BenchResults, PathMode, Testbed};
use storm_sim::SimDuration;
use storm_telemetry::{analyze, Recorder};

fn main() {
    let testbed = Testbed {
        duration: SimDuration::from_secs(1),
        volume_bytes: 1 << 30,
        ..Testbed::default()
    };
    let block = 64 * 1024;
    let mut results = BenchResults::new();

    for (name, mode) in [
        ("fig4.legacy.64k", PathMode::Legacy),
        ("fig4.fwd.64k", PathMode::MbFwd),
        ("fig5.passive.64k", PathMode::MbPassiveRelay),
    ] {
        let p = fio_point(mode, block, 1, &testbed);
        println!(
            "{name}: {} ops, {:.0} iops, mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
            p.ops, p.iops, p.mean_latency_ms, p.p50_ms, p.p99_ms
        );
        results.push(name, mode, block, 1, p);
    }

    // The active-relay scenario runs with the recorder armed: its trace is
    // the uploaded artifact and feeds the attribution table below.
    let rec = Arc::new(Recorder::new());
    let p = fio_point_traced(
        PathMode::MbActiveRelay,
        block,
        1,
        &testbed,
        Recorder::hook(&rec),
    );
    println!(
        "fig5.active.64k: {} ops, {:.0} iops, mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
        p.ops, p.iops, p.mean_latency_ms, p.p50_ms, p.p99_ms
    );
    results.push("fig5.active.64k", PathMode::MbActiveRelay, block, 1, p);

    results
        .write(Path::new("BENCH_results.json"))
        .expect("write BENCH_results.json");
    std::fs::write("BENCH_trace.jsonl", rec.to_jsonl()).expect("write BENCH_trace.jsonl");

    let report = analyze::attribute(&rec.events());
    println!();
    println!("active-relay latency attribution ({} events):", rec.len());
    print!("{}", report.table());
    assert!(report.requests > 0, "traced run completed no requests");
    let share_sum: f64 = report.rows.iter().map(|r| r.share).sum();
    assert!(
        (share_sum - 100.0).abs() < 0.5,
        "attribution shares sum to {share_sum}%"
    );
    println!("wrote BENCH_results.json and BENCH_trace.jsonl");
}

//! Benchmark smoke run: one short scenario per figure family, results to
//! `BENCH_results.json`, a full trace of the active-relay scenario to
//! `BENCH_trace.jsonl`, and its latency attribution to stdout.
//!
//! This is the CI job's entry point — small enough to run in seconds but
//! exercising every data path (LEGACY, MB-FWD, MB-PASSIVE-RELAY,
//! MB-ACTIVE-RELAY) end to end.

use std::path::Path;
use std::sync::Arc;

use storm_bench::{
    cache_hit_point, dedup_ratio_point, fio_point, fio_point_traced, interference_point,
    passthrough_point, provisioning_churn_point, run_fleet, suite_passthrough_point,
    transport_point, BenchResults, FioPoint, FleetConfig, PassthroughPoint, PathMode, Testbed,
    TransportPoint,
};
use storm_iscsi::TransportKind;
use storm_sim::SimDuration;
use storm_telemetry::{analyze, names, MetricsRegistry, Recorder};

/// Peak resident set size (VmHWM) of this process, in MiB, from
/// `/proc/self/status`. Returns 0.0 where procfs is unavailable.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// The shared tail of every fio-shaped scenario: print the standard line
/// and record the row. fig4/fig5 and the transport lab all funnel
/// through here instead of cloning the print/push pair per scenario.
fn record_fio(
    results: &mut BenchResults,
    name: &str,
    mode: PathMode,
    block: usize,
    threads: usize,
    queue_depth: usize,
    p: FioPoint,
) {
    println!(
        "{name}: {} ops, {:.0} iops, mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
        p.ops, p.iops, p.mean_latency_ms, p.p50_ms, p.p99_ms
    );
    results.push(name, mode, block, threads, queue_depth, p);
}

/// The shared tail of a zero-copy acceptance scenario: print, enforce
/// the invariant, record the row with its copy-accounting extras. The
/// passthrough and suite-idle variants differ only in name.
fn record_zerocopy(results: &mut BenchResults, name: &str, block: usize, pt: &PassthroughPoint) {
    println!(
        "{name}: {} ops, p50 {:.2} ms, p99 {:.2} ms, \
         {:.3} data bytes copied/pdu ({} pdus, {} verbatim)",
        pt.point.ops,
        pt.point.p50_ms,
        pt.point.p99_ms,
        pt.bytes_copied_per_pdu(),
        pt.pdus_forwarded,
        pt.copy.verbatim_forwards
    );
    assert_eq!(
        pt.copy.data_bytes_copied, 0,
        "{name}: chain must not copy data segments"
    );
    results.push_with_extras(
        name,
        PathMode::MbActiveRelay,
        block,
        1,
        1,
        pt.point,
        vec![
            (
                "bytes_copied_per_pdu".to_string(),
                pt.bytes_copied_per_pdu(),
            ),
            (
                "verbatim_forwards".to_string(),
                pt.copy.verbatim_forwards as f64,
            ),
        ],
    );
}

fn main() {
    let testbed = Testbed {
        duration: SimDuration::from_secs(1),
        volume_bytes: 1 << 30,
        ..Testbed::default()
    };
    let block = 64 * 1024;
    let mut results = BenchResults::new();

    // Fleet-scale executor benchmark. Runs FIRST so the VmHWM reading
    // just after it is the fleet run's peak, not a later scenario's.
    let fleet_cfg = FleetConfig {
        tenants: 1_000,
        requests_per_tenant: 1_000,
        ..FleetConfig::default()
    };
    let wall_start = std::time::Instant::now();
    let fr = run_fleet(&fleet_cfg);
    let wall = wall_start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events_per_sec = fr.events as f64 / wall.as_secs_f64();
    let rss_mb = peak_rss_mb();
    let sim_secs = fr.sim_end.as_nanos() as f64 / 1e9;
    let fleet_point = FioPoint {
        ops: fr.requests,
        iops: fr.requests as f64 / sim_secs,
        mean_latency_ms: fr.latency.mean().as_nanos() as f64 / 1e6,
        p50_ms: fr.latency.value_at_quantile(0.50).as_nanos() as f64 / 1e6,
        p99_ms: fr.latency.value_at_quantile(0.99).as_nanos() as f64 / 1e6,
    };
    println!(
        "fleet.1k_tenants.1m_requests: {} requests, {} events, sim {:.2} s, \
         wall {:.0} ms, {:.0} events/s, peak RSS {:.1} MiB, digest {:016x}",
        fr.requests,
        fr.events,
        sim_secs,
        wall_ms,
        events_per_sec,
        rss_mb,
        fr.digest()
    );
    assert_eq!(
        fr.requests, 1_000_000,
        "fleet run must finish every request"
    );
    results.push_with_extras(
        "fleet.1k_tenants.1m_requests",
        PathMode::Legacy,
        4096,
        fleet_cfg.shards,
        1,
        fleet_point,
        vec![
            ("wall_ms".to_string(), wall_ms),
            ("events_per_sec".to_string(), events_per_sec),
            ("peak_rss_mb".to_string(), rss_mb),
        ],
    );

    for (name, mode) in [
        ("fig4.legacy.64k", PathMode::Legacy),
        ("fig4.fwd.64k", PathMode::MbFwd),
        ("fig5.passive.64k", PathMode::MbPassiveRelay),
    ] {
        let p = fio_point(mode, block, 1, &testbed);
        record_fio(&mut results, name, mode, block, 1, 1, p);
    }

    // The active-relay scenario runs with the recorder armed: its trace is
    // the uploaded artifact and feeds the attribution table below.
    let rec = Arc::new(Recorder::new());
    let p = fio_point_traced(
        PathMode::MbActiveRelay,
        block,
        1,
        &testbed,
        Recorder::hook(&rec),
    );
    record_fio(
        &mut results,
        "fig5.active.64k",
        PathMode::MbActiveRelay,
        block,
        1,
        1,
        p,
    );

    // Zero-copy acceptance: an active relay with an empty chain must
    // forward every data segment verbatim — 0 data bytes copied per PDU.
    let pt = passthrough_point(block, 1, &testbed);
    let mut metrics = MetricsRegistry::new();
    metrics.inc(names::RELAY_BYTES_COPIED, pt.copy.data_bytes_copied);
    metrics.inc(
        names::RELAY_HEADER_BYTES_COPIED,
        pt.copy.header_bytes_copied,
    );
    metrics.inc(names::RELAY_VERBATIM_FORWARDS, pt.copy.verbatim_forwards);
    metrics.inc(names::RELAY_PDUS_FORWARDED, pt.pdus_forwarded);
    record_zerocopy(&mut results, "zerocopy.passthrough.64k", block, &pt);
    print!("{}", metrics.report());

    // Transport lab (offload-vs-relay): sweep the multi-queue protocol
    // over submission-queue depth through a bare active relay on a 10G
    // fabric. Deep pipelining must close the middle-box throughput gap —
    // QD=32 has to clear 4x the QD=1 figure — while the passthrough path
    // stays zero-copy with many commands in flight.
    let sweep: Vec<TransportPoint> = [1u16, 8, 32]
        .iter()
        .map(|&qd| transport_point(TransportKind::Nvmeq, qd, block, &testbed))
        .collect();
    for tp in &sweep {
        let name = format!("transport.qd_sweep.qd{}", tp.queue_depth);
        println!(
            "{name}: {} ops, {:.1} MB/s, p50 {:.2} ms, p99 {:.2} ms, sq peak {}, \
             {:.1} sqes/doorbell, {:.1} cqes/interrupt, {:.1} cmds/dispatch tick",
            tp.point.ops,
            tp.throughput_mbps(),
            tp.point.p50_ms,
            tp.point.p99_ms,
            tp.sq_peak,
            tp.doorbell_batch(),
            tp.cq_batch(),
            tp.dispatch_batch()
        );
        assert_eq!(
            tp.copy.data_bytes_copied, 0,
            "{name}: deep pipelining broke the zero-copy passthrough path"
        );
        results.push_with_extras(
            &name,
            PathMode::MbActiveRelay,
            block,
            tp.queue_depth as usize,
            tp.queue_depth as usize,
            tp.point,
            vec![
                (
                    "bytes_copied_per_pdu".to_string(),
                    tp.bytes_copied_per_pdu(),
                ),
                ("sq_peak".to_string(), tp.sq_peak as f64),
                ("doorbell_batch".to_string(), tp.doorbell_batch()),
                ("cq_batch_avg".to_string(), tp.cq_batch()),
            ],
        );
    }
    let (qd1, qd32) = (&sweep[0], &sweep[2]);
    assert!(
        qd32.throughput_mbps() >= 4.0 * qd1.throughput_mbps(),
        "deep queues must close the relay gap: qd32 {:.1} MB/s vs qd1 {:.1} MB/s",
        qd32.throughput_mbps(),
        qd1.throughput_mbps()
    );
    assert!(
        qd32.cq_batch() > 1.0,
        "interrupt moderation never coalesced completions: {:.2} cqes/frame",
        qd32.cq_batch()
    );

    // Head-to-head at the same depth: the serial protocol's best effort
    // with 32 outstanding commands is the row; the extras carry the
    // multi-queue side of the comparison.
    let is32 = transport_point(TransportKind::Iscsi, 32, block, &testbed);
    println!(
        "transport.nvmeq_vs_iscsi.64k: iscsi {:.1} MB/s vs nvmeq {:.1} MB/s \
         ({:.2}x) at qd 32",
        is32.throughput_mbps(),
        qd32.throughput_mbps(),
        qd32.throughput_mbps() / is32.throughput_mbps()
    );
    results.push_with_extras(
        "transport.nvmeq_vs_iscsi.64k",
        PathMode::MbActiveRelay,
        block,
        32,
        32,
        is32.point,
        vec![
            ("nvmeq_mbps".to_string(), qd32.throughput_mbps()),
            (
                "nvmeq_over_iscsi".to_string(),
                qd32.throughput_mbps() / is32.throughput_mbps(),
            ),
        ],
    );

    // Queue-occupancy and batching counters for the deep point go through
    // the shared telemetry namespace, like the relay copy counters above.
    let mut tmetrics = MetricsRegistry::new();
    tmetrics.set_gauge(names::TRANSPORT_SQ_PEAK, qd32.sq_peak as i64);
    tmetrics.inc(names::TRANSPORT_DOORBELL_FRAMES, qd32.doorbell.0);
    tmetrics.inc(names::TRANSPORT_DOORBELL_SQES, qd32.doorbell.1);
    tmetrics.inc(names::TRANSPORT_CQ_FRAMES, qd32.cq.0);
    tmetrics.inc(names::TRANSPORT_CQ_CQES, qd32.cq.1);
    tmetrics.set_gauge(
        names::TARGET_DISPATCH_BATCH_X100,
        (qd32.dispatch_batch() * 100.0) as i64,
    );
    print!("{}", tmetrics.report());

    // Data-reduction suite: hot-set reads against the write-back cache.
    let ch = cache_hit_point(&testbed);
    println!(
        "services.cache.hit: {} ops, p50 {:.2} ms, p99 {:.2} ms, hit rate {:.1}%, \
         {} writes absorbed, {} bytes flushed, {} sectors still dirty",
        ch.point.ops,
        ch.point.p50_ms,
        ch.point.p99_ms,
        ch.hit_rate * 100.0,
        ch.absorbed_writes,
        ch.flushed_bytes,
        ch.dirty_sectors
    );
    assert!(
        ch.hit_rate > 0.5,
        "hot-set workload must mostly hit the cache: {:.3}",
        ch.hit_rate
    );
    assert!(ch.flushed_bytes > 0, "cache flush never reached the volume");
    results.push_with_extras(
        "services.cache.hit",
        PathMode::MbActiveRelay,
        4096,
        1,
        1,
        ch.point,
        vec![
            ("hit_rate".to_string(), ch.hit_rate),
            ("absorbed_writes".to_string(), ch.absorbed_writes as f64),
        ],
    );

    // Data-reduction suite: duplicate-heavy writes against CDC dedup.
    let dr = dedup_ratio_point(&testbed);
    println!(
        "services.dedup.ratio: {} ops, p50 {:.2} ms, p99 {:.2} ms, \
         reduction {:.2}x ({} of {} chunks duplicate)",
        dr.point.ops, dr.point.p50_ms, dr.point.p99_ms, dr.ratio, dr.duplicate_chunks, dr.chunks
    );
    assert!(
        dr.ratio >= 1.5,
        "duplicate-heavy workload must reduce >= 1.5x: {:.3}",
        dr.ratio
    );
    results.push_with_extras(
        "services.dedup.ratio",
        PathMode::MbActiveRelay,
        65536,
        1,
        1,
        dr.point,
        vec![
            ("dedup_ratio".to_string(), dr.ratio),
            ("duplicate_chunks".to_string(), dr.duplicate_chunks as f64),
        ],
    );

    // The whole suite installed but idle must keep the verbatim fast
    // path: zero data bytes copied per forwarded PDU.
    let sp = suite_passthrough_point(block, 1, &testbed);
    record_zerocopy(&mut results, "zerocopy.suite_idle.64k", block, &sp);

    // Suite counters go through the per-tenant namespace so reports stay
    // greppable by tenant (the workloads above all ran as tenant 0).
    let mut svc_metrics = MetricsRegistry::new();
    svc_metrics.set_gauge(
        &names::tenant_scoped(names::SVC_CACHE_HIT_BP, 0),
        (ch.hit_rate * 10_000.0) as i64,
    );
    svc_metrics.inc(
        &names::tenant_scoped(names::SVC_CACHE_ABSORBED_WRITES, 0),
        ch.absorbed_writes,
    );
    svc_metrics.inc(
        &names::tenant_scoped(names::SVC_CACHE_FLUSHED_BYTES, 0),
        ch.flushed_bytes,
    );
    svc_metrics.set_gauge(
        &names::tenant_scoped(names::SVC_DEDUP_RATIO_BP, 0),
        (dr.ratio * 10_000.0) as i64,
    );
    svc_metrics.inc(
        &names::tenant_scoped(names::SVC_DEDUP_DUP_CHUNKS, 0),
        dr.duplicate_chunks,
    );
    print!("{}", svc_metrics.report());

    // Per-tenant QoS: a rate-limited, de-weighted aggressor must not push
    // the victim's p99 more than 20% past its solo baseline.
    let qi = interference_point(&testbed);
    println!(
        "qos.interference.2tenant: victim p99 solo {:.2} ms, contended {:.2} ms, \
         with QoS {:.2} ms ({:.2}x solo); aggressor {:.0} iops shaped, {} ops throttled",
        qi.solo.p99_ms,
        qi.contended.p99_ms,
        qi.shaped.p99_ms,
        qi.qos_over_solo(),
        qi.shaped_aggressor.iops,
        qi.throttled_ops
    );
    assert!(
        qi.shaped.p99_ms <= qi.solo.p99_ms * 1.2,
        "QoS failed to protect the victim: shaped p99 {:.3} ms vs solo {:.3} ms",
        qi.shaped.p99_ms,
        qi.solo.p99_ms
    );
    assert!(qi.throttled_ops > 0, "the aggressor was never throttled");
    results.push_with_extras(
        "qos.interference.2tenant",
        PathMode::Legacy,
        block,
        1,
        1,
        qi.shaped,
        vec![
            ("solo_p99_ms".to_string(), qi.solo.p99_ms),
            ("contended_p99_ms".to_string(), qi.contended.p99_ms),
            ("qos_over_solo".to_string(), qi.qos_over_solo()),
            ("throttled_ops".to_string(), qi.throttled_ops as f64),
        ],
    );

    // SLO-driven provisioning: the control loop must live-migrate the
    // violating volume to the fast tier mid-run.
    let qc = provisioning_churn_point(&testbed);
    println!(
        "qos.provisioning.churn: {} ops, p50 {:.2} ms, p99 {:.2} ms, \
         {} migration(s) started, {} cut over, final tier {}, \
         SLO attainment {:.1}%, overload rejected: {}",
        qc.point.ops,
        qc.point.p50_ms,
        qc.point.p99_ms,
        qc.migrations_started,
        qc.migrations_completed,
        qc.final_tier.label(),
        qc.slo_attainment * 100.0,
        qc.overload_rejected
    );
    assert!(
        qc.migrations_completed >= 1,
        "no tier migration cut over mid-run"
    );
    assert!(qc.overload_rejected, "overload request was not rejected");
    assert!(qc.slo_attainment > 0.0, "SLO attainment metric missing");
    results.push_with_extras(
        "qos.provisioning.churn",
        PathMode::Legacy,
        4096,
        1,
        1,
        qc.point,
        vec![
            ("migrations".to_string(), qc.migrations_completed as f64),
            ("slo_attainment".to_string(), qc.slo_attainment),
        ],
    );

    // Static-analysis budget: a cold interprocedural scan of the whole
    // workspace (parse + call-graph fixpoint, cache disabled) must stay
    // inside the committed `scan_ms` ceiling so the linter never becomes
    // the slow step of CI. Runs from the repo root, like the JSON output
    // paths below.
    let lint_start = std::time::Instant::now();
    let (lint_findings, lint_stats) = storm_lint::analyze_workspace_opts(
        Path::new("."),
        &storm_lint::Config::default(),
        storm_lint::ScanOptions { cache: false },
    )
    .expect("storm-lint workspace scan");
    let scan_ms = lint_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "lint.workspace: {} files scanned, {} finding(s), {:.0} ms cold (no cache)",
        lint_stats.files_scanned,
        lint_findings.len(),
        scan_ms
    );
    results.push_with_extras(
        "lint.workspace",
        PathMode::Legacy,
        0,
        1,
        1,
        FioPoint {
            ops: lint_stats.files_scanned as u64,
            iops: 0.0,
            mean_latency_ms: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
        },
        vec![
            ("scan_ms".to_string(), scan_ms),
            ("files_scanned".to_string(), lint_stats.files_scanned as f64),
            ("findings".to_string(), lint_findings.len() as f64),
        ],
    );

    results
        .write(Path::new("BENCH_results.json"))
        .expect("write BENCH_results.json");
    std::fs::write("BENCH_trace.jsonl", rec.to_jsonl()).expect("write BENCH_trace.jsonl");

    let report = analyze::attribute(&rec.events());
    println!();
    println!("active-relay latency attribution ({} events):", rec.len());
    print!("{}", report.table());
    assert!(report.requests > 0, "traced run completed no requests");
    let share_sum: f64 = report.rows.iter().map(|r| r.share).sum();
    assert!(
        (share_sum - 100.0).abs() < 0.5,
        "attribution shares sum to {share_sum}%"
    );
    println!("wrote BENCH_results.json and BENCH_trace.jsonl");
}

//! Benchmark smoke run: one short scenario per figure family, results to
//! `BENCH_results.json`, a full trace of the active-relay scenario to
//! `BENCH_trace.jsonl`, and its latency attribution to stdout.
//!
//! This is the CI job's entry point — small enough to run in seconds but
//! exercising every data path (LEGACY, MB-FWD, MB-PASSIVE-RELAY,
//! MB-ACTIVE-RELAY) end to end.

use std::path::Path;
use std::sync::Arc;

use storm_bench::{
    fio_point, fio_point_traced, passthrough_point, BenchResults, PathMode, Testbed,
};
use storm_sim::SimDuration;
use storm_telemetry::{analyze, names, MetricsRegistry, Recorder};

fn main() {
    let testbed = Testbed {
        duration: SimDuration::from_secs(1),
        volume_bytes: 1 << 30,
        ..Testbed::default()
    };
    let block = 64 * 1024;
    let mut results = BenchResults::new();

    for (name, mode) in [
        ("fig4.legacy.64k", PathMode::Legacy),
        ("fig4.fwd.64k", PathMode::MbFwd),
        ("fig5.passive.64k", PathMode::MbPassiveRelay),
    ] {
        let p = fio_point(mode, block, 1, &testbed);
        println!(
            "{name}: {} ops, {:.0} iops, mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
            p.ops, p.iops, p.mean_latency_ms, p.p50_ms, p.p99_ms
        );
        results.push(name, mode, block, 1, p);
    }

    // The active-relay scenario runs with the recorder armed: its trace is
    // the uploaded artifact and feeds the attribution table below.
    let rec = Arc::new(Recorder::new());
    let p = fio_point_traced(
        PathMode::MbActiveRelay,
        block,
        1,
        &testbed,
        Recorder::hook(&rec),
    );
    println!(
        "fig5.active.64k: {} ops, {:.0} iops, mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
        p.ops, p.iops, p.mean_latency_ms, p.p50_ms, p.p99_ms
    );
    results.push("fig5.active.64k", PathMode::MbActiveRelay, block, 1, p);

    // Zero-copy acceptance: an active relay with an empty chain must
    // forward every data segment verbatim — 0 data bytes copied per PDU.
    let pt = passthrough_point(block, 1, &testbed);
    let mut metrics = MetricsRegistry::new();
    metrics.inc(names::RELAY_BYTES_COPIED, pt.copy.data_bytes_copied);
    metrics.inc(
        names::RELAY_HEADER_BYTES_COPIED,
        pt.copy.header_bytes_copied,
    );
    metrics.inc(names::RELAY_VERBATIM_FORWARDS, pt.copy.verbatim_forwards);
    metrics.inc(names::RELAY_PDUS_FORWARDED, pt.pdus_forwarded);
    println!(
        "zerocopy.passthrough.64k: {} ops, p50 {:.2} ms, p99 {:.2} ms, \
         {:.3} data bytes copied/pdu ({} pdus, {} verbatim)",
        pt.point.ops,
        pt.point.p50_ms,
        pt.point.p99_ms,
        pt.bytes_copied_per_pdu(),
        pt.pdus_forwarded,
        pt.copy.verbatim_forwards
    );
    print!("{}", metrics.report());
    assert_eq!(
        pt.copy.data_bytes_copied, 0,
        "passthrough chain must not copy data segments"
    );
    results.push_with_extras(
        "zerocopy.passthrough.64k",
        PathMode::MbActiveRelay,
        block,
        1,
        pt.point,
        vec![
            (
                "bytes_copied_per_pdu".to_string(),
                pt.bytes_copied_per_pdu(),
            ),
            (
                "verbatim_forwards".to_string(),
                pt.copy.verbatim_forwards as f64,
            ),
        ],
    );

    results
        .write(Path::new("BENCH_results.json"))
        .expect("write BENCH_results.json");
    std::fs::write("BENCH_trace.jsonl", rec.to_jsonl()).expect("write BENCH_trace.jsonl");

    let report = analyze::attribute(&rec.events());
    println!();
    println!("active-relay latency attribution ({} events):", rec.len());
    print!("{}", report.table());
    assert!(report.requests > 0, "traced run completed no requests");
    let share_sum: f64 = report.rows.iter().map(|r| r.share).sum();
    assert!(
        (share_sum - 100.0).abs() < 0.5,
        "attribution shares sum to {share_sum}%"
    );
    println!("wrote BENCH_results.json and BENCH_trace.jsonl");
}

//! Machine-readable benchmark results (`BENCH_results.json`).

use std::io::Write as _;
use std::path::Path;

use crate::{FioPoint, PathMode};

/// One measured scenario, ready for serialization.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name, e.g. `fig5.active.64k`.
    pub name: String,
    /// The data path measured.
    pub mode: PathMode,
    /// Request size in bytes.
    pub block_bytes: usize,
    /// Outstanding requests.
    pub threads: usize,
    /// Transport submission-queue depth the session ran with (1 for the
    /// serial iSCSI scenarios) — makes QD-sweep rows self-describing.
    pub queue_depth: usize,
    /// The measured point.
    pub point: FioPoint,
    /// Extra scenario-specific metrics, serialized after `p99_ms` in
    /// insertion order (e.g. `bytes_copied_per_pdu` for the zero-copy
    /// passthrough scenario).
    pub extras: Vec<(String, f64)>,
}

/// Accumulates scenario results and writes `BENCH_results.json`.
///
/// The JSON is hand-rolled with fixed key order and fixed-precision
/// floats, so equal runs produce byte-identical files — the same contract
/// as trace exports. The one exception is the `fleet.*` family's
/// `wall_ms` / `events_per_sec` / `peak_rss_mb` extras, which measure the
/// host and are inherently run-to-run noisy; `bench_compare` guards them
/// with wide margins instead of equality.
#[derive(Debug, Clone, Default)]
pub struct BenchResults {
    scenarios: Vec<ScenarioResult>,
}

impl BenchResults {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one measured scenario.
    pub fn push(
        &mut self,
        name: &str,
        mode: PathMode,
        block_bytes: usize,
        threads: usize,
        queue_depth: usize,
        point: FioPoint,
    ) {
        self.push_with_extras(
            name,
            mode,
            block_bytes,
            threads,
            queue_depth,
            point,
            Vec::new(),
        );
    }

    /// Adds one measured scenario with extra named metrics.
    #[allow(clippy::too_many_arguments)]
    pub fn push_with_extras(
        &mut self,
        name: &str,
        mode: PathMode,
        block_bytes: usize,
        threads: usize,
        queue_depth: usize,
        point: FioPoint,
        extras: Vec<(String, f64)>,
    ) {
        self.scenarios.push(ScenarioResult {
            name: name.to_string(),
            mode,
            block_bytes,
            threads,
            queue_depth,
            point,
            extras,
        });
    }

    /// The accumulated scenarios.
    pub fn scenarios(&self) -> &[ScenarioResult] {
        &self.scenarios
    }

    /// Serializes all scenarios as JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            let p = &s.point;
            let throughput_mbps = p.iops * s.block_bytes as f64 / 1e6;
            let _ = write!(
                out,
                "    {{\"name\":\"{}\",\"mode\":\"{}\",\"block_bytes\":{},\"threads\":{},\
                 \"queue_depth\":{},\"ops\":{},\"iops\":{:.1},\"throughput_mbps\":{:.2},\
                 \"mean_ms\":{:.3},\"p50_ms\":{:.3},\"p99_ms\":{:.3}",
                s.name,
                s.mode,
                s.block_bytes,
                s.threads,
                s.queue_depth,
                p.ops,
                p.iops,
                throughput_mbps,
                p.mean_latency_ms,
                p.p50_ms,
                p.p99_ms
            );
            for (key, value) in &s.extras {
                let _ = write!(out, ",\"{key}\":{value:.3}");
            }
            out.push('}');
            out.push_str(if i + 1 < self.scenarios.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = BenchResults::new();
        r.push(
            "fig4.legacy.4k",
            PathMode::Legacy,
            4096,
            1,
            1,
            FioPoint {
                ops: 1000,
                iops: 500.0,
                mean_latency_ms: 1.25,
                p50_ms: 1.0,
                p99_ms: 3.5,
            },
        );
        r.push_with_extras(
            "fig5.active.64k",
            PathMode::MbActiveRelay,
            65536,
            1,
            32,
            FioPoint {
                ops: 100,
                iops: 50.0,
                mean_latency_ms: 20.0,
                p50_ms: 19.0,
                p99_ms: 40.0,
            },
            vec![("bytes_copied_per_pdu".to_string(), 0.0)],
        );
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"benchmarks\": [\n"));
        assert!(json.contains("\"name\":\"fig4.legacy.4k\""));
        assert!(json.contains("\"mode\":\"MB-ACTIVE-RELAY\""));
        // queue_depth sits between threads and ops in the fixed order.
        assert!(json.contains("\"threads\":1,\"queue_depth\":1,\"ops\":1000"));
        assert!(json.contains("\"threads\":1,\"queue_depth\":32,\"ops\":100"));
        assert!(json.contains("\"throughput_mbps\":2.05"));
        assert!(json.contains("\"p99_ms\":3.500"));
        // Extras append after p99_ms inside the same object.
        assert!(json.contains("\"p99_ms\":40.000,\"bytes_copied_per_pdu\":0.000}"));
        assert_eq!(r.scenarios().len(), 2);
        // Two runs, same inputs -> identical bytes.
        assert_eq!(json, r.clone().to_json());
    }
}

//! The fleet-scale simulation model behind the `fleet.*` bench family.
//!
//! Where every other bench in this crate drives the full cloud stack
//! (iSCSI, TCP, middle-boxes) for ~1 initiator, the fleet model asks the
//! opposite question: how fast is the *simulator itself* when one run
//! holds thousands of tenants and millions of events? It is a
//! purpose-built closed-loop storage fleet:
//!
//! * the topology is `racks` racks, each with one disk (a
//!   [`SerialResource`]) and `tenants / racks` resident tenants;
//! * each tenant loops: think, issue a request, await completion, repeat
//!   for `requests_per_tenant` rounds. A request hits the home rack's
//!   disk or — with probability `remote_permille / 1000` — a remote
//!   rack's disk, crossing an inter-rack link
//!   ([`LinkSpec::inter_rack`]) each way;
//! * racks are grouped into `shards` [`ShardSim`]s run by a
//!   [`ShardedExecutor`] whose lookahead is the inter-rack link latency
//!   ([`LinkSpec::lookahead`]).
//!
//! # Determinism contract
//!
//! Equal-seed runs produce byte-identical merged traces regardless of
//! worker-thread count **and** shard count (1, 2 or 4 shards of the same
//! 4-rack topology). Three design rules buy the second, stronger half:
//!
//! * all tenant randomness comes from per-tenant [`SimRng`]s forked from
//!   the master seed in tenant-id order, never from shared shard state;
//! * every cross-RACK interaction goes through the executor's
//!   [`Outbox`] even when both racks live on the same shard, so message
//!   timing never depends on co-residence;
//! * outbox messages carry a `(source rack, per-rack counter)` ordering
//!   key, so same-instant injection order is a function of simulation
//!   state alone, not of how racks are packed into shards.
//!
//! Incoming messages are turned into *queued events* at their arrival
//! instant (never acted on at delivery time), so each rack's disk serves
//! strictly in event-time order.
//!
//! Each rack keeps its own trace (and a running FNV-1a digest of it);
//! [`FleetRun::merged_trace`] concatenates them in rack-id order.

use storm_net::LinkSpec;
use storm_sim::shard::{Outbox, ShardSim, ShardedExecutor};
use storm_sim::{EventQueue, Histogram, SerialResource, SimDuration, SimRng, SimTime};

/// Parameters of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of racks (fixed topology; must be a multiple of `shards`).
    pub racks: usize,
    /// Number of executor shards the racks are grouped into.
    pub shards: usize,
    /// Worker threads multiplexing the shards.
    pub threads: usize,
    /// Total tenants, spread round-robin across racks.
    pub tenants: usize,
    /// Closed-loop requests each tenant issues.
    pub requests_per_tenant: u64,
    /// Master seed.
    pub seed: u64,
    /// Probability (per mille) that a request targets a remote rack.
    pub remote_permille: u64,
    /// Whether racks keep full trace bytes (the digest is always kept).
    pub keep_trace: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            racks: 4,
            shards: 4,
            threads: 4,
            tenants: 1_000,
            requests_per_tenant: 250,
            seed: 20160628,
            remote_permille: 200,
            keep_trace: false,
        }
    }
}

/// Outcome of one fleet run.
#[derive(Debug)]
pub struct FleetRun {
    /// Requests completed (every tenant must finish its quota).
    pub requests: u64,
    /// Events executed across all shards (queue deliveries).
    pub events: u64,
    /// Final simulation time (latest event across racks).
    pub sim_end: SimTime,
    /// Request latency (issue to completion) across all tenants, merged
    /// in rack-id order.
    pub latency: Histogram,
    /// Per-rack FNV-1a digests of the trace stream, in rack-id order.
    pub rack_digests: Vec<u64>,
    /// Per-rack trace bytes (empty unless `keep_trace`), rack-id order.
    rack_traces: Vec<Vec<u8>>,
}

impl FleetRun {
    /// One digest over the per-rack digests, in rack-id order — the
    /// equal-seed byte-identity fingerprint.
    pub fn digest(&self) -> u64 {
        let mut d = Fnv::new();
        for &rd in &self.rack_digests {
            d.write_u64(rd);
        }
        d.finish()
    }

    /// The per-rack traces concatenated in rack-id order (empty unless
    /// the run kept traces).
    pub fn merged_trace(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rack_traces.iter().map(Vec::len).sum());
        for t in &self.rack_traces {
            out.extend_from_slice(t);
        }
        out
    }
}

/// Streaming FNV-1a (the same hash the telemetry tokens use).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A tenant's closed-loop state (lives on its home rack).
struct Tenant {
    rng: SimRng,
    remaining: u64,
    issued_at: SimTime,
}

/// One rack: a disk, its resident tenants, and a trace.
struct Rack {
    id: usize,
    disk: SerialResource,
    /// `(tenant id, state)` for tenants homed here.
    tenants: Vec<(u32, Tenant)>,
    trace: Vec<u8>,
    digest: Fnv,
    lat: Histogram,
    keep_trace: bool,
    /// Outgoing-message counter feeding the layout-invariant order key.
    msg_seq: u64,
    requests_done: u64,
}

impl Rack {
    /// Records one trace event and folds it into the digest.
    fn record(&mut self, at: SimTime, tenant: u32, op: u8) {
        let mut buf = [0u8; 13];
        buf[..8].copy_from_slice(&at.as_nanos().to_le_bytes());
        buf[8..12].copy_from_slice(&tenant.to_le_bytes());
        buf[12] = op;
        self.digest.write(&buf);
        if self.keep_trace {
            self.trace.extend_from_slice(&buf);
        }
    }

    fn tenant_mut(&mut self, tenant: u32) -> &mut Tenant {
        &mut self
            .tenants
            .iter_mut()
            .find(|(id, _)| *id == tenant)
            .expect("tenant homed on this rack")
            .1
    }

    /// The next outbox ordering key for this rack.
    fn next_key(&mut self) -> u64 {
        let key = ((self.id as u64) << 40) | self.msg_seq;
        self.msg_seq += 1;
        key
    }
}

/// Trace opcodes.
const OP_ISSUE: u8 = b'I';
const OP_DONE: u8 = b'D';

/// Local events within one shard's queue: `(local rack index, kind)`.
enum Ev {
    /// Tenant wakes up and issues its next request.
    Issue { tenant: u32 },
    /// The rack's disk finished a request for a resident tenant.
    LocalDone { tenant: u32 },
    /// A remote tenant's request arrives at this (target) rack.
    RemoteArrive { tenant: u32, svc_ns: u32, home: u32 },
    /// This (target) rack's disk finished a remote tenant's request.
    RemoteServed { tenant: u32, home: u32 },
    /// The reply reached the tenant's home rack: the request is done.
    RemoteDone { tenant: u32 },
}

/// Cross-rack messages (used even between co-resident racks).
enum Msg {
    /// Serve `tenant`'s request on rack `target` (service time pre-drawn
    /// by the tenant, so target racks need no RNG of their own).
    Request {
        tenant: u32,
        svc_ns: u32,
        home: u32,
        target: u32,
    },
    /// Rack `target` finished `tenant`'s request; deliver to its home.
    Reply { tenant: u32, home: u32 },
}

/// One executor shard hosting `racks.len()` racks.
struct FleetShard {
    cfg: ShardCfg,
    racks: Vec<Rack>,
    q: EventQueue<(u16, Ev)>,
    events: u64,
    last_event: SimTime,
}

/// The per-shard copy of the run-wide constants.
#[derive(Clone, Copy)]
struct ShardCfg {
    racks_total: usize,
    shards: usize,
    remote_permille: u64,
    link: SimDuration,
}

impl ShardCfg {
    /// Maps a rack id to its shard (round-robin).
    fn shard_of(&self, rack: usize) -> usize {
        rack % self.shards
    }
}

impl FleetShard {
    fn local_idx(&self, rack: usize) -> u16 {
        self.racks
            .iter()
            .position(|r| r.id == rack)
            .expect("rack homed on this shard") as u16
    }

    /// Tenant `tenant` on rack `local` issues its next request at `now`.
    fn issue(&mut self, now: SimTime, local: u16, tenant: u32, outbox: &mut Outbox<Msg>) {
        let cfg = self.cfg;
        let rack = &mut self.racks[local as usize];
        let home = rack.id;
        let (svc_ns, target) = {
            let t = rack.tenant_mut(tenant);
            t.issued_at = now;
            // 2-10 µs of disk service.
            let svc_ns = t.rng.range(2_000, 10_000) as u32;
            let remote = t.rng.chance(cfg.remote_permille as f64 / 1000.0);
            let target = if remote && cfg.racks_total > 1 {
                (home + 1 + t.rng.below(cfg.racks_total as u64 - 1) as usize) % cfg.racks_total
            } else {
                home
            };
            (svc_ns, target)
        };
        rack.record(now, tenant, OP_ISSUE);
        if target == home {
            let done = rack.disk.serve(now, SimDuration::from_nanos(svc_ns as u64));
            self.q.push(done, (local, Ev::LocalDone { tenant }));
        } else {
            let key = rack.next_key();
            outbox.send(
                cfg.shard_of(target),
                now + cfg.link,
                key,
                Msg::Request {
                    tenant,
                    svc_ns,
                    home: home as u32,
                    target: target as u32,
                },
            );
        }
    }

    /// Tenant `tenant` finished a request at `now`: think, then go again.
    fn complete(&mut self, now: SimTime, local: u16, tenant: u32) {
        let rack = &mut self.racks[local as usize];
        rack.record(now, tenant, OP_DONE);
        rack.requests_done += 1;
        let (remaining, think, issued_at) = {
            let t = rack.tenant_mut(tenant);
            t.remaining -= 1;
            // 20-100 µs think time.
            let think = SimDuration::from_nanos(t.rng.range(20_000, 100_000));
            (t.remaining, think, t.issued_at)
        };
        rack.lat.record(now - issued_at);
        if remaining > 0 {
            self.q.push(now + think, (local, Ev::Issue { tenant }));
        }
    }
}

impl ShardSim for FleetShard {
    type Msg = Msg;

    fn next_time(&mut self) -> Option<SimTime> {
        self.q.peek_time()
    }

    fn run_until(&mut self, bound: SimTime, outbox: &mut Outbox<Msg>) {
        while let Some(t) = self.q.peek_time() {
            if t >= bound {
                break;
            }
            let (now, (local, ev)) = self.q.pop().expect("peeked");
            self.events += 1;
            self.last_event = now;
            match ev {
                Ev::Issue { tenant } => self.issue(now, local, tenant, outbox),
                Ev::LocalDone { tenant } | Ev::RemoteDone { tenant } => {
                    self.complete(now, local, tenant)
                }
                Ev::RemoteArrive {
                    tenant,
                    svc_ns,
                    home,
                } => {
                    let rack = &mut self.racks[local as usize];
                    let done = rack.disk.serve(now, SimDuration::from_nanos(svc_ns as u64));
                    self.q
                        .push(done, (local, Ev::RemoteServed { tenant, home }));
                }
                Ev::RemoteServed { tenant, home } => {
                    let cfg = self.cfg;
                    let rack = &mut self.racks[local as usize];
                    let key = rack.next_key();
                    outbox.send(
                        cfg.shard_of(home as usize),
                        now + cfg.link,
                        key,
                        Msg::Reply { tenant, home },
                    );
                }
            }
        }
    }

    fn deliver(&mut self, at: SimTime, msg: Msg) {
        // Messages become queued events at their arrival instant — never
        // acted on here — so disks serve strictly in event-time order.
        match msg {
            Msg::Request {
                tenant,
                svc_ns,
                home,
                target,
            } => {
                let local = self.local_idx(target as usize);
                self.q.push(
                    at,
                    (
                        local,
                        Ev::RemoteArrive {
                            tenant,
                            svc_ns,
                            home,
                        },
                    ),
                );
            }
            Msg::Reply { tenant, home } => {
                let local = self.local_idx(home as usize);
                self.q.push(at, (local, Ev::RemoteDone { tenant }));
            }
        }
    }
}

/// Runs the fleet model to completion.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero racks/shards/threads,
/// racks not divisible by shards) or if any tenant fails to finish its
/// request quota (a scheduling bug, not a workload outcome).
pub fn run_fleet(cfg: &FleetConfig) -> FleetRun {
    assert!(cfg.racks >= 1 && cfg.shards >= 1 && cfg.threads >= 1);
    assert!(
        cfg.racks.is_multiple_of(cfg.shards),
        "racks must divide evenly into shards"
    );
    let link = LinkSpec::inter_rack();
    let shard_cfg = ShardCfg {
        racks_total: cfg.racks,
        shards: cfg.shards,
        remote_permille: cfg.remote_permille,
        link: link.lookahead(),
    };
    let mut master = SimRng::seed_from_u64(cfg.seed);
    let mut shards: Vec<FleetShard> = (0..cfg.shards)
        .map(|_| FleetShard {
            cfg: shard_cfg,
            racks: Vec::new(),
            q: EventQueue::new(),
            events: 0,
            last_event: SimTime::ZERO,
        })
        .collect();
    for rack in 0..cfg.racks {
        shards[shard_cfg.shard_of(rack)].racks.push(Rack {
            id: rack,
            disk: SerialResource::new(),
            tenants: Vec::new(),
            trace: Vec::new(),
            digest: Fnv::new(),
            lat: Histogram::new(),
            keep_trace: cfg.keep_trace,
            msg_seq: 0,
            requests_done: 0,
        });
    }
    // Home tenants round-robin; fork each rng from the master in
    // tenant-id order so the draw sequence is layout-invariant.
    for tenant in 0..cfg.tenants as u32 {
        let rng = master.fork();
        let home = tenant as usize % cfg.racks;
        let shard = &mut shards[shard_cfg.shard_of(home)];
        let local = shard.local_idx(home) as usize;
        shard.racks[local].tenants.push((
            tenant,
            Tenant {
                rng,
                remaining: cfg.requests_per_tenant,
                issued_at: SimTime::ZERO,
            },
        ));
    }
    // First wakeups: jittered so disks don't see a thundering herd.
    for shard in &mut shards {
        for li in 0..shard.racks.len() {
            for ti in 0..shard.racks[li].tenants.len() {
                let (tenant, jitter) = {
                    let (id, t) = &mut shard.racks[li].tenants[ti];
                    (*id, t.rng.below(100_000))
                };
                shard.q.push(
                    SimTime::from_nanos(jitter),
                    (li as u16, Ev::Issue { tenant }),
                );
            }
        }
    }
    let exec = ShardedExecutor::new(link.lookahead(), cfg.threads);
    let done = exec.run(shards, SimTime::MAX);
    let mut requests = 0;
    let mut events = 0;
    let mut sim_end = SimTime::ZERO;
    let mut rack_digests = vec![0u64; cfg.racks];
    let mut rack_traces: Vec<Vec<u8>> = vec![Vec::new(); cfg.racks];
    let mut rack_lats: Vec<Histogram> = Vec::new();
    rack_lats.resize_with(cfg.racks, Histogram::new);
    for shard in done {
        events += shard.events;
        sim_end = sim_end.max(shard.last_event);
        for rack in shard.racks {
            requests += rack.requests_done;
            rack_digests[rack.id] = rack.digest.finish();
            rack_traces[rack.id] = rack.trace;
            rack_lats[rack.id] = rack.lat;
        }
    }
    let mut latency = Histogram::new();
    for l in &rack_lats {
        latency.merge(l);
    }
    let expected = cfg.tenants as u64 * cfg.requests_per_tenant;
    assert_eq!(requests, expected, "every tenant must finish its quota");
    FleetRun {
        requests,
        events,
        sim_end,
        latency,
        rack_digests,
        rack_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: usize, threads: usize) -> FleetConfig {
        FleetConfig {
            racks: 4,
            shards,
            threads,
            tenants: 40,
            requests_per_tenant: 25,
            seed: 7,
            remote_permille: 300,
            keep_trace: true,
        }
    }

    #[test]
    fn completes_the_request_quota() {
        let run = run_fleet(&small(4, 2));
        assert_eq!(run.requests, 40 * 25);
        assert!(run.events > run.requests, "issue + done per request");
        assert!(run.sim_end > SimTime::ZERO);
        assert!(!run.merged_trace().is_empty());
    }

    #[test]
    fn trace_is_identical_across_threads_and_shards() {
        let base = run_fleet(&small(4, 4));
        let trace = base.merged_trace();
        for (shards, threads) in [(1, 1), (2, 1), (2, 2), (4, 1), (4, 3)] {
            let other = run_fleet(&small(shards, threads));
            assert_eq!(
                other.merged_trace(),
                trace,
                "trace diverged at shards={shards} threads={threads}"
            );
            assert_eq!(other.digest(), base.digest());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_fleet(&small(2, 2));
        let b = run_fleet(&FleetConfig {
            seed: 8,
            ..small(2, 2)
        });
        assert_ne!(a.digest(), b.digest());
    }
}

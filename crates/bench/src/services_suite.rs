//! Scenario runners for the data-reduction & caching service suite.
//!
//! Three acceptance scenarios back the suite's claims:
//!
//! - [`cache_hit_point`]: a hot-set workload against the write-back
//!   cache middle-box; the interesting output is the read hit rate.
//! - [`dedup_ratio_point`]: a duplicate-heavy workload against the CDC
//!   dedup stage; the interesting output is the data-reduction ratio.
//! - [`suite_passthrough_point`]: all four suite services installed but
//!   idle — the verbatim fast path must still copy zero data bytes.
//!
//! The cache middle-box attaches two replica sessions exactly as the
//! service expects: replica 0 is the journal volume (on its own storage
//! host), replica 1 is the primary volume — the same export the spliced
//! path targets, so flushed data lands where misses read from.

use bytes::Bytes;
use storm_cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm_core::relay::{ActiveRelayMb, ReplicaTarget};
use storm_core::service::StorageService;
use storm_core::{MbSpec, RelayMode, StormPlatform};
use storm_services::{
    CacheConfig, CompressService, DedupService, SnapshotService, WriteBackCacheService,
};
use storm_sim::{SimDuration, SimRng, SimTime};
use storm_workloads::{FioJob, FioWorkload};

use crate::{FioPoint, PassthroughPoint, Testbed};

/// Cloud for the suite scenarios: the standard compute layout plus a
/// second storage host that exports the cache's journal volume.
fn build_suite_cloud(seed: u64) -> Cloud {
    let mut cfg = CloudConfig {
        seed,
        storage_hosts: 2,
        backing_bytes: 64 << 30,
        ..CloudConfig::default()
    };
    cfg.target.disk.prewarmed = true;
    Cloud::build(cfg)
}

/// Reads the measured point back out of the tenant client.
fn client_point(cloud: &mut Cloud, app: storm_net::AppId, elapsed: SimDuration) -> FioPoint {
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "login failed in suite scenario");
    assert_eq!(client.stats.errors, 0, "I/O errors in suite scenario");
    let ops = client.stats.ops();
    FioPoint {
        ops,
        iops: ops as f64 / elapsed.as_secs_f64(),
        mean_latency_ms: client.stats.latency.mean().as_nanos() as f64 / 1e6,
        p50_ms: client.stats.latency.percentile(50.0).as_nanos() as f64 / 1e6,
        p99_ms: client.stats.latency.percentile(99.0).as_nanos() as f64 / 1e6,
    }
}

/// 4 KiB blocks: writes a hot set once, then reads it repeatedly with a
/// 20% sprinkle of cold (never re-read) blocks — a cache-friendly mix
/// whose hit rate is predictable (~0.8).
struct HotSetWorkload {
    hot_blocks: u64,
    reads: usize,
    wrote: u64,
    read_done: usize,
    cold_block: u64,
}

impl HotSetWorkload {
    const SECTORS_PER_BLOCK: u64 = 8;

    fn new(hot_blocks: u64, reads: usize) -> Self {
        HotSetWorkload {
            hot_blocks,
            reads,
            wrote: 0,
            read_done: 0,
            cold_block: 0,
        }
    }

    fn payload(i: u64) -> Bytes {
        Bytes::from(vec![(i % 251) as u8; 4096])
    }

    fn next(&mut self, io: &mut IoCtx<'_>) {
        if self.wrote < self.hot_blocks {
            let i = self.wrote;
            self.wrote += 1;
            io.write(i * Self::SECTORS_PER_BLOCK, Self::payload(i));
        } else if self.read_done < self.reads {
            let idx = self.read_done;
            self.read_done += 1;
            let lba = if idx % 5 == 4 {
                // Cold read past the hot set: a guaranteed miss.
                self.cold_block += 1;
                (self.hot_blocks + self.cold_block) * Self::SECTORS_PER_BLOCK
            } else {
                (idx as u64 * 7 % self.hot_blocks) * Self::SECTORS_PER_BLOCK
            };
            io.read(lba, Self::SECTORS_PER_BLOCK as u32);
        } else {
            io.stop();
        }
    }
}

impl Workload for HotSetWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.next(io);
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, _req: ReqId, _kind: IoKind, result: IoResult) {
        assert!(result.ok, "hot-set I/O failed");
        self.next(io);
    }
}

/// Outcome of the `services.cache.hit` scenario.
#[derive(Debug, Clone, Copy)]
pub struct CacheHitOutcome {
    /// The measured latency/throughput point.
    pub point: FioPoint,
    /// Read hit rate over the whole run (0.0–1.0).
    pub hit_rate: f64,
    /// Writes absorbed (acked from the journal, not the target).
    pub absorbed_writes: u64,
    /// Dirty bytes flushed to the primary volume during the run.
    pub flushed_bytes: u64,
    /// Sectors still dirty when the run ended.
    pub dirty_sectors: u64,
}

/// Runs the hot-set workload through an armed write-back cache
/// middle-box and reads the cache's counters back out of the relay.
pub fn cache_hit_point(testbed: &Testbed) -> CacheHitOutcome {
    let mut cloud = build_suite_cloud(testbed.seed);
    let vol = cloud.create_volume(1 << 30, 0);
    let journal = cloud.create_volume(64 << 20, 1);
    let platform = StormPlatform::default();
    let cache = WriteBackCacheService::new(CacheConfig::default());
    let mbs = vec![MbSpec {
        host_idx: 3,
        mode: RelayMode::Active,
        services: vec![Box::new(cache)],
        replicas: vec![
            ReplicaTarget {
                portal: journal.portal,
                iqn: journal.iqn.clone(),
            },
            ReplicaTarget {
                portal: vol.portal,
                iqn: vol.iqn.clone(),
            },
        ],
    }];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:cache",
        &vol,
        Box::new(HotSetWorkload::new(64, 2000)),
        testbed.seed,
        false,
    );
    let start = cloud.net.now();
    let horizon = testbed.duration + SimDuration::from_secs(5);
    cloud
        .net
        .run_until(SimTime::from_nanos((start + horizon).as_nanos()));
    let point = client_point(&mut cloud, app, horizon);
    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let cache = relay
        .service(0)
        .unwrap()
        .downcast_ref::<WriteBackCacheService>()
        .unwrap();
    CacheHitOutcome {
        point,
        hit_rate: cache.stats.hit_rate(),
        absorbed_writes: cache.stats.writes_absorbed,
        flushed_bytes: cache.stats.flushed_bytes,
        dirty_sectors: cache.dirty_sectors(),
    }
}

/// Writes 64 KiB blocks to distinct offsets, cycling a small set of
/// random payloads so most content is a duplicate of an earlier write.
struct DupWorkload {
    payloads: Vec<Bytes>,
    writes: usize,
    issued: usize,
}

impl DupWorkload {
    const SECTORS_PER_BLOCK: u64 = 128;

    /// `distinct` random 64 KiB payloads, written round-robin `writes`
    /// times. Random (not patterned) content: periodic data degenerates
    /// content-defined chunking to fixed max-size cuts.
    fn new(seed: u64, distinct: usize, writes: usize) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xD0D0_D0D0);
        let payloads = (0..distinct)
            .map(|_| {
                let mut buf = vec![0u8; 64 * 1024];
                rng.fill(&mut buf);
                Bytes::from(buf)
            })
            .collect();
        DupWorkload {
            payloads,
            writes,
            issued: 0,
        }
    }

    fn next(&mut self, io: &mut IoCtx<'_>) {
        if self.issued >= self.writes {
            io.stop();
            return;
        }
        let i = self.issued;
        self.issued += 1;
        let payload = self.payloads[i % self.payloads.len()].clone();
        io.write(i as u64 * Self::SECTORS_PER_BLOCK, payload);
    }
}

impl Workload for DupWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.next(io);
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, _req: ReqId, _kind: IoKind, result: IoResult) {
        assert!(result.ok, "duplicate-heavy I/O failed");
        self.next(io);
    }
}

/// Outcome of the `services.dedup.ratio` scenario.
#[derive(Debug, Clone, Copy)]
pub struct DedupRatioOutcome {
    /// The measured latency/throughput point.
    pub point: FioPoint,
    /// Logical bytes over unique bytes (1.0 = no duplication found).
    pub ratio: f64,
    /// Chunks matching an already-indexed fingerprint.
    pub duplicate_chunks: u64,
    /// Total chunks cut by the CDC boundary scan.
    pub chunks: u64,
}

/// Runs the duplicate-heavy workload through an armed dedup middle-box
/// and reads the reduction ratio back out of the relay.
pub fn dedup_ratio_point(testbed: &Testbed) -> DedupRatioOutcome {
    let mut cloud = build_suite_cloud(testbed.seed);
    let vol = cloud.create_volume(1 << 30, 0);
    let platform = StormPlatform::default();
    let dedup = DedupService::new(testbed.seed, 12);
    let mbs = vec![MbSpec::with_services(
        3,
        RelayMode::Active,
        vec![Box::new(dedup)],
    )];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:dedup",
        &vol,
        Box::new(DupWorkload::new(testbed.seed, 4, 48)),
        testbed.seed,
        false,
    );
    let start = cloud.net.now();
    let horizon = testbed.duration + SimDuration::from_secs(5);
    cloud
        .net
        .run_until(SimTime::from_nanos((start + horizon).as_nanos()));
    let point = client_point(&mut cloud, app, horizon);
    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let dedup = relay
        .service(0)
        .unwrap()
        .downcast_ref::<DedupService>()
        .unwrap();
    DedupRatioOutcome {
        point,
        ratio: dedup.stats.reduction_ratio(),
        duplicate_chunks: dedup.stats.duplicate_chunks,
        chunks: dedup.stats.chunks,
    }
}

/// Runs the zero-copy acceptance scenario with the whole suite installed
/// but idle: disarmed cache, dedup and compression plus a snapshot
/// service with no snapshot taken. Every data PDU must still take the
/// verbatim fast path — `copy.data_bytes_copied` stays 0.
pub fn suite_passthrough_point(
    block_bytes: usize,
    threads: usize,
    testbed: &Testbed,
) -> PassthroughPoint {
    let mut cloud = build_suite_cloud(testbed.seed);
    let vol = cloud.create_volume(testbed.volume_bytes, 0);
    let journal = cloud.create_volume(64 << 20, 1);
    let platform = StormPlatform::default();
    let services: Vec<Box<dyn StorageService>> = vec![
        Box::new(WriteBackCacheService::disarmed(CacheConfig::default())),
        Box::new(DedupService::disarmed(testbed.seed, 12)),
        Box::new(CompressService::disarmed(4096)),
        Box::new(SnapshotService::new(128)),
    ];
    let mbs = vec![MbSpec {
        host_idx: 3,
        mode: RelayMode::Active,
        services,
        replicas: vec![
            ReplicaTarget {
                portal: journal.portal,
                iqn: journal.iqn.clone(),
            },
            ReplicaTarget {
                portal: vol.portal,
                iqn: vol.iqn.clone(),
            },
        ],
    }];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let job = FioJob::randrw(block_bytes, testbed.duration, vol.sectors).threads(threads);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:tenant",
        &vol,
        Box::new(FioWorkload::new(job)),
        testbed.seed,
        false,
    );
    let start = cloud.net.now();
    let end = start + testbed.duration + SimDuration::from_secs(2);
    cloud.net.run_until(SimTime::from_nanos(end.as_nanos()));
    let point = client_point(&mut cloud, app, testbed.duration);
    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_ref::<ActiveRelayMb>()
        .unwrap();
    PassthroughPoint {
        point,
        pdus_forwarded: relay.pdus_forwarded(),
        copy: relay.copy_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_testbed() -> Testbed {
        Testbed {
            duration: SimDuration::from_secs(1),
            volume_bytes: 1 << 30,
            ..Testbed::default()
        }
    }

    #[test]
    fn hot_set_workload_hits_the_cache() {
        let out = cache_hit_point(&short_testbed());
        assert!(
            out.hit_rate > 0.5,
            "hot-set hit rate too low: {:.3}",
            out.hit_rate
        );
        assert!(out.absorbed_writes >= 64, "{out:?}");
        assert!(out.flushed_bytes > 0, "flush never ran: {out:?}");
    }

    #[test]
    fn duplicate_heavy_workload_deduplicates() {
        let out = dedup_ratio_point(&short_testbed());
        assert!(out.ratio >= 1.5, "reduction ratio too low: {out:?}");
        assert!(out.duplicate_chunks > 0, "{out:?}");
    }

    #[test]
    fn idle_suite_preserves_zero_copy() {
        let pt = suite_passthrough_point(65536, 1, &short_testbed());
        assert!(pt.pdus_forwarded > 0);
        assert_eq!(
            pt.copy.data_bytes_copied, 0,
            "idle suite must not copy data segments"
        );
    }
}

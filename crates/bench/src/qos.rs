//! Per-tenant QoS experiment runners: two-tenant interference and
//! SLO-driven provisioning churn.
//!
//! Both scenarios run the target-side QoS machinery (per-tenant token
//! buckets + weighted fair queueing on tiered disks) end to end from real
//! tenant VMs:
//!
//! * [`interference_point`] — a latency-sensitive *victim* shares the
//!   fast tier with a bandwidth-hungry *aggressor*. Three runs: victim
//!   solo, contended with no limits, and contended with the aggressor
//!   rate-limited plus a WFQ weight favouring the victim. The acceptance
//!   bar is the paper-style isolation claim: victim p99 under QoS within
//!   1.2x of its solo p99.
//! * [`provisioning_churn_point`] — the [`ProvisioningEngine`] control
//!   loop in anger: an SLO'd volume lands on the slow tier next to a
//!   best-effort hog, its p99 blows through the ceiling, and the engine
//!   live-migrates it to the fast tier mid-run (copy-then-cutover).

use storm_cloud::{Cloud, DiskSpec, ProvisioningEngine};
use storm_net::AppId;
use storm_qos::{DiskTier, RateLimitSpec, VolumeSlo};
use storm_sim::{SimDuration, SimTime};
use storm_telemetry::analyze;
use storm_workloads::{FioJob, FioWorkload};

use crate::{build_cloud, FioPoint, Testbed};

/// Aggressor IOPS cap in the shaped run.
const AGGRESSOR_IOPS: u64 = 200;
/// Aggressor burst allowance (ops).
const AGGRESSOR_BURST: u64 = 4;
/// Aggressor request size: a 4 KiB IOPS hog. Small frames keep its
/// in-flight bytes off the shared 1 GbE target link — target-side shaping
/// cannot un-send data, so a large-block aggressor would still
/// head-of-line block the victim's transfers *on the wire*.
const AGGRESSOR_BLOCK: usize = 4096;
/// WFQ weight handed to the victim (aggressor keeps the default 1).
const VICTIM_WEIGHT: u64 = 8;

/// Outcome of the two-tenant interference experiment.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceOutcome {
    /// Victim alone on the fast tier.
    pub solo: FioPoint,
    /// Victim sharing the fast tier with an unshaped aggressor.
    pub contended: FioPoint,
    /// Victim sharing the fast tier with a rate-limited, de-weighted
    /// aggressor.
    pub shaped: FioPoint,
    /// The aggressor's own point in the shaped run (shows the limit
    /// biting).
    pub shaped_aggressor: FioPoint,
    /// Target-side ops that drew a shaping delay in the shaped run.
    pub throttled_ops: u64,
}

impl InterferenceOutcome {
    /// Victim p99 under QoS relative to solo — the isolation headline.
    pub fn qos_over_solo(&self) -> f64 {
        if self.solo.p99_ms == 0.0 {
            return 1.0;
        }
        self.shaped.p99_ms / self.solo.p99_ms
    }
}

/// Outcome of the provisioning-churn experiment.
#[derive(Debug, Clone, Copy)]
pub struct ChurnOutcome {
    /// The SLO'd tenant's end-to-end point across the whole run
    /// (pre-migration slow-tier pain included).
    pub point: FioPoint,
    /// Copy-then-cutover migrations the control loop started.
    pub migrations_started: u64,
    /// Migrations whose cutover committed before the run ended.
    pub migrations_completed: u64,
    /// Fraction of the SLO'd volume's target-side samples at or under
    /// its p99 ceiling.
    pub slo_attainment: f64,
    /// Whether the deliberately oversized third request was rejected.
    pub overload_rejected: bool,
    /// The tier the SLO'd volume ended the run on.
    pub final_tier: DiskTier,
}

fn point_from(cloud: &mut Cloud, host: usize, app: AppId, duration: SimDuration) -> FioPoint {
    let client = cloud.client_mut(host, app);
    assert!(client.is_ready(), "login failed (host {host})");
    assert_eq!(client.stats.errors, 0, "I/O errors (host {host})");
    let ops = client.stats.ops();
    FioPoint {
        ops,
        iops: ops as f64 / duration.as_secs_f64(),
        mean_latency_ms: client.stats.latency.mean().as_nanos() as f64 / 1e6,
        p50_ms: client.stats.latency.percentile(50.0).as_nanos() as f64 / 1e6,
        p99_ms: client.stats.latency.percentile(99.0).as_nanos() as f64 / 1e6,
    }
}

fn drive_logins(cloud: &mut Cloud, apps: &[(usize, AppId)]) {
    let deadline = cloud.net.now() + SimDuration::from_secs(5);
    while cloud.net.now() < deadline {
        cloud.net.run_for(SimDuration::from_millis(1));
        if apps
            .iter()
            .all(|&(host, app)| cloud.client_mut(host, app).is_ready())
        {
            break;
        }
    }
}

/// One interference case: victim always runs; the aggressor and the
/// shaping knobs are optional. Returns `(victim, aggressor, throttled)`.
fn interference_case(
    testbed: &Testbed,
    with_aggressor: bool,
    shaped: bool,
) -> (FioPoint, Option<FioPoint>, u64) {
    let mut cloud = build_cloud(testbed.seed);
    let victim_vol = cloud.create_volume(testbed.volume_bytes, 0);
    let aggr_vol = cloud.create_volume(testbed.volume_bytes, 0);
    {
        let target = cloud.target_mut(0);
        target.enable_qos(DiskSpec::fast_tier(), DiskSpec::slow_tier());
        target.register_qos_volume(&victim_vol.iqn, 1, DiskTier::Fast);
        target.register_qos_volume(&aggr_vol.iqn, 2, DiskTier::Fast);
        if shaped {
            target.set_tenant_limit(
                2,
                RateLimitSpec::iops_limit(AGGRESSOR_IOPS, AGGRESSOR_BURST),
            );
            target.set_tenant_weight(1, VICTIM_WEIGHT);
        }
    }
    let victim_job = FioJob::randrw(64 * 1024, testbed.duration, victim_vol.sectors).threads(1);
    let victim = cloud.attach_volume(
        0,
        "vm:victim",
        &victim_vol,
        Box::new(FioWorkload::new(victim_job)),
        testbed.seed,
        false,
    );
    let mut apps = vec![(0usize, victim)];
    let aggressor = if with_aggressor {
        let job = FioJob::randrw(AGGRESSOR_BLOCK, testbed.duration, aggr_vol.sectors).threads(4);
        let app = cloud.attach_volume(
            1,
            "vm:aggressor",
            &aggr_vol,
            Box::new(FioWorkload::new(job)),
            testbed.seed + 1,
            false,
        );
        apps.push((1, app));
        Some(app)
    } else {
        None
    };
    drive_logins(&mut cloud, &apps);
    let end = cloud.net.now() + testbed.duration + SimDuration::from_secs(2);
    cloud.net.run_until(SimTime::from_nanos(end.as_nanos()));
    let (throttled, _) = cloud.target_mut(0).qos_throttle_stats();
    let victim_point = point_from(&mut cloud, 0, victim, testbed.duration);
    let aggr_point = aggressor.map(|app| point_from(&mut cloud, 1, app, testbed.duration));
    (victim_point, aggr_point, throttled)
}

/// Runs the two-tenant interference experiment: solo, contended, and
/// shaped (aggressor limited to `AGGRESSOR_IOPS`, victim WFQ weight
/// `VICTIM_WEIGHT`).
pub fn interference_point(testbed: &Testbed) -> InterferenceOutcome {
    let (solo, _, _) = interference_case(testbed, false, false);
    let (contended, _, _) = interference_case(testbed, true, false);
    let (shaped, shaped_aggressor, throttled_ops) = interference_case(testbed, true, true);
    InterferenceOutcome {
        solo,
        contended,
        shaped,
        shaped_aggressor: shaped_aggressor.expect("aggressor ran"),
        throttled_ops,
    }
}

/// SLO'd volume size: small enough that the copy-then-cutover migration
/// commits well inside the measurement window.
const CHURN_VOLUME_BYTES: u64 = 16 << 20;
/// The SLO'd tenant's p99 ceiling.
const CHURN_P99_CEILING_US: u64 = 1_500;

/// Runs the provisioning-churn experiment: an SLO'd volume deliberately
/// placed on the slow tier next to a best-effort hog, with the
/// [`ProvisioningEngine`] ticking every 50 ms of simulated time.
pub fn provisioning_churn_point(testbed: &Testbed) -> ChurnOutcome {
    let mut cloud = build_cloud(testbed.seed);
    cloud
        .target_mut(0)
        .enable_qos(DiskSpec::fast_tier(), DiskSpec::slow_tier());
    let mut engine = ProvisioningEngine::new(5_000, 20_000, 3);
    let now = cloud.net.now();
    // Economy placement: the ceiling is real but the volume starts on the
    // cheap tier — exactly the case the control loop exists to fix.
    let slo = VolumeSlo {
        iops_floor: 200,
        p99_ceiling_us: CHURN_P99_CEILING_US,
        tier: DiskTier::Slow,
    };
    let watched = engine
        .provision(&mut cloud, now, CHURN_VOLUME_BYTES, 0, 1, slo)
        .expect("SLO'd volume admitted");
    let hog = engine
        .provision(
            &mut cloud,
            now,
            CHURN_VOLUME_BYTES,
            0,
            2,
            VolumeSlo::BEST_EFFORT,
        )
        .expect("best-effort volume admitted");
    // Overload: a floor beyond both tiers' capacity must be rejected.
    let overload_rejected = engine
        .provision(
            &mut cloud,
            now,
            CHURN_VOLUME_BYTES,
            0,
            3,
            VolumeSlo::latency(1_000_000, 100),
        )
        .is_none();

    let watched_job = FioJob::randrw(4096, testbed.duration, watched.handle.sectors).threads(1);
    let watched_app = cloud.attach_volume(
        0,
        "vm:slo",
        &watched.handle,
        Box::new(FioWorkload::new(watched_job)),
        testbed.seed,
        false,
    );
    let hog_job = FioJob::randrw(64 * 1024, testbed.duration, hog.handle.sectors).threads(4);
    let hog_app = cloud.attach_volume(
        1,
        "vm:hog",
        &hog.handle,
        Box::new(FioWorkload::new(hog_job)),
        testbed.seed + 1,
        false,
    );
    drive_logins(&mut cloud, &[(0, watched_app), (1, hog_app)]);

    // Run in slices, ticking the control loop between them.
    let end = cloud.net.now() + testbed.duration + SimDuration::from_secs(2);
    while cloud.net.now() < end {
        cloud.net.run_for(SimDuration::from_millis(50));
        let t = cloud.net.now();
        engine.tick(&mut cloud, t);
    }

    let ceiling = SimDuration::from_micros(CHURN_P99_CEILING_US);
    let (migrations_completed, slo_attainment, final_tier) = {
        let t = cloud.target_mut(0);
        let now = SimTime::from_nanos(end.as_nanos());
        let tier = t.poll_migration(now, &watched.handle.iqn);
        let attainment = t
            .volume_latency(&watched.handle.iqn)
            .map_or(1.0, |h| analyze::slo_attainment(h, ceiling));
        (t.completed_migrations(), attainment, tier)
    };
    ChurnOutcome {
        point: point_from(&mut cloud, 0, watched_app, testbed.duration),
        migrations_started: engine.migrations_started(),
        migrations_completed,
        slo_attainment,
        overload_rejected,
        final_tier,
    }
}

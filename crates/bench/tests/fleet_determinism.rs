//! The fleet model's headline determinism claim, property-tested: for
//! any seed and remote-traffic mix, equal-seed runs produce
//! byte-identical merged traces at 1, 2 and 4 shards and any worker
//! thread count. This is the proptest the ISSUE's acceptance gate names:
//! sharding is a performance knob, never an observable one.

use proptest::prelude::*;
use storm_bench::{run_fleet, FleetConfig};

fn cfg(seed: u64, remote_permille: u64, shards: usize, threads: usize) -> FleetConfig {
    FleetConfig {
        racks: 4,
        shards,
        threads,
        tenants: 24,
        requests_per_tenant: 15,
        seed,
        remote_permille,
        keep_trace: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Equal seed ⇒ byte-identical merged trace across shard counts
    /// 1/2/4 and worker thread counts 1/2/4.
    #[test]
    fn merged_trace_survives_sharding(seed in 0u64..u64::MAX, remote in 0u64..1000) {
        let base = run_fleet(&cfg(seed, remote, 1, 1));
        let trace = base.merged_trace();
        prop_assert!(!trace.is_empty());
        for (shards, threads) in [(2, 1), (2, 2), (4, 1), (4, 2), (4, 4)] {
            let other = run_fleet(&cfg(seed, remote, shards, threads));
            prop_assert_eq!(
                &other.merged_trace(),
                &trace,
                "trace diverged at shards={} threads={}",
                shards,
                threads
            );
            prop_assert_eq!(other.digest(), base.digest());
            prop_assert_eq!(other.requests, base.requests);
            prop_assert_eq!(other.sim_end, base.sim_end);
        }
    }
}

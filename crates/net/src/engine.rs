//! The network event engine: hosts + fabric + applications.
//!
//! [`Network`] owns the topology and the event queue; [`App`]s are state
//! machines attached to hosts that react to socket events, timers and
//! hypervisor-bus messages through a [`Cx`] handle. The engine implements
//! the host datapath: NAT translation, IP forwarding (with per-packet CPU
//! cost and the optional passive-relay tap), local TCP delivery, and
//! transmission over the fabric.

use std::any::Any;
use std::collections::VecDeque;

use bytes::Bytes;

use storm_sim::trace::{flow_token, Hop, TraceEvent, TraceHook};
use storm_sim::{EventQueue, SimDuration, SimRng, SimTime};

use crate::addr::{FourTuple, SockAddr};
use crate::fabric::{Delivery, Endpoint, Fabric, LinkId, LinkSpec};
use crate::frame::Frame;
use crate::host::{AppId, CloseReason, Host, HostId, Iface, IfaceId, Route, SteerRule, TapConfig};
use crate::nat::{DnatRule, SnatRule};
use crate::switch::{PortNo, SwitchId, VirtualSwitch};
use crate::tcp::{OutSeg, SockId, TcpConfig, TcpEvent};

/// An opaque message on the hypervisor bus (virtio-blk requests, control
/// signals). Receivers downcast to their expected concrete type.
pub struct BusMsg(pub Box<dyn Any>);

impl std::fmt::Debug for BusMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("BusMsg").finish()
    }
}

impl BusMsg {
    /// Wraps a payload.
    pub fn new<T: Any>(payload: T) -> Self {
        BusMsg(Box::new(payload))
    }

    /// Attempts to take the payload as `T`.
    pub fn downcast<T: Any>(self) -> Result<T, BusMsg> {
        match self.0.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(b) => Err(BusMsg(b)),
        }
    }
}

/// Verdict of a passive-relay tap on a forwarded packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TapVerdict {
    /// Forward the (possibly modified) frame.
    #[default]
    Forward,
    /// Forward after an additional processing delay (per-byte service
    /// costs on the passive path).
    ForwardAfter(SimDuration),
    /// Drop the frame.
    Drop,
}

/// A simulation event.
#[derive(Debug)]
pub enum Ev {
    /// Application start-up hook.
    Start {
        /// Hosting machine.
        host: HostId,
        /// The app.
        app: AppId,
    },
    /// A frame arrives at an endpoint after traversing a link.
    Arrive {
        /// The delivering link.
        link: LinkId,
        /// Receiving endpoint.
        to: Endpoint,
        /// The frame.
        frame: Frame,
    },
    /// A forwarded frame leaves a host after its forwarding/tap delay.
    Egress {
        /// Forwarding host.
        host: HostId,
        /// Egress interface.
        iface: IfaceId,
        /// The frame.
        frame: Frame,
    },
    /// Loopback / local delivery.
    Local {
        /// The host.
        host: HostId,
        /// The frame.
        frame: Frame,
    },
    /// An application timer fired.
    Timer {
        /// Hosting machine.
        host: HostId,
        /// The app.
        app: AppId,
        /// App-chosen token.
        token: u64,
    },
    /// A hypervisor-bus message.
    Bus {
        /// Destination host.
        host: HostId,
        /// Destination app.
        app: AppId,
        /// Originating host.
        from: HostId,
        /// Payload.
        msg: BusMsg,
    },
    /// Deferred socket resume (so buffered data is delivered outside the
    /// caller's stack frame).
    Resume {
        /// The host.
        host: HostId,
        /// The socket.
        sock: SockId,
    },
}

/// An application running on a host.
///
/// All methods have no-op defaults; implement the ones the app cares
/// about. Apps are driven entirely by the engine — they never block.
///
/// `App: Any` so harnesses can downcast via [`downcast_mut`] to read
/// results (operation counts, latency recorders) out of an app after a run.
///
/// [`downcast_mut`]: trait@App#method.downcast_mut
#[allow(unused_variables)]
pub trait App: Any {
    /// Called once when the simulation starts (or when the app is added).
    fn on_start(&mut self, cx: &mut Cx<'_>) {}
    /// A timer set via [`Cx::set_timer`] or [`Cx::compute`] fired.
    fn on_timer(&mut self, cx: &mut Cx<'_>, token: u64) {}
    /// A bus message arrived.
    fn on_bus(&mut self, cx: &mut Cx<'_>, from: HostId, msg: BusMsg) {}
    /// An active open completed.
    fn on_connected(&mut self, cx: &mut Cx<'_>, sock: SockId) {}
    /// An active open failed.
    fn on_connect_failed(&mut self, cx: &mut Cx<'_>, sock: SockId) {}
    /// A listener accepted a connection.
    fn on_accepted(&mut self, cx: &mut Cx<'_>, port: u16, sock: SockId) {}
    /// Ordered payload bytes arrived.
    fn on_data(&mut self, cx: &mut Cx<'_>, sock: SockId, data: Bytes) {}
    /// Send-buffer space became available after a short write.
    fn on_writable(&mut self, cx: &mut Cx<'_>, sock: SockId) {}
    /// The connection ended.
    fn on_closed(&mut self, cx: &mut Cx<'_>, sock: SockId, reason: CloseReason) {}
    /// Passive-relay tap: inspect/modify a frame being forwarded through
    /// this host. Only invoked if a [`TapConfig`] is installed.
    fn on_tap(&mut self, cx: &mut Cx<'_>, frame: &mut Frame) -> TapVerdict {
        TapVerdict::Forward
    }
}

/// The simulated network: fabric, hosts, applications and the event loop.
pub struct Network {
    /// The switching fabric (public for SDN controllers to program).
    pub fabric: Fabric,
    hosts: Vec<Host>,
    q: EventQueue<Ev>,
    now: SimTime,
    rng: SimRng,
    mac_counter: u64,
    default_tcp: TcpConfig,
    trace: TraceHook,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("hosts", &self.hosts.len())
            .field("now", &self.now)
            .field("queued", &self.q.len())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates an empty network seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Network {
            fabric: Fabric::new(),
            hosts: Vec::new(),
            q: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::seed_from_u64(seed),
            mac_counter: 1,
            default_tcp: TcpConfig::default(),
            trace: TraceHook::none(),
        }
    }

    /// Arms the network's trace hook: every IP-forwarding hop (gateways,
    /// MB-FWD middle-boxes) reports its per-packet cost as a flow-scoped
    /// [`Hop::Forward`] stage. Unarmed, forwarding pays one branch.
    pub fn set_trace_hook(&mut self, hook: TraceHook) {
        self.trace = hook;
    }

    /// Sets the TCP configuration used by hosts added afterwards.
    pub fn set_default_tcp(&mut self, config: TcpConfig) {
        self.default_tcp = config;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adds a host with `cores` CPU cores.
    pub fn add_host(&mut self, name: impl Into<String>, cores: usize) -> HostId {
        self.hosts
            .push(Host::new(name.into(), cores, self.default_tcp));
        HostId(self.hosts.len() as u32 - 1)
    }

    /// Adds an interface with an auto-assigned MAC in a /24 subnet.
    pub fn add_iface(&mut self, host: HostId, ip: std::net::Ipv4Addr) -> IfaceId {
        self.add_iface_with(host, ip, 24)
    }

    /// Adds an interface with an explicit prefix length.
    pub fn add_iface_with(
        &mut self,
        host: HostId,
        ip: std::net::Ipv4Addr,
        prefix_len: u8,
    ) -> IfaceId {
        let mac = crate::addr::MacAddr::nth(self.mac_counter);
        self.mac_counter += 1;
        self.fabric.set_arp(ip, mac);
        let h = &mut self.hosts[host.0 as usize];
        h.ifaces.push(Iface {
            mac,
            ip,
            prefix_len,
            link: None,
        });
        IfaceId(h.ifaces.len() as u32 - 1)
    }

    /// Adds a switch to the fabric.
    pub fn add_switch(&mut self, name: impl Into<String>, ports: usize) -> SwitchId {
        self.fabric.add_switch(VirtualSwitch::new(name, ports))
    }

    /// Finds the first unwired port on `sw`.
    ///
    /// # Panics
    ///
    /// Panics if the switch is full.
    pub fn free_port(&self, sw: SwitchId) -> PortNo {
        let count = self.fabric.switch(sw).port_count();
        for p in 0..count as u16 {
            if self.fabric.link_at(sw, PortNo(p)).is_none() {
                return PortNo(p);
            }
        }
        panic!("switch {sw} has no free ports");
    }

    /// Wires a host interface to the next free port of a switch, also
    /// seeding the switch's MAC table. Returns the link.
    pub fn link_host_switch(
        &mut self,
        host: HostId,
        iface: IfaceId,
        sw: SwitchId,
        spec: LinkSpec,
    ) -> LinkId {
        let port = self.free_port(sw);
        let mac = self.hosts[host.0 as usize].ifaces[iface.0 as usize].mac;
        let link = self.fabric.add_link(
            Endpoint::Host { host, iface },
            Endpoint::Switch { sw, port },
            spec,
        );
        self.fabric.switch_mut(sw).learn(mac, port);
        self.hosts[host.0 as usize].ifaces[iface.0 as usize].link = Some(link);
        link
    }

    /// Wires two switches together (trunk), returning `(link, port_a,
    /// port_b)`.
    pub fn link_switches(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        spec: LinkSpec,
    ) -> (LinkId, PortNo, PortNo) {
        let pa = self.free_port(a);
        // Temporarily reserve port pa by wiring after computing pb.
        let pb = {
            // free_port(b) cannot collide with pa since they are different
            // switches.
            self.free_port(b)
        };
        let link = self.fabric.add_link(
            Endpoint::Switch { sw: a, port: pa },
            Endpoint::Switch { sw: b, port: pb },
            spec,
        );
        (link, pa, pb)
    }

    /// Attaches an application to a host; its `on_start` runs at the
    /// current simulation time.
    pub fn add_app(&mut self, host: HostId, app: Box<dyn App>) -> AppId {
        let h = &mut self.hosts[host.0 as usize];
        h.apps.push(Some(app));
        let id = AppId(h.apps.len() as u32 - 1);
        self.q.push(self.now, Ev::Start { host, app: id });
        id
    }

    /// Shared access to a host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Number of hosts in the network (host ids are `0..count`).
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Mutable access to a host (for topology/NAT/steering setup).
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0 as usize]
    }

    /// Mutable access to an app (to inspect results after a run or
    /// configure it before one). Returns `None` if the app is currently
    /// being dispatched.
    pub fn app_mut(&mut self, host: HostId, app: AppId) -> Option<&mut Box<dyn App>> {
        self.hosts[host.0 as usize].apps[app.0 as usize].as_mut()
    }

    /// Adds a static route.
    pub fn add_route(
        &mut self,
        host: HostId,
        dst: std::net::Ipv4Addr,
        prefix_len: u8,
        via: Option<std::net::Ipv4Addr>,
        iface: IfaceId,
    ) {
        self.hosts[host.0 as usize].routes.push(Route {
            dst,
            prefix_len,
            via,
            iface,
        });
    }

    /// Enables IP forwarding with the given per-packet cost.
    pub fn enable_forwarding(&mut self, host: HostId, per_packet: SimDuration) {
        let h = &mut self.hosts[host.0 as usize];
        h.ip_forward = true;
        h.forward_cost = per_packet;
    }

    /// Installs a passive-relay tap.
    pub fn set_tap(&mut self, host: HostId, tap: Option<TapConfig>) {
        self.hosts[host.0 as usize].tap = tap;
    }

    /// Enables TSO-style large segments on a host's TCP stack.
    pub fn set_tcp_mss(&mut self, host: HostId, mss: usize) {
        self.hosts[host.0 as usize].tcp.set_mss(mss);
    }

    /// Installs a DNAT rule on a host.
    pub fn add_dnat(&mut self, host: HostId, rule: DnatRule) {
        self.hosts[host.0 as usize].nat.add_dnat(rule);
    }

    /// Installs an SNAT rule on a host.
    pub fn add_snat(&mut self, host: HostId, rule: SnatRule) {
        self.hosts[host.0 as usize].nat.add_snat(rule);
    }

    /// Installs a steering rule on a host.
    pub fn add_steer_rule(&mut self, host: HostId, rule: SteerRule) {
        self.hosts[host.0 as usize].add_steer_rule(rule);
    }

    /// Schedules a bus message (hypervisor channel) for delivery after
    /// `delay`.
    pub fn bus_send(
        &mut self,
        from: HostId,
        to_host: HostId,
        to_app: AppId,
        delay: SimDuration,
        msg: BusMsg,
    ) {
        self.q.push(
            self.now + delay,
            Ev::Bus {
                host: to_host,
                app: to_app,
                from,
                msg,
            },
        );
    }

    /// Processes the single next event if it is due at or before `end`,
    /// advancing `now` to it. Returns `false` — with `now` untouched —
    /// when the queue is empty or the next event lies beyond `end`.
    ///
    /// This is the building block for condition-driven run loops ("run
    /// until the client is ready") that would otherwise poll in
    /// fixed-size `run_for` quanta, re-checking the condition thousands
    /// of times at fleet scale.
    pub fn step_until(&mut self, end: SimTime) -> bool {
        match self.q.peek_time() {
            Some(t) if t <= end => {
                let (t, ev) = self.q.pop().expect("peeked");
                debug_assert!(t >= self.now, "time went backwards");
                self.now = t;
                self.handle(ev);
                true
            }
            _ => false,
        }
    }

    /// Runs until the queue drains or `end` is reached; time advances to
    /// `end` on return.
    pub fn run_until(&mut self, end: SimTime) {
        while self.step_until(end) {}
        self.now = end;
    }

    /// Runs for a further `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let end = self.now + d;
        self.run_until(end);
    }

    /// Total events delivered (diagnostics).
    pub fn events_delivered(&self) -> u64 {
        self.q.delivered()
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Start { host, app } => self.dispatch(host, app, Callback::Start),
            Ev::Arrive { link: _, to, frame } => match to {
                Endpoint::Switch { sw, port } => {
                    let deliveries = self.fabric.switch_input(sw, port, frame, self.now);
                    self.push_deliveries(deliveries);
                }
                Endpoint::Host { host, iface } => self.host_input(host, iface, frame),
            },
            Ev::Egress { host, iface, frame } => self.emit(host, iface, frame),
            Ev::Local { host, frame } => self.local_input(host, frame),
            Ev::Timer { host, app, token } => self.dispatch(host, app, Callback::Timer(token)),
            Ev::Bus {
                host,
                app,
                from,
                msg,
            } => self.dispatch(host, app, Callback::Bus(from, msg)),
            Ev::Resume { host, sock } => {
                let (outs, events) = self.hosts[host.0 as usize].tcp.resume(sock);
                for seg in outs {
                    self.host_output(host, seg);
                }
                for (app, ev) in events {
                    self.dispatch(host, app, Callback::Tcp(ev));
                }
            }
        }
    }

    fn push_deliveries(&mut self, deliveries: Vec<Delivery>) {
        for d in deliveries {
            // LinkId is only informational here; reuse 0.
            self.q.push(
                d.at,
                Ev::Arrive {
                    link: LinkId(0),
                    to: d.to,
                    frame: d.frame,
                },
            );
        }
    }

    /// A frame arrived at a host NIC.
    fn host_input(&mut self, host: HostId, iface: IfaceId, mut frame: Frame) {
        let (local_mac, is_local_ip) = {
            let h = &self.hosts[host.0 as usize];
            let ifc = &h.ifaces[iface.0 as usize];
            (ifc.mac, true)
        };
        let _ = is_local_ip;
        if frame.dst_mac != local_mac && !frame.dst_mac.is_broadcast() {
            // Not for us (switch flooded); NICs are not promiscuous.
            return;
        }
        // PREROUTING: NAT translation (conntrack first, then rules on SYN).
        let is_syn = frame.tcp.flags.syn && !frame.tcp.flags.ack;
        let tuple = frame.tuple();
        let xlat = self.hosts[host.0 as usize].nat.translate(tuple, is_syn);
        if xlat != tuple {
            frame.set_tuple(xlat);
        }
        if self.hosts[host.0 as usize].has_ip(frame.dst_ip) {
            self.local_input(host, frame);
        } else if self.hosts[host.0 as usize].ip_forward {
            self.forward(host, frame);
        }
        // else: not ours and not forwarding — drop silently.
    }

    /// IP forwarding with per-packet cost and the optional tap.
    fn forward(&mut self, host: HostId, mut frame: Frame) {
        // Tap (passive relay) first: it may modify or drop the frame.
        let mut tap_work = SimDuration::ZERO;
        let mut tap_pp = SimDuration::ZERO;
        if let Some(tap) = self.hosts[host.0 as usize].tap {
            tap_work = tap.per_packet;
            tap_pp = tap.per_packet;
            match self.dispatch_tap(host, tap.app, &mut frame) {
                TapVerdict::Forward => {}
                TapVerdict::ForwardAfter(d) => tap_work += d,
                TapVerdict::Drop => return,
            }
        }
        let h = &mut self.hosts[host.0 as usize];
        let Some((out_iface, next_hop)) = h.route_for(frame.dst_ip) else {
            h.dropped_no_route += 1;
            return;
        };
        // POSTROUTING happened in NAT translate already (rules evaluate
        // both chains); rewrite L2 addressing for the next hop.
        let Some(next_mac) = self.fabric.arp(next_hop) else {
            self.hosts[host.0 as usize].dropped_no_route += 1;
            return;
        };
        let h = &mut self.hosts[host.0 as usize];
        let src_mac = h.ifaces[out_iface.0 as usize].mac;
        frame.src_mac = src_mac;
        frame.dst_mac = next_mac;
        let done = h.cpu.run(self.now, h.forward_cost, "fwd");
        // Tap processing serializes through the single interception
        // process (one kernel→user copy per packet — the paper's
        // passive-relay overhead).
        let fwd_cost = h.forward_cost;
        let done = if tap_work > SimDuration::ZERO {
            let _ = h.cpu.run(self.now, tap_work, "tap");
            h.tap_queue.serve(done, tap_work)
        } else {
            done
        };
        if self.trace.is_armed() {
            // Attribution is flow-scoped: per-packet kernel work cannot be
            // pinned to one command, so the analyzer amortizes it over the
            // flow's requests. Ephemeral ports start at 40000, so the
            // higher port of the pair is the initiator side.
            let flow = flow_token(frame.tcp.src_port.max(frame.tcp.dst_port));
            self.trace.emit(
                self.now,
                TraceEvent::Stage {
                    req: flow,
                    hop: Hop::Forward,
                    id: host.0,
                    dur: fwd_cost,
                },
            );
            if tap_pp > SimDuration::ZERO {
                self.trace.emit(
                    self.now,
                    TraceEvent::Stage {
                        req: flow,
                        hop: Hop::Relay,
                        id: host.0,
                        dur: tap_pp,
                    },
                );
            }
        }
        self.q.push(
            done,
            Ev::Egress {
                host,
                iface: out_iface,
                frame,
            },
        );
    }

    /// Emits a frame out of a host interface onto its link.
    fn emit(&mut self, host: HostId, iface: IfaceId, frame: Frame) {
        let h = &self.hosts[host.0 as usize];
        let Some(link) = h.ifaces[iface.0 as usize].link else {
            return;
        };
        let from = Endpoint::Host { host, iface };
        if let Some(d) = self.fabric.transmit(link, from, frame, self.now) {
            self.push_deliveries(vec![d]);
        }
    }

    /// Delivers a frame to the local TCP stack and dispatches app events.
    fn local_input(&mut self, host: HostId, frame: Frame) {
        let tuple = frame.tuple();
        let (outs, events) = self.hosts[host.0 as usize].tcp.input(tuple, frame.tcp);
        for seg in outs {
            self.host_output(host, seg);
        }
        for (app, ev) in events {
            self.dispatch(host, app, Callback::Tcp(ev));
        }
    }

    /// Sends a locally generated segment: OUTPUT NAT, routing (with flow
    /// steering), L2 resolution, transmission.
    fn host_output(&mut self, host: HostId, seg: OutSeg) {
        let is_syn = seg.seg.flags.syn && !seg.seg.flags.ack;
        let h = &mut self.hosts[host.0 as usize];
        // OUTPUT path: conntrack only (reply rewriting for redirected
        // flows); PREROUTING rules never apply to local output.
        let tuple = h.nat.translate_output(seg.tuple);
        // Loopback delivery for local destinations.
        if h.has_ip(tuple.dst.ip) {
            let mut frame = Frame {
                src_mac: crate::addr::MacAddr::nth(0),
                dst_mac: crate::addr::MacAddr::nth(0),
                src_ip: tuple.src.ip,
                dst_ip: tuple.dst.ip,
                tcp: seg.seg,
                hops: 0,
            };
            frame.set_tuple(tuple);
            self.q.push(
                self.now + SimDuration::from_micros(1),
                Ev::Local { host, frame },
            );
            return;
        }
        let Some((out_iface, next_hop)) = h.route_for_flow(&tuple, is_syn) else {
            h.dropped_no_route += 1;
            return;
        };
        let src_mac = h.ifaces[out_iface.0 as usize].mac;
        let Some(dst_mac) = self.fabric.arp(next_hop) else {
            self.hosts[host.0 as usize].dropped_no_route += 1;
            return;
        };
        let mut frame = Frame {
            src_mac,
            dst_mac,
            src_ip: tuple.src.ip,
            dst_ip: tuple.dst.ip,
            tcp: seg.seg,
            hops: 0,
        };
        frame.set_tuple(tuple);
        self.emit(host, out_iface, frame);
    }

    fn dispatch_tap(&mut self, host: HostId, app: AppId, frame: &mut Frame) -> TapVerdict {
        let Some(mut a) = self.hosts[host.0 as usize].apps[app.0 as usize].take() else {
            return TapVerdict::Forward;
        };
        let mut cx = Cx {
            net: self,
            host,
            app,
        };
        let verdict = a.on_tap(&mut cx, frame);
        self.hosts[host.0 as usize].apps[app.0 as usize] = Some(a);
        verdict
    }

    fn dispatch(&mut self, host: HostId, app: AppId, cb: Callback) {
        let Some(mut a) = self.hosts[host.0 as usize].apps[app.0 as usize].take() else {
            // App is already on the stack (re-entrant event): requeue just
            // after now to preserve ordering without recursion.
            self.q.push(self.now, cb.requeue(host, app));
            return;
        };
        {
            let mut cx = Cx {
                net: self,
                host,
                app,
            };
            match cb {
                Callback::Start => a.on_start(&mut cx),
                Callback::Timer(token) => a.on_timer(&mut cx, token),
                Callback::Bus(from, msg) => a.on_bus(&mut cx, from, msg),
                Callback::Tcp(ev) => match ev {
                    TcpEvent::Connected(s) => a.on_connected(&mut cx, s),
                    TcpEvent::ConnectFailed(s) => a.on_connect_failed(&mut cx, s),
                    TcpEvent::Accepted { port, sock } => a.on_accepted(&mut cx, port, sock),
                    TcpEvent::Data { sock, data } => a.on_data(&mut cx, sock, data),
                    TcpEvent::Writable(s) => a.on_writable(&mut cx, s),
                    TcpEvent::Closed { sock, kind } => a.on_closed(&mut cx, sock, kind),
                },
            }
        }
        self.hosts[host.0 as usize].apps[app.0 as usize] = Some(a);
    }
}

impl dyn App {
    /// Downcasts to a concrete app type.
    pub fn downcast_mut<T: App>(&mut self) -> Option<&mut T> {
        let any: &mut dyn Any = self;
        any.downcast_mut()
    }

    /// Downcasts to a concrete app type (shared).
    pub fn downcast_ref<T: App>(&self) -> Option<&T> {
        let any: &dyn Any = self;
        any.downcast_ref()
    }
}

enum Callback {
    Start,
    Timer(u64),
    Bus(HostId, BusMsg),
    Tcp(TcpEvent),
}

impl Callback {
    fn requeue(self, host: HostId, app: AppId) -> Ev {
        match self {
            Callback::Start => Ev::Start { host, app },
            Callback::Timer(token) => Ev::Timer { host, app, token },
            Callback::Bus(from, msg) => Ev::Bus {
                host,
                app,
                from,
                msg,
            },
            Callback::Tcp(_) => {
                // TCP events cannot be requeued without re-entering the
                // stack; in practice apps never trigger same-app TCP events
                // synchronously (resume is deferred via Ev::Resume).
                unreachable!("re-entrant TCP dispatch")
            }
        }
    }
}

/// The capability handle given to [`App`] callbacks.
pub struct Cx<'a> {
    net: &'a mut Network,
    host: HostId,
    app: AppId,
}

impl<'a> Cx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.net.now
    }

    /// The host this app runs on.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// This app's id.
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.net.rng
    }

    /// IP address of the host's interface `idx`.
    pub fn local_ip(&self, idx: u32) -> std::net::Ipv4Addr {
        self.net.hosts[self.host.0 as usize].ifaces[idx as usize].ip
    }

    /// Starts listening on `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on this host.
    pub fn listen(&mut self, port: u16) {
        self.net.hosts[self.host.0 as usize]
            .tcp
            .listen(self.app, port);
    }

    /// Opens a connection to `remote`, choosing the local source IP from
    /// the route towards it.
    pub fn connect(&mut self, remote: SockAddr) -> SockId {
        self.connect_from(remote, None)
    }

    /// Opens a connection with an explicit source port (`None` =
    /// ephemeral); see [`crate::tcp::TcpStack::connect_from`].
    pub fn connect_from(&mut self, remote: SockAddr, src_port: Option<u16>) -> SockId {
        let host = &mut self.net.hosts[self.host.0 as usize];
        let local_ip = host
            .route_for(remote.ip)
            .map(|(iface, _)| host.ifaces[iface.0 as usize].ip)
            .unwrap_or_else(|| host.ifaces.first().map(|i| i.ip).unwrap_or(remote.ip));
        let (sock, syn) = host.tcp.connect_from(self.app, local_ip, remote, src_port);
        self.net.host_output(self.host, syn);
        sock
    }

    /// Queues bytes on a socket; returns how many were accepted (the rest
    /// should be retried from [`App::on_writable`]).
    pub fn send(&mut self, sock: SockId, data: &[u8]) -> usize {
        let (n, segs) = self.net.hosts[self.host.0 as usize].tcp.send(sock, data);
        for seg in segs {
            self.net.host_output(self.host, seg);
        }
        n
    }

    /// Queues a refcounted chunk on a socket without copying its bytes;
    /// returns how many were accepted (see
    /// [`crate::tcp::TcpStack::send_bytes`]).
    pub fn send_bytes(&mut self, sock: SockId, data: Bytes) -> usize {
        let (n, segs) = self.net.hosts[self.host.0 as usize]
            .tcp
            .send_bytes(sock, data);
        for seg in segs {
            self.net.host_output(self.host, seg);
        }
        n
    }

    /// Queues chunks on a socket in one batch (single segmentation pass —
    /// see [`crate::tcp::TcpStack::send_chunks`]); drains accepted chunks
    /// from the front of `chunks` and returns how many bytes were
    /// accepted.
    pub fn send_chunks(&mut self, sock: SockId, chunks: &mut VecDeque<Bytes>) -> usize {
        let (n, segs) = self.net.hosts[self.host.0 as usize]
            .tcp
            .send_chunks(sock, chunks);
        for seg in segs {
            self.net.host_output(self.host, seg);
        }
        n
    }

    /// Free space in the socket's send buffer.
    pub fn send_capacity(&self, sock: SockId) -> usize {
        self.net.hosts[self.host.0 as usize].tcp.send_capacity(sock)
    }

    /// Bytes queued locally but not yet acknowledged by the peer.
    pub fn unacked(&self, sock: SockId) -> usize {
        self.net.hosts[self.host.0 as usize].tcp.unacked(sock)
    }

    /// The `(local, remote)` tuple of a socket.
    pub fn tuple_of(&self, sock: SockId) -> Option<FourTuple> {
        self.net.hosts[self.host.0 as usize].tcp.tuple_of(sock)
    }

    /// Stops delivering data on `sock`; the advertised window shrinks as
    /// bytes accumulate (active-relay backpressure).
    pub fn pause(&mut self, sock: SockId) {
        self.net.hosts[self.host.0 as usize].tcp.pause(sock);
    }

    /// Resumes delivery on `sock` (buffered data arrives via `on_data`
    /// immediately after this callback returns).
    pub fn resume(&mut self, sock: SockId) {
        self.net.q.push(
            self.net.now,
            Ev::Resume {
                host: self.host,
                sock,
            },
        );
    }

    /// Gracefully closes a socket.
    pub fn close(&mut self, sock: SockId) {
        let segs = self.net.hosts[self.host.0 as usize].tcp.close(sock);
        for seg in segs {
            self.net.host_output(self.host, seg);
        }
    }

    /// Abortively closes a socket (RST).
    pub fn abort(&mut self, sock: SockId) {
        let segs = self.net.hosts[self.host.0 as usize].tcp.abort(sock);
        for seg in segs {
            self.net.host_output(self.host, seg);
        }
    }

    /// Fires `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.net.q.push(
            self.net.now + delay,
            Ev::Timer {
                host: self.host,
                app: self.app,
                token,
            },
        );
    }

    /// Runs `cost` of CPU work attributed to `label`, firing
    /// `on_timer(token)` at completion (queueing behind other work on the
    /// host's cores).
    pub fn compute(&mut self, cost: SimDuration, label: &str, token: u64) {
        let done = self.net.hosts[self.host.0 as usize]
            .cpu
            .run(self.net.now, cost, label);
        self.net.q.push(
            done,
            Ev::Timer {
                host: self.host,
                app: self.app,
                token,
            },
        );
    }

    /// Accounts CPU time to `label` without scheduling a callback; returns
    /// the completion instant.
    pub fn charge(&mut self, cost: SimDuration, label: &str) -> SimTime {
        self.net.hosts[self.host.0 as usize]
            .cpu
            .run(self.net.now, cost, label)
    }

    /// Sends a hypervisor-bus message to `(to_host, to_app)` after `delay`.
    pub fn bus_send(&mut self, to_host: HostId, to_app: AppId, delay: SimDuration, msg: BusMsg) {
        self.net.bus_send(self.host, to_host, to_app, delay, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// Sink server: counts bytes, echoes nothing.
    #[derive(Default)]
    struct Sink {
        bytes: usize,
        accepted: u32,
    }
    impl App for Sink {
        fn on_start(&mut self, cx: &mut Cx<'_>) {
            cx.listen(3260);
        }
        fn on_accepted(&mut self, _cx: &mut Cx<'_>, _port: u16, _sock: SockId) {
            self.accepted += 1;
        }
        fn on_data(&mut self, _cx: &mut Cx<'_>, _sock: SockId, data: Bytes) {
            self.bytes += data.len();
        }
    }

    /// Client that sends `total` bytes as fast as the socket allows.
    struct Blaster {
        remote: SockAddr,
        total: usize,
        sent: usize,
        sock: Option<SockId>,
        connected_at: Option<SimTime>,
    }
    impl Blaster {
        fn new(remote: SockAddr, total: usize) -> Self {
            Blaster {
                remote,
                total,
                sent: 0,
                sock: None,
                connected_at: None,
            }
        }
        fn pump(&mut self, cx: &mut Cx<'_>, sock: SockId) {
            while self.sent < self.total {
                let chunk = (self.total - self.sent).min(16 * 1024);
                let n = cx.send(sock, &vec![0xA5u8; chunk]);
                self.sent += n;
                if n < chunk {
                    break;
                }
            }
        }
    }
    impl App for Blaster {
        fn on_start(&mut self, cx: &mut Cx<'_>) {
            self.sock = Some(cx.connect(self.remote));
        }
        fn on_connected(&mut self, cx: &mut Cx<'_>, sock: SockId) {
            self.connected_at = Some(cx.now());
            self.pump(cx, sock);
        }
        fn on_writable(&mut self, cx: &mut Cx<'_>, sock: SockId) {
            self.pump(cx, sock);
        }
    }

    fn two_host_net() -> (Network, HostId, HostId) {
        let mut net = Network::new(1);
        let a = net.add_host("a", 4);
        let b = net.add_host("b", 4);
        let ia = net.add_iface(a, Ipv4Addr::new(10, 0, 0, 1));
        let ib = net.add_iface(b, Ipv4Addr::new(10, 0, 0, 2));
        let sw = net.add_switch("sw", 4);
        net.link_host_switch(a, ia, sw, LinkSpec::gigabit());
        net.link_host_switch(b, ib, sw, LinkSpec::gigabit());
        (net, a, b)
    }

    #[test]
    fn bulk_transfer_completes() {
        let (mut net, a, b) = two_host_net();
        let total = 4 << 20; // 4 MiB
        let sink_id = net.add_app(b, Box::new(Sink::default()));
        net.add_app(
            a,
            Box::new(Blaster::new(
                SockAddr::new(Ipv4Addr::new(10, 0, 0, 2), 3260),
                total,
            )),
        );
        net.run_until(SimTime::from_nanos(2_000_000_000));
        let sink = net
            .app_mut(b, sink_id)
            .unwrap()
            .downcast_mut::<Sink>()
            .unwrap();
        assert_eq!(sink.bytes, total);
        assert_eq!(sink.accepted, 1);
        assert!(net.events_delivered() > 1000);
    }

    /// Transfer time should scale roughly with link bandwidth: 4 MiB over
    /// 1 Gbps is ~34 ms on the wire, so the whole run (with window stalls)
    /// must land between 30 ms and 200 ms.
    #[test]
    fn transfer_time_is_bandwidth_plausible() {
        let (mut net, a, b) = two_host_net();
        let total = 4 << 20;
        let sink_id = net.add_app(b, Box::new(Sink::default()));
        net.add_app(
            a,
            Box::new(Blaster::new(
                SockAddr::new(Ipv4Addr::new(10, 0, 0, 2), 3260),
                total,
            )),
        );
        // Run in small steps until the sink has everything, then read time.
        let mut done_at = None;
        for _ in 0..4000 {
            net.run_for(SimDuration::from_micros(100));
            let sink = net
                .app_mut(b, sink_id)
                .unwrap()
                .downcast_mut::<Sink>()
                .unwrap();
            if sink.bytes == total {
                done_at = Some(net.now());
                break;
            }
        }
        let t = done_at.expect("transfer finished").as_millis();
        assert!((30..200).contains(&t), "took {t} ms");
    }

    /// Two hosts with no switch path cannot talk; no panic, no delivery.
    #[test]
    fn unreachable_host_drops() {
        let mut net = Network::new(2);
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.add_iface(a, Ipv4Addr::new(10, 0, 0, 1));
        net.add_iface(b, Ipv4Addr::new(10, 0, 1, 2)); // different /24
        let sink_id = net.add_app(b, Box::new(Sink::default()));
        net.add_app(
            a,
            Box::new(Blaster::new(
                SockAddr::new(Ipv4Addr::new(10, 0, 1, 2), 3260),
                100,
            )),
        );
        net.run_until(SimTime::from_nanos(100_000_000));
        let sink = net
            .app_mut(b, sink_id)
            .unwrap()
            .downcast_mut::<Sink>()
            .unwrap();
        assert_eq!(sink.bytes, 0);
        assert!(net.host(a).dropped_no_route > 0);
    }
}

//! Virtual switches: flow-table steering with an L2 learning fallback.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::MacAddr;
use crate::flow::{FlowAction, FlowRule, FlowTable};
use crate::frame::Frame;

/// Index of a switch within the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub u32);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// A port number on a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortNo(pub u16);

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An Open vSwitch-like virtual switch.
///
/// Frames are first matched against the SDN [`FlowTable`]; the `Normal`
/// action (or an empty table) falls through to ordinary L2 forwarding with
/// MAC learning. Ports may carry a tenant tag: frames are only forwarded
/// between ports of the same tenant (or untagged infrastructure ports),
/// modelling Neutron's tenant isolation.
#[derive(Debug)]
pub struct VirtualSwitch {
    name: String,
    ports: usize,
    // BTreeMaps so port sweeps and any future FDB iteration are in
    // address order, never hasher order (no-hash-iter invariant).
    fdb: BTreeMap<MacAddr, PortNo>,
    flows: FlowTable,
    tenant_tags: BTreeMap<PortNo, u32>,
    dropped: u64,
}

impl VirtualSwitch {
    /// Creates a switch with `ports` ports.
    pub fn new(name: impl Into<String>, ports: usize) -> Self {
        VirtualSwitch {
            name: name.into(),
            ports,
            fdb: BTreeMap::new(),
            flows: FlowTable::new(),
            tenant_tags: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// Switch name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports
    }

    /// The SDN flow table (install/remove rules through this).
    pub fn flows_mut(&mut self) -> &mut FlowTable {
        &mut self.flows
    }

    /// Read access to the flow table.
    pub fn flows(&self) -> &FlowTable {
        &self.flows
    }

    /// Statically binds a MAC to a port (used at topology build instead of
    /// relying purely on learning).
    pub fn learn(&mut self, mac: MacAddr, port: PortNo) {
        self.fdb.insert(mac, port);
    }

    /// Tags `port` as belonging to tenant `tenant`; frames never cross
    /// between different tenant tags.
    pub fn set_tenant(&mut self, port: PortNo, tenant: u32) {
        self.tenant_tags.insert(port, tenant);
    }

    /// Frames dropped by policy, loop guard or unknown destination.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Processes a frame arriving on `in_port`, returning the frames to
    /// emit as `(out_port, frame)` pairs (flooding may produce several).
    pub fn process(&mut self, mut frame: Frame, in_port: PortNo) -> Vec<(PortNo, Frame)> {
        if frame.hops >= Frame::MAX_HOPS {
            self.dropped += 1;
            return Vec::new();
        }
        frame.hops += 1;
        // Learn the sender's location.
        self.fdb.insert(frame.src_mac, in_port);

        let mut outputs = Vec::new();
        let mut normal = true;
        if let Some(rule) = self.flows.lookup(&frame, in_port) {
            normal = false;
            let actions: Vec<FlowAction> = rule.actions.clone();
            for action in actions {
                match action {
                    FlowAction::SetDstMac(m) => frame.dst_mac = m,
                    FlowAction::SetSrcMac(m) => frame.src_mac = m,
                    FlowAction::Output(p) => outputs.push(p),
                    FlowAction::Normal => normal = true,
                    FlowAction::Drop => {
                        self.dropped += 1;
                        return Vec::new();
                    }
                }
            }
        }
        if normal {
            match self.fdb.get(&frame.dst_mac) {
                Some(&p) if p != in_port => outputs.push(p),
                Some(_) => {
                    // Destination is behind the ingress port: nothing to do.
                }
                None => {
                    // Unknown destination: flood.
                    for p in 0..self.ports as u16 {
                        if PortNo(p) != in_port {
                            outputs.push(PortNo(p));
                        }
                    }
                }
            }
        }
        // Tenant isolation: only emit to ports compatible with the ingress
        // tenant tag (untagged ports are infrastructure and always allowed).
        let in_tenant = self.tenant_tags.get(&in_port).copied();
        let before = outputs.len();
        outputs.retain(|p| match (in_tenant, self.tenant_tags.get(p)) {
            (Some(a), Some(b)) => a == *b,
            _ => true,
        });
        self.dropped += (before - outputs.len()) as u64;
        outputs.into_iter().map(|p| (p, frame.clone())).collect()
    }
}

/// Installs a Figure-3 style steering rule: frames matching `matching` get
/// their destination MAC rewritten to `next_mac` and are then L2-forwarded.
pub fn steering_rule(
    priority: u16,
    matching: crate::flow::FlowMatch,
    next_mac: MacAddr,
) -> FlowRule {
    FlowRule {
        priority,
        matching,
        actions: vec![FlowAction::SetDstMac(next_mac), FlowAction::Normal],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowMatch;
    use crate::frame::{TcpFlags, TcpSegment};
    use bytes::Bytes;
    use std::net::Ipv4Addr;

    fn frame(src: MacAddr, dst: MacAddr) -> Frame {
        Frame {
            src_mac: src,
            dst_mac: dst,
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp: TcpSegment {
                src_port: 1,
                dst_port: 3260,
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                wnd: 0,
                payload: Bytes::new().into(),
            },
            hops: 0,
        }
    }

    #[test]
    fn learning_then_unicast() {
        let mut sw = VirtualSwitch::new("sw", 4);
        let a = MacAddr::nth(1);
        let b = MacAddr::nth(2);
        // Unknown destination: flood to all but ingress.
        let out = sw.process(frame(a, b), PortNo(0));
        assert_eq!(out.len(), 3);
        // B replies from port 2; A is now known on port 0.
        let out = sw.process(frame(b, a), PortNo(2));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortNo(0));
        // Now A -> B is unicast to port 2.
        let out = sw.process(frame(a, b), PortNo(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortNo(2));
    }

    #[test]
    fn steering_rule_rewrites_dst_mac() {
        let mut sw = VirtualSwitch::new("ovs1", 4);
        let vm = MacAddr::nth(1);
        let gw = MacAddr::nth(2);
        let mb = MacAddr::nth(3);
        sw.learn(mb, PortNo(3));
        sw.flows_mut().install(steering_rule(
            10,
            FlowMatch::any().src_mac(vm).dst_mac(gw).dst_port(3260),
            mb,
        ));
        let out = sw.process(frame(vm, gw), PortNo(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortNo(3));
        assert_eq!(out[0].1.dst_mac, mb);
    }

    #[test]
    fn hop_guard_drops_loops() {
        let mut sw = VirtualSwitch::new("sw", 2);
        let mut f = frame(MacAddr::nth(1), MacAddr::nth(2));
        f.hops = Frame::MAX_HOPS;
        assert!(sw.process(f, PortNo(0)).is_empty());
        assert_eq!(sw.dropped(), 1);
    }

    #[test]
    fn tenant_isolation_blocks_cross_tenant() {
        let mut sw = VirtualSwitch::new("sw", 4);
        sw.set_tenant(PortNo(0), 1);
        sw.set_tenant(PortNo(1), 2);
        sw.set_tenant(PortNo(2), 1);
        // Flood from tenant 1: reaches port 2 (tenant 1) and port 3
        // (untagged infra), never port 1 (tenant 2).
        let out = sw.process(frame(MacAddr::nth(1), MacAddr::nth(9)), PortNo(0));
        let ports: Vec<u16> = out.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![2, 3]);
        assert!(sw.dropped() >= 1);
    }

    #[test]
    fn drop_action_drops() {
        let mut sw = VirtualSwitch::new("sw", 2);
        sw.flows_mut().install(FlowRule {
            priority: 10,
            matching: FlowMatch::any().dst_port(3260),
            actions: vec![FlowAction::Drop],
        });
        assert!(sw
            .process(frame(MacAddr::nth(1), MacAddr::nth(2)), PortNo(0))
            .is_empty());
        assert_eq!(sw.dropped(), 1);
    }
}

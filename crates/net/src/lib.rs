//! The simulated network fabric under the StorM cloud.
//!
//! This crate models everything the paper's prototype got from the Linux
//! networking stack and Open vSwitch:
//!
//! * [`Frame`] — Ethernet/IP/TCP frames carrying real payload bytes.
//! * [`VirtualSwitch`] — OVS-like switches with priority [`FlowTable`]s
//!   (match on L2–L4 fields, actions such as `mod_dst_mac`), the mechanism
//!   behind the paper's Figure 3 forwarding plane.
//! * [`Nat`] — iptables-style DNAT/SNAT with connection tracking, used for
//!   the storage-gateway redirection and IP masquerading.
//! * [`Fabric`] — links with latency, bandwidth serialization and per-packet
//!   overhead (the virtio single-thread copy cost is a per-packet link
//!   cost, which is how the paper's "intra-host transfer dominates"
//!   observation is reproduced).
//! * [`tcp`] — a simplified TCP with handshake, cumulative acks and a
//!   finite receive window. Active-relay is split TCP, so ack semantics are
//!   load-bearing for the evaluation.
//! * [`Network`] — the event loop tying hosts, apps and the fabric
//!   together on top of `storm-sim`.
//!
//! # Example: two hosts exchanging bytes through a switch
//!
//! ```
//! use storm_net::{App, Cx, LinkSpec, Network, SockAddr, SockId};
//! use storm_sim::SimTime;
//! use bytes::Bytes;
//!
//! #[derive(Default)]
//! struct Echo;
//! impl App for Echo {
//!     fn on_start(&mut self, cx: &mut Cx<'_>) {
//!         cx.listen(9000);
//!     }
//!     fn on_data(&mut self, cx: &mut Cx<'_>, sock: SockId, data: Bytes) {
//!         cx.send(sock, &data);
//!     }
//! }
//!
//! #[derive(Default)]
//! struct Client { got: usize }
//! impl App for Client {
//!     fn on_start(&mut self, cx: &mut Cx<'_>) {
//!         let sock = cx.connect(SockAddr::new([10, 0, 0, 2].into(), 9000));
//!         let _ = sock;
//!     }
//!     fn on_connected(&mut self, cx: &mut Cx<'_>, sock: SockId) {
//!         cx.send(sock, b"ping");
//!     }
//!     fn on_data(&mut self, _cx: &mut Cx<'_>, _sock: SockId, data: Bytes) {
//!         self.got += data.len();
//!     }
//! }
//!
//! let mut net = Network::new(7);
//! let a = net.add_host("a", 4);
//! let b = net.add_host("b", 4);
//! let ia = net.add_iface(a, [10, 0, 0, 1].into());
//! let ib = net.add_iface(b, [10, 0, 0, 2].into());
//! let sw = net.add_switch("sw", 8);
//! net.link_host_switch(a, ia, sw, LinkSpec::gigabit());
//! net.link_host_switch(b, ib, sw, LinkSpec::gigabit());
//! net.add_app(b, Box::new(Echo));
//! net.add_app(a, Box::new(Client::default()));
//! net.run_until(SimTime::from_nanos(1_000_000_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod engine;
mod fabric;
mod flow;
mod frame;
mod host;
mod nat;
mod switch;
pub mod tcp;
mod util;

pub use addr::{FourTuple, MacAddr, SockAddr};
pub use engine::{App, BusMsg, Cx, Ev, Network, TapVerdict};
pub use fabric::{Endpoint, Fabric, LinkId, LinkSpec};
pub use flow::{FlowAction, FlowMatch, FlowRule, FlowTable};
pub use frame::{Frame, Payload, TcpFlags, TcpSegment};
pub use host::{AppId, CloseReason, Host, HostId, Iface, IfaceId, Route, SteerRule, TapConfig};
pub use nat::{DnatRule, Nat, SnatRule};
pub use switch::{steering_rule, PortNo, SwitchId, VirtualSwitch};
pub use tcp::SockId;
pub use util::SendQueue;

//! iptables-style NAT with connection tracking.
//!
//! StorM's network splicing redirects storage flows through gateway pairs
//! by installing DNAT rules (destination rewrite towards the ingress
//! gateway / egress target) and SNAT masquerading (so storage-network
//! addresses never appear inside the instance network). Connection
//! tracking makes reply packets traverse the inverse transformation
//! automatically — exactly netfilter's behaviour, which the paper's
//! prototype relies on.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use crate::addr::{FourTuple, SockAddr};

/// A destination-NAT rule (PREROUTING): rewrite where a flow is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnatRule {
    /// Match: original destination IP.
    pub match_dst_ip: Ipv4Addr,
    /// Match: original destination port (`None` = any).
    pub match_dst_port: Option<u16>,
    /// Match: source IP (`None` = any).
    pub match_src_ip: Option<Ipv4Addr>,
    /// New destination address.
    pub to: SockAddr,
}

impl DnatRule {
    fn matches(&self, t: &FourTuple) -> bool {
        t.dst.ip == self.match_dst_ip
            && self.match_dst_port.is_none_or(|p| p == t.dst.port)
            && self.match_src_ip.is_none_or(|ip| ip == t.src.ip)
    }
}

/// A source-NAT rule (POSTROUTING): rewrite where a flow appears to come
/// from. `to_ip` with port `None` preserves the source port when it can
/// (IP masquerading); a port that would collide with another tracked
/// flow's translated tuple is reallocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnatRule {
    /// Match: destination IP after DNAT (`None` = any).
    pub match_dst_ip: Option<Ipv4Addr>,
    /// Match: destination port after DNAT (`None` = any).
    pub match_dst_port: Option<u16>,
    /// New source IP.
    pub to_ip: Ipv4Addr,
    /// New source port (`None` keeps the original port).
    pub to_port: Option<u16>,
}

impl SnatRule {
    fn matches(&self, t: &FourTuple) -> bool {
        self.match_dst_ip.is_none_or(|ip| ip == t.dst.ip)
            && self.match_dst_port.is_none_or(|p| p == t.dst.port)
    }
}

#[derive(Debug, Clone, Copy)]
struct NatEntry {
    orig: FourTuple,
    xlat: FourTuple,
}

/// Per-host NAT state: rule lists plus the conntrack table.
#[derive(Debug, Default)]
pub struct Nat {
    dnat: Vec<DnatRule>,
    snat: Vec<SnatRule>,
    // Keyed by both the original tuple (forward direction) and the reversed
    // translated tuple (reply direction). BTreeMap, not HashMap: conntrack
    // sweeps must never depend on hasher state (no-hash-iter invariant).
    forward: BTreeMap<FourTuple, NatEntry>,
    reply: BTreeMap<FourTuple, NatEntry>,
}

impl Nat {
    /// Creates an empty NAT table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a DNAT rule.
    pub fn add_dnat(&mut self, rule: DnatRule) {
        self.dnat.push(rule);
    }

    /// Installs an SNAT rule.
    pub fn add_snat(&mut self, rule: SnatRule) {
        self.snat.push(rule);
    }

    /// Removes DNAT rules equal to `rule`; established flows keep their
    /// conntrack entries (the paper's atomic-attachment step depends on
    /// this: "the removal of NAT rules does not impact established flows").
    pub fn remove_dnat(&mut self, rule: &DnatRule) {
        self.dnat.retain(|r| r != rule);
    }

    /// Removes SNAT rules equal to `rule`.
    pub fn remove_snat(&mut self, rule: &SnatRule) {
        self.snat.retain(|r| r != rule);
    }

    /// Number of live conntrack entries.
    pub fn conntrack_len(&self) -> usize {
        self.forward.len()
    }

    /// Number of installed rules `(dnat, snat)`.
    pub fn rule_counts(&self) -> (usize, usize) {
        (self.dnat.len(), self.snat.len())
    }

    /// Translates a packet tuple, consulting conntrack first and falling
    /// back to rule evaluation for new flows. Returns the tuple the packet
    /// should carry after NAT.
    ///
    /// `is_syn` marks connection-opening packets: only those may create new
    /// conntrack entries, so mid-flow packets of unknown connections pass
    /// untranslated (as in netfilter, where conntrack is keyed on the SYN).
    pub fn translate(&mut self, tuple: FourTuple, is_syn: bool) -> FourTuple {
        // Established flow, forward direction.
        if let Some(e) = self.forward.get(&tuple) {
            return e.xlat;
        }
        // Established flow, reply direction.
        if let Some(e) = self.reply.get(&tuple) {
            return e.orig.reversed();
        }
        if !is_syn {
            return tuple;
        }
        let mut out = tuple;
        for r in &self.dnat {
            if r.matches(&tuple) {
                out.dst = r.to;
                break;
            }
        }
        for r in &self.snat {
            if r.matches(&out) {
                out.src.ip = r.to_ip;
                if let Some(p) = r.to_port {
                    out.src.port = p;
                }
                break;
            }
        }
        if out != tuple {
            // Unique-tuple enforcement, as netfilter's MASQUERADE does: two
            // initiators behind one masquerade can pick the same ephemeral
            // port, and preserving it would collapse their flows into one
            // translated tuple — replies would then un-NAT to whichever
            // flow registered first. Allocate the next free source port.
            while self.reply.contains_key(&out.reversed()) {
                out.src.port = out.src.port.wrapping_add(1).max(1024);
            }
            let entry = NatEntry {
                orig: tuple,
                xlat: out,
            };
            self.forward.insert(tuple, entry);
            self.reply.insert(out.reversed(), entry);
        }
        out
    }

    /// Conntrack-only translation for locally generated packets (the
    /// OUTPUT path): replies of redirected flows are rewritten, but
    /// PREROUTING rules are never evaluated — a middle-box's own upstream
    /// connections must not hit its REDIRECT rule.
    pub fn translate_output(&mut self, tuple: FourTuple) -> FourTuple {
        if let Some(e) = self.forward.get(&tuple) {
            return e.xlat;
        }
        if let Some(e) = self.reply.get(&tuple) {
            return e.orig.reversed();
        }
        tuple
    }

    /// Drops the conntrack entry for `tuple` (either direction), if any.
    pub fn untrack(&mut self, tuple: FourTuple) {
        let entry = self
            .forward
            .get(&tuple)
            .copied()
            .or_else(|| self.reply.get(&tuple).copied());
        if let Some(e) = entry {
            self.forward.remove(&e.orig);
            self.reply.remove(&e.xlat.reversed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(a: u8, p: u16) -> SockAddr {
        SockAddr::new(Ipv4Addr::new(10, 0, 0, a), p)
    }

    #[test]
    fn dnat_then_reply_inverse() {
        let mut nat = Nat::new();
        nat.add_dnat(DnatRule {
            match_dst_ip: Ipv4Addr::new(10, 0, 0, 9),
            match_dst_port: Some(3260),
            match_src_ip: None,
            to: sa(7, 3260),
        });
        let orig = FourTuple::new(sa(1, 40000), sa(9, 3260));
        let fwd = nat.translate(orig, true);
        assert_eq!(fwd.dst, sa(7, 3260));
        assert_eq!(fwd.src, orig.src);
        // Reply from the new destination maps back to the original.
        let reply = nat.translate(fwd.reversed(), false);
        assert_eq!(reply, orig.reversed());
        assert_eq!(nat.conntrack_len(), 1);
    }

    #[test]
    fn masquerade_rewrites_source() {
        let mut nat = Nat::new();
        nat.add_dnat(DnatRule {
            match_dst_ip: Ipv4Addr::new(10, 0, 0, 9),
            match_dst_port: Some(3260),
            match_src_ip: None,
            to: sa(7, 3260),
        });
        nat.add_snat(SnatRule {
            match_dst_ip: Some(Ipv4Addr::new(10, 0, 0, 7)),
            match_dst_port: Some(3260),
            to_ip: Ipv4Addr::new(10, 0, 0, 5),
            to_port: None,
        });
        let orig = FourTuple::new(sa(1, 40000), sa(9, 3260));
        let fwd = nat.translate(orig, true);
        // Both rewrites applied: src masqueraded (port kept), dst redirected.
        assert_eq!(fwd, FourTuple::new(sa(5, 40000), sa(7, 3260)));
        // Round trip through the reply direction restores everything.
        let back = nat.translate(fwd.reversed(), false);
        assert_eq!(back, orig.reversed());
    }

    #[test]
    fn masquerade_collision_allocates_fresh_port() {
        let mut nat = Nat::new();
        nat.add_dnat(DnatRule {
            match_dst_ip: Ipv4Addr::new(10, 0, 0, 9),
            match_dst_port: Some(3260),
            match_src_ip: None,
            to: sa(7, 3260),
        });
        nat.add_snat(SnatRule {
            match_dst_ip: Some(Ipv4Addr::new(10, 0, 0, 7)),
            match_dst_port: Some(3260),
            to_ip: Ipv4Addr::new(10, 0, 0, 5),
            to_port: None,
        });
        // Two initiators on different hosts, same ephemeral port.
        let a = FourTuple::new(sa(1, 40000), sa(9, 3260));
        let b = FourTuple::new(sa(2, 40000), sa(9, 3260));
        let fwd_a = nat.translate(a, true);
        let fwd_b = nat.translate(b, true);
        assert_eq!(fwd_a, FourTuple::new(sa(5, 40000), sa(7, 3260)));
        assert_ne!(
            fwd_a, fwd_b,
            "colliding masqueraded flows must get distinct tuples"
        );
        assert_eq!(fwd_b.src.ip, Ipv4Addr::new(10, 0, 0, 5));
        // Replies on each translated tuple un-NAT to their own flow.
        assert_eq!(nat.translate(fwd_a.reversed(), false), a.reversed());
        assert_eq!(nat.translate(fwd_b.reversed(), false), b.reversed());
        assert_eq!(nat.conntrack_len(), 2);
    }

    #[test]
    fn rule_removal_keeps_established_flows() {
        let mut nat = Nat::new();
        let rule = DnatRule {
            match_dst_ip: Ipv4Addr::new(10, 0, 0, 9),
            match_dst_port: None,
            match_src_ip: None,
            to: sa(7, 3260),
        };
        nat.add_dnat(rule);
        let orig = FourTuple::new(sa(1, 40000), sa(9, 3260));
        let fwd = nat.translate(orig, true);
        nat.remove_dnat(&rule);
        assert_eq!(nat.rule_counts(), (0, 0));
        // Established flow still translated via conntrack.
        assert_eq!(nat.translate(orig, false), fwd);
        // A *new* flow (different source port) is no longer translated.
        let fresh = FourTuple::new(sa(1, 40001), sa(9, 3260));
        assert_eq!(nat.translate(fresh, true), fresh);
    }

    #[test]
    fn non_syn_unknown_flows_pass_untranslated() {
        let mut nat = Nat::new();
        nat.add_dnat(DnatRule {
            match_dst_ip: Ipv4Addr::new(10, 0, 0, 9),
            match_dst_port: None,
            match_src_ip: None,
            to: sa(7, 1),
        });
        let t = FourTuple::new(sa(1, 2), sa(9, 3));
        assert_eq!(nat.translate(t, false), t);
        assert_eq!(nat.conntrack_len(), 0);
    }

    #[test]
    fn untrack_removes_both_directions() {
        let mut nat = Nat::new();
        nat.add_dnat(DnatRule {
            match_dst_ip: Ipv4Addr::new(10, 0, 0, 9),
            match_dst_port: None,
            match_src_ip: None,
            to: sa(7, 3260),
        });
        let orig = FourTuple::new(sa(1, 40000), sa(9, 3260));
        let fwd = nat.translate(orig, true);
        nat.untrack(fwd.reversed());
        assert_eq!(nat.conntrack_len(), 0);
    }

    #[test]
    fn src_ip_scoped_dnat() {
        let mut nat = Nat::new();
        nat.add_dnat(DnatRule {
            match_dst_ip: Ipv4Addr::new(10, 0, 0, 9),
            match_dst_port: Some(3260),
            match_src_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
            to: sa(7, 3260),
        });
        let hit = FourTuple::new(sa(1, 1000), sa(9, 3260));
        let miss = FourTuple::new(sa(2, 1000), sa(9, 3260));
        assert_eq!(nat.translate(hit, true).dst, sa(7, 3260));
        assert_eq!(nat.translate(miss, true), miss);
    }
}

//! OpenFlow-style match/action flow tables.
//!
//! StorM's SDN controller steers storage flows through middle-box chains by
//! installing rules like the ones in the paper's Figure 3:
//!
//! ```text
//! Matching rules: src: ovs1_mac:vm1_port, dst: ovs2_mac:3260
//! Actions:        mod_dst_mac: ovs2_mac -> mb1_mac
//! ```
//!
//! [`FlowMatch`] expresses the (wildcard-able) match fields, [`FlowAction`]
//! the rewrite/output actions, and [`FlowTable`] performs priority-ordered
//! lookup.

use std::net::Ipv4Addr;

use crate::addr::MacAddr;
use crate::frame::Frame;
use crate::switch::PortNo;

/// Match fields; `None` wildcards a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Source MAC.
    pub src_mac: Option<MacAddr>,
    /// Destination MAC.
    pub dst_mac: Option<MacAddr>,
    /// Source IPv4.
    pub src_ip: Option<Ipv4Addr>,
    /// Destination IPv4.
    pub dst_ip: Option<Ipv4Addr>,
    /// TCP source port.
    pub src_port: Option<u16>,
    /// TCP destination port.
    pub dst_port: Option<u16>,
}

impl FlowMatch {
    /// A match with every field wildcarded (matches everything).
    pub fn any() -> Self {
        Self::default()
    }

    /// Restricts to an ingress port.
    pub fn in_port(mut self, p: PortNo) -> Self {
        self.in_port = Some(p);
        self
    }

    /// Restricts the source MAC.
    pub fn src_mac(mut self, m: MacAddr) -> Self {
        self.src_mac = Some(m);
        self
    }

    /// Restricts the destination MAC.
    pub fn dst_mac(mut self, m: MacAddr) -> Self {
        self.dst_mac = Some(m);
        self
    }

    /// Restricts the source IP.
    pub fn src_ip(mut self, ip: Ipv4Addr) -> Self {
        self.src_ip = Some(ip);
        self
    }

    /// Restricts the destination IP.
    pub fn dst_ip(mut self, ip: Ipv4Addr) -> Self {
        self.dst_ip = Some(ip);
        self
    }

    /// Restricts the TCP source port.
    pub fn src_port(mut self, p: u16) -> Self {
        self.src_port = Some(p);
        self
    }

    /// Restricts the TCP destination port.
    pub fn dst_port(mut self, p: u16) -> Self {
        self.dst_port = Some(p);
        self
    }

    /// Whether `frame` arriving on `port` satisfies this match.
    pub fn matches(&self, frame: &Frame, port: PortNo) -> bool {
        self.in_port.is_none_or(|p| p == port)
            && self.src_mac.is_none_or(|m| m == frame.src_mac)
            && self.dst_mac.is_none_or(|m| m == frame.dst_mac)
            && self.src_ip.is_none_or(|ip| ip == frame.src_ip)
            && self.dst_ip.is_none_or(|ip| ip == frame.dst_ip)
            && self.src_port.is_none_or(|p| p == frame.tcp.src_port)
            && self.dst_port.is_none_or(|p| p == frame.tcp.dst_port)
    }
}

/// An action applied to a matched frame, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowAction {
    /// Rewrite the destination MAC (`mod_dst_mac`), the paper's steering
    /// primitive.
    SetDstMac(MacAddr),
    /// Rewrite the source MAC.
    SetSrcMac(MacAddr),
    /// Emit on a specific port.
    Output(PortNo),
    /// Fall back to normal L2 forwarding (MAC learning table).
    Normal,
    /// Drop the frame.
    Drop,
}

/// A prioritized flow rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRule {
    /// Higher priorities are evaluated first.
    pub priority: u16,
    /// Match fields.
    pub matching: FlowMatch,
    /// Actions applied on match.
    pub actions: Vec<FlowAction>,
}

/// A priority-ordered flow table with per-rule hit counters.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    rules: Vec<(FlowRule, u64)>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule; rules of equal priority keep insertion order.
    pub fn install(&mut self, rule: FlowRule) {
        let pos = self
            .rules
            .partition_point(|(r, _)| r.priority >= rule.priority);
        self.rules.insert(pos, (rule, 0));
    }

    /// Removes all rules whose match equals `matching` exactly. Returns the
    /// number removed.
    pub fn remove(&mut self, matching: &FlowMatch) -> usize {
        let before = self.rules.len();
        self.rules.retain(|(r, _)| r.matching != *matching);
        before - self.rules.len()
    }

    /// Finds the highest-priority rule matching `frame` on `port`,
    /// incrementing its hit counter.
    pub fn lookup(&mut self, frame: &Frame, port: PortNo) -> Option<&FlowRule> {
        for (rule, hits) in &mut self.rules {
            if rule.matching.matches(frame, port) {
                *hits += 1;
                return Some(rule);
            }
        }
        None
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over rules with their hit counts (priority order).
    pub fn iter(&self) -> impl Iterator<Item = (&FlowRule, u64)> {
        self.rules.iter().map(|(r, h)| (r, *h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{TcpFlags, TcpSegment};
    use bytes::Bytes;

    fn frame(dst_port: u16) -> Frame {
        Frame {
            src_mac: MacAddr::nth(1),
            dst_mac: MacAddr::nth(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp: TcpSegment {
                src_port: 5555,
                dst_port,
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                wnd: 0,
                payload: Bytes::new().into(),
            },
            hops: 0,
        }
    }

    #[test]
    fn wildcard_match_matches_everything() {
        assert!(FlowMatch::any().matches(&frame(80), PortNo(3)));
    }

    #[test]
    fn field_mismatch_fails() {
        let m = FlowMatch::any().dst_port(3260).src_mac(MacAddr::nth(1));
        assert!(m.matches(&frame(3260), PortNo(0)));
        assert!(!m.matches(&frame(80), PortNo(0)));
        let m2 = m.in_port(PortNo(7));
        assert!(!m2.matches(&frame(3260), PortNo(0)));
        assert!(m2.matches(&frame(3260), PortNo(7)));
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.install(FlowRule {
            priority: 1,
            matching: FlowMatch::any(),
            actions: vec![FlowAction::Normal],
        });
        t.install(FlowRule {
            priority: 10,
            matching: FlowMatch::any().dst_port(3260),
            actions: vec![FlowAction::SetDstMac(MacAddr::nth(9)), FlowAction::Normal],
        });
        let hit = t.lookup(&frame(3260), PortNo(0)).unwrap();
        assert_eq!(hit.priority, 10);
        let miss = t.lookup(&frame(80), PortNo(0)).unwrap();
        assert_eq!(miss.priority, 1);
        let hits: Vec<u64> = t.iter().map(|(_, h)| h).collect();
        assert_eq!(hits, vec![1, 1]);
    }

    #[test]
    fn remove_by_match() {
        let mut t = FlowTable::new();
        let m = FlowMatch::any().dst_port(3260);
        t.install(FlowRule {
            priority: 5,
            matching: m,
            actions: vec![FlowAction::Drop],
        });
        t.install(FlowRule {
            priority: 0,
            matching: FlowMatch::any(),
            actions: vec![FlowAction::Normal],
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(&m), 1);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_returns_none() {
        let mut t = FlowTable::new();
        assert!(t.lookup(&frame(80), PortNo(0)).is_none());
    }
}

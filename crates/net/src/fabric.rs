//! Links, endpoints and the physical wiring graph.
//!
//! A [`Link`] connects two [`Endpoint`]s (host interfaces or switch ports)
//! and models three costs per direction:
//!
//! * propagation latency,
//! * serialization at the link's bandwidth (frames queue FIFO), and
//! * a fixed per-packet overhead.
//!
//! The per-packet overhead is how virtio vifs are modelled: the paper notes
//! the hypervisor "uses a single thread per VM's virtual interface", so a
//! VM-facing link with a few microseconds of per-packet cost reproduces the
//! observation that intra-host packet transfer dominates routing overhead.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use storm_sim::{FaultAction, FaultHook, FaultSite, SerialResource, SimDuration, SimTime};

use crate::addr::MacAddr;
use crate::frame::Frame;
use crate::host::{HostId, IfaceId};
use crate::switch::{PortNo, SwitchId, VirtualSwitch};

/// Index of a link within the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A host NIC / vif.
    Host {
        /// Host owning the interface.
        host: HostId,
        /// Interface on that host.
        iface: IfaceId,
    },
    /// A switch port.
    Switch {
        /// The switch.
        sw: SwitchId,
        /// Port on that switch.
        port: PortNo,
    },
}

/// Performance parameters of a link (applied per direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bits per second; `0` means unlimited.
    pub bandwidth_bps: u64,
    /// Fixed per-packet processing cost (serialized with transmission).
    pub per_packet: SimDuration,
    /// Both directions share one queue (a virtio vif's single vhost
    /// worker thread copies rx and tx packets alike, so acks contend with
    /// data — the root of the paper's "intra-host packet transfer
    /// contributes more to the routing overhead" observation).
    pub half_duplex: bool,
}

impl LinkSpec {
    /// A 1 GbE physical link: 5 µs propagation (NIC + switch port), 1 Gbps.
    pub fn gigabit() -> Self {
        LinkSpec {
            latency: SimDuration::from_nanos(500), // cut-through ToR switch
            bandwidth_bps: 1_000_000_000,
            per_packet: SimDuration::from_nanos(300),
            half_duplex: false,
        }
    }

    /// A virtio vif: short latency, memory-speed copy, but a heavy
    /// single-threaded per-packet copy cost — the paper: "the
    /// virtualization driver, for copying network packets, is less
    /// efficient — it uses a single thread per VM's virtual interface and
    /// usually causes high CPU utilization".
    pub fn virtio() -> Self {
        LinkSpec {
            latency: SimDuration::from_nanos(500),
            bandwidth_bps: 8_000_000_000,
            per_packet: SimDuration::from_micros(7),
            half_duplex: true,
        }
    }

    /// An ideal link for unit tests: zero cost everywhere.
    pub fn instant() -> Self {
        LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 0,
            per_packet: SimDuration::ZERO,
            half_duplex: false,
        }
    }

    /// An inter-rack (cross-partition) uplink: 10 Gbps with spine-hop
    /// propagation. Sharded fleet runs partition the topology at links
    /// like this one, so its latency doubles as the sharding lookahead.
    pub fn inter_rack() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(5), // ToR → spine → ToR
            bandwidth_bps: 10_000_000_000,
            per_packet: SimDuration::from_nanos(100),
            half_duplex: false,
        }
    }

    /// The conservative-sync lookahead this link affords a sharded
    /// executor: nothing sent across it can take effect on the far side
    /// sooner than its one-way propagation latency. Zero-latency links
    /// afford none and must stay inside one shard.
    pub fn lookahead(&self) -> SimDuration {
        self.latency
    }
}

/// A bidirectional link with independent per-direction queues (full duplex).
#[derive(Debug)]
pub struct Link {
    ends: [Endpoint; 2],
    spec: LinkSpec,
    queues: [SerialResource; 2],
    up: bool,
    frames: u64,
    bytes: u64,
}

impl Link {
    /// Total frames carried.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total payload+header bytes carried.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the link is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The link's endpoints.
    pub fn ends(&self) -> [Endpoint; 2] {
        self.ends
    }
}

/// A frame in flight: where and when it will arrive.
#[derive(Debug)]
pub struct Delivery {
    /// Arrival instant.
    pub at: SimTime,
    /// Receiving endpoint.
    pub to: Endpoint,
    /// The frame.
    pub frame: Frame,
}

/// The wiring graph: switches, links and the (static) ARP map.
#[derive(Debug, Default)]
pub struct Fabric {
    switches: Vec<VirtualSwitch>,
    links: Vec<Link>,
    switch_port_links: HashMap<(SwitchId, PortNo), LinkId>,
    arp: HashMap<Ipv4Addr, MacAddr>,
    dropped: u64,
    fault: FaultHook,
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a switch, returning its id.
    pub fn add_switch(&mut self, sw: VirtualSwitch) -> SwitchId {
        self.switches.push(sw);
        SwitchId(self.switches.len() as u32 - 1)
    }

    /// Access a switch.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut VirtualSwitch {
        &mut self.switches[id.0 as usize]
    }

    /// Read access to a switch.
    pub fn switch(&self, id: SwitchId) -> &VirtualSwitch {
        &self.switches[id.0 as usize]
    }

    /// Wires two endpoints together.
    ///
    /// # Panics
    ///
    /// Panics if a switch port is already wired.
    pub fn add_link(&mut self, a: Endpoint, b: Endpoint, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        for end in [a, b] {
            if let Endpoint::Switch { sw, port } = end {
                let prev = self.switch_port_links.insert((sw, port), id);
                assert!(prev.is_none(), "switch port {sw}:{port} wired twice");
            }
        }
        self.links.push(Link {
            ends: [a, b],
            spec,
            queues: [SerialResource::new(), SerialResource::new()],
            up: true,
            frames: 0,
            bytes: 0,
        });
        id
    }

    /// Registers a static ARP binding (built automatically as interfaces
    /// are added).
    pub fn set_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp.insert(ip, mac);
    }

    /// Resolves an IP to a MAC.
    pub fn arp(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.arp.get(&ip).copied()
    }

    /// Takes a link down (fault injection); in-flight frames still arrive,
    /// new sends are dropped.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        self.links[id.0 as usize].up = up;
    }

    /// Read access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Number of links in the fabric (link ids are `0..count`).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The smallest [`LinkSpec::lookahead`] over every link, or `None`
    /// for an empty fabric. A sharded executor that may cut the topology
    /// at *any* link must bound its rounds by this; partitioning only at
    /// high-latency inter-rack links (the intended cut) lets it use those
    /// links' larger lookahead instead.
    pub fn min_link_lookahead(&self) -> Option<SimDuration> {
        self.links.iter().map(|l| l.spec.lookahead()).min()
    }

    /// The link wired to a switch port, if any.
    pub fn link_at(&self, sw: SwitchId, port: PortNo) -> Option<LinkId> {
        self.switch_port_links.get(&(sw, port)).copied()
    }

    /// Arms (or, with an unarmed hook, clears) the fabric's fault hook.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault = hook;
    }

    /// Frames dropped by the fabric (down links, unwired ports).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Transmits `frame` from endpoint `from` over link `id`, returning the
    /// resulting delivery, or `None` if the frame is dropped.
    pub fn transmit(
        &mut self,
        id: LinkId,
        from: Endpoint,
        frame: Frame,
        now: SimTime,
    ) -> Option<Delivery> {
        // Fault injection: an armed plan may drop or delay the frame.
        let extra_latency = match self
            .fault
            .decide(now, FaultSite::LinkTransmit { link: id.0 })
        {
            FaultAction::Proceed => SimDuration::ZERO,
            FaultAction::Drop | FaultAction::Fail => {
                self.dropped += 1;
                return None;
            }
            FaultAction::Delay(d) => d,
        };
        let link = &mut self.links[id.0 as usize];
        if !link.up {
            self.dropped += 1;
            return None;
        }
        let dir = if link.ends[0] == from {
            0
        } else if link.ends[1] == from {
            1
        } else {
            self.dropped += 1;
            return None;
        };
        let to = link.ends[1 - dir];
        // Control frames (bare acks) copy far less than full data packets.
        let per_packet = if frame.tcp.payload.is_empty() {
            link.spec.per_packet / 4
        } else {
            link.spec.per_packet
        };
        let occupancy =
            per_packet + SimDuration::transmission(frame.wire_len(), link.spec.bandwidth_bps);
        let queue = if link.spec.half_duplex { 0 } else { dir };
        let done = link.queues[queue].serve(now, occupancy);
        link.frames += 1;
        link.bytes += frame.wire_len() as u64;
        Some(Delivery {
            at: done + link.spec.latency + extra_latency,
            to,
            frame,
        })
    }

    /// Runs switch forwarding for a frame arriving at `sw` on `port` and
    /// transmits the results, returning all onward deliveries.
    pub fn switch_input(
        &mut self,
        sw: SwitchId,
        port: PortNo,
        frame: Frame,
        now: SimTime,
    ) -> Vec<Delivery> {
        let outputs = self.switches[sw.0 as usize].process(frame, port);
        let mut deliveries = Vec::with_capacity(outputs.len());
        for (out_port, f) in outputs {
            match self.link_at(sw, out_port) {
                Some(link) => {
                    let from = Endpoint::Switch { sw, port: out_port };
                    if let Some(d) = self.transmit(link, from, f, now) {
                        deliveries.push(d);
                    }
                }
                None => self.dropped += 1,
            }
        }
        deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{TcpFlags, TcpSegment};
    use bytes::Bytes;

    fn frame(bytes: usize) -> Frame {
        Frame {
            src_mac: MacAddr::nth(1),
            dst_mac: MacAddr::nth(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp: TcpSegment {
                src_port: 1,
                dst_port: 2,
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                wnd: 0,
                payload: Bytes::from(vec![0u8; bytes]).into(),
            },
            hops: 0,
        }
    }

    fn host_end(h: u32, i: u32) -> Endpoint {
        Endpoint::Host {
            host: HostId(h),
            iface: IfaceId(i),
        }
    }

    #[test]
    fn transmit_accounts_latency_and_serialization() {
        let mut f = Fabric::new();
        let spec = LinkSpec {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 1_000_000_000,
            per_packet: SimDuration::ZERO,
            half_duplex: false,
        };
        let l = f.add_link(host_end(0, 0), host_end(1, 0), spec);
        // 1446-byte payload + 54 header = 1500 bytes = 12 us at 1 Gbps.
        let d = f
            .transmit(l, host_end(0, 0), frame(1446), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.at.as_micros(), 112);
        assert_eq!(d.to, host_end(1, 0));
        // Second frame queues behind the first (FIFO serialization).
        let d2 = f
            .transmit(l, host_end(0, 0), frame(1446), SimTime::ZERO)
            .unwrap();
        assert_eq!(d2.at.as_micros(), 124);
        // Reverse direction has its own queue (full duplex).
        let d3 = f
            .transmit(l, host_end(1, 0), frame(1446), SimTime::ZERO)
            .unwrap();
        assert_eq!(d3.at.as_micros(), 112);
        assert_eq!(f.link(l).frames(), 3);
        assert_eq!(f.link(l).bytes(), 3 * 1500);
    }

    #[test]
    fn lookahead_tracks_the_slowest_safe_cut() {
        let mut f = Fabric::new();
        assert_eq!(f.min_link_lookahead(), None);
        f.add_link(host_end(0, 0), host_end(1, 0), LinkSpec::inter_rack());
        assert_eq!(
            f.min_link_lookahead(),
            Some(SimDuration::from_micros(5)),
            "inter-rack propagation is the lookahead"
        );
        // A fast intra-rack link tightens the bound for arbitrary cuts.
        f.add_link(host_end(1, 0), host_end(2, 0), LinkSpec::gigabit());
        assert_eq!(f.min_link_lookahead(), Some(SimDuration::from_nanos(500)));
        assert_eq!(
            LinkSpec::inter_rack().lookahead(),
            LinkSpec::inter_rack().latency
        );
    }

    #[test]
    fn down_link_drops() {
        let mut f = Fabric::new();
        let l = f.add_link(host_end(0, 0), host_end(1, 0), LinkSpec::instant());
        f.set_link_up(l, false);
        assert!(!f.link(l).is_up());
        assert!(f
            .transmit(l, host_end(0, 0), frame(10), SimTime::ZERO)
            .is_none());
        assert_eq!(f.dropped(), 1);
        f.set_link_up(l, true);
        assert!(f
            .transmit(l, host_end(0, 0), frame(10), SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn switch_input_forwards_via_learned_port() {
        let mut f = Fabric::new();
        let sw = f.add_switch(VirtualSwitch::new("sw", 4));
        let la = f.add_link(
            host_end(0, 0),
            Endpoint::Switch {
                sw,
                port: PortNo(0),
            },
            LinkSpec::instant(),
        );
        let _lb = f.add_link(
            host_end(1, 0),
            Endpoint::Switch {
                sw,
                port: PortNo(1),
            },
            LinkSpec::instant(),
        );
        assert_eq!(f.link_at(sw, PortNo(0)), Some(la));
        f.switch_mut(sw).learn(MacAddr::nth(2), PortNo(1));
        let deliveries = f.switch_input(sw, PortNo(0), frame(100), SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].to, host_end(1, 0));
    }

    #[test]
    fn unwired_flood_ports_count_drops() {
        let mut f = Fabric::new();
        let sw = f.add_switch(VirtualSwitch::new("sw", 3));
        f.add_link(
            host_end(0, 0),
            Endpoint::Switch {
                sw,
                port: PortNo(0),
            },
            LinkSpec::instant(),
        );
        // Unknown destination floods to ports 1 and 2, neither wired.
        let deliveries = f.switch_input(sw, PortNo(0), frame(10), SimTime::ZERO);
        assert!(deliveries.is_empty());
        assert_eq!(f.dropped(), 2);
    }

    #[test]
    fn arp_registry() {
        let mut f = Fabric::new();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        assert_eq!(f.arp(ip), None);
        f.set_arp(ip, MacAddr::nth(5));
        assert_eq!(f.arp(ip), Some(MacAddr::nth(5)));
    }
}

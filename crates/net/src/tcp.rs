//! A simplified TCP: handshake, cumulative acks, finite windows.
//!
//! The model keeps exactly the mechanisms StorM's evaluation depends on:
//!
//! * **Per-segment acknowledgements** and a **finite receive window** — the
//!   active-relay's benefit is shortening the ack path (split TCP), which
//!   only exists if senders stall on unacked data.
//! * **Receiver pause/resume** — the active-relay's bounded persistence
//!   buffer exerts backpressure by shrinking the advertised window.
//! * **Graceful close and reset** — replica failure in the replication
//!   service is "closing the iSCSI connection" (the paper's fault
//!   injection).
//!
//! Loss and retransmission are not modelled: the simulated fabric delivers
//! reliably and in order (failures abort connections instead), matching a
//! healthy datacenter storage network.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use bytes::Bytes;

use crate::addr::{FourTuple, SockAddr};
use crate::frame::{Payload, TcpFlags, TcpSegment};
use crate::host::AppId;

/// Per-host socket identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(pub u32);

impl fmt::Display for SockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sock{}", self.0)
    }
}

/// Why a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseKind {
    /// FIN exchange completed.
    Graceful,
    /// RST received or connection aborted.
    Reset,
}

/// Tuning knobs for the stack.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment payload bytes (1448 ≈ 1500 MTU minus headers).
    pub mss: usize,
    /// Receive window capacity in bytes.
    pub rcv_wnd: u32,
    /// Send buffer capacity in bytes.
    pub snd_buf: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            rcv_wnd: 256 * 1024,
            snd_buf: 1024 * 1024,
        }
    }
}

/// A segment to put on the wire, with its (already local-to-remote) tuple.
#[derive(Debug, Clone)]
pub struct OutSeg {
    /// src = this host's endpoint, dst = the remote endpoint.
    pub tuple: FourTuple,
    /// The segment.
    pub seg: TcpSegment,
}

/// An upcall for the owning application, to be dispatched by the engine.
#[derive(Debug, Clone)]
pub enum TcpEvent {
    /// Active open completed.
    Connected(SockId),
    /// Active open failed (RST during handshake).
    ConnectFailed(SockId),
    /// Passive open completed on the listener at `port`.
    Accepted {
        /// Listening port that accepted.
        port: u16,
        /// The new connection.
        sock: SockId,
    },
    /// In-order payload arrived.
    Data {
        /// Receiving socket.
        sock: SockId,
        /// The bytes.
        data: Bytes,
    },
    /// Send-buffer space opened up after a previous short write.
    Writable(SockId),
    /// The connection ended.
    Closed {
        /// The socket.
        sock: SockId,
        /// Graceful or reset.
        kind: CloseKind,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    SynSent,
    SynRcvd,
    Established,
    FinSent,
}

#[derive(Debug)]
struct Tcb {
    local: SockAddr,
    remote: SockAddr,
    app: AppId,
    state: State,
    accepted_on: Option<u16>,
    // Send side.
    snd_una: u64,
    snd_nxt: u64,
    snd_buf: VecDeque<Bytes>,
    snd_buf_len: usize,
    peer_wnd: u32,
    wants_writable: bool,
    // Receive side.
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Payload>,
    paused: bool,
    rcv_buf: VecDeque<Bytes>,
    rcv_buf_len: usize,
}

impl Tcb {
    fn key(&self) -> FourTuple {
        FourTuple::new(self.local, self.remote)
    }
    fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }
}

/// Counters exposed for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpCounters {
    /// Segments fed to [`TcpStack::input`].
    pub segs_in: u64,
    /// Segments produced.
    pub segs_out: u64,
    /// Payload bytes delivered to applications.
    pub bytes_delivered: u64,
    /// RSTs sent in response to segments with no matching connection.
    pub rst_sent: u64,
}

/// The per-host TCP stack.
#[derive(Debug)]
pub struct TcpStack {
    config: TcpConfig,
    conns: HashMap<u32, Tcb>,
    by_tuple: HashMap<FourTuple, u32>,
    listeners: HashMap<u16, AppId>,
    next_sock: u32,
    next_port: u16,
    counters: TcpCounters,
}

impl TcpStack {
    /// Creates a stack with the given configuration.
    pub fn new(config: TcpConfig) -> Self {
        TcpStack {
            config,
            conns: HashMap::new(),
            by_tuple: HashMap::new(),
            listeners: HashMap::new(),
            next_sock: 1,
            next_port: 40_000,
            counters: TcpCounters::default(),
        }
    }

    /// Stack-wide counters.
    pub fn counters(&self) -> TcpCounters {
        self.counters
    }

    /// The stack's configuration.
    pub fn config(&self) -> TcpConfig {
        self.config
    }

    /// Changes the maximum segment size (e.g. 16 KiB to model TSO/GSO:
    /// segmentation offload hands the vif large frames, so per-packet copy
    /// costs amortize — the active relay's "TCP handler packs several
    /// packets together for each copy").
    pub fn set_mss(&mut self, mss: usize) {
        assert!(mss >= 512, "mss too small");
        self.config.mss = mss;
    }

    /// Starts listening on `port` for `app`.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound (a configuration error in
    /// experiment setup).
    pub fn listen(&mut self, app: AppId, port: u16) {
        let prev = self.listeners.insert(port, app);
        assert!(prev.is_none(), "port {port} already bound");
    }

    /// Opens a connection from `local_ip` to `remote`, returning the new
    /// socket and the SYN to transmit.
    pub fn connect(
        &mut self,
        app: AppId,
        local_ip: std::net::Ipv4Addr,
        remote: SockAddr,
    ) -> (SockId, OutSeg) {
        self.connect_from(app, local_ip, remote, None)
    }

    /// Like [`TcpStack::connect`] but with an explicit source port
    /// (`None` = ephemeral). StorM's active-relay pseudo-client binds the
    /// original flow's source port so the SDN chain rules, which match on
    /// ports (Figure 3), keep applying across the split connection.
    ///
    /// # Panics
    ///
    /// Panics if the requested source port is already used for the same
    /// remote endpoint.
    pub fn connect_from(
        &mut self,
        app: AppId,
        local_ip: std::net::Ipv4Addr,
        remote: SockAddr,
        src_port: Option<u16>,
    ) -> (SockId, OutSeg) {
        let port = match src_port {
            Some(p) => {
                let key = FourTuple::new(SockAddr::new(local_ip, p), remote);
                assert!(
                    !self.by_tuple.contains_key(&key),
                    "source port {p} already in use towards {remote}"
                );
                p
            }
            None => {
                // Allocate an ephemeral source port.
                let mut port = self.next_port;
                loop {
                    let key = FourTuple::new(SockAddr::new(local_ip, port), remote);
                    if !self.by_tuple.contains_key(&key) {
                        break;
                    }
                    port = port.wrapping_add(1).max(40_000);
                }
                self.next_port = port.wrapping_add(1).max(40_000);
                port
            }
        };
        let local = SockAddr::new(local_ip, port);
        let sid = self.next_sock;
        self.next_sock += 1;
        let tcb = Tcb {
            local,
            remote,
            app,
            state: State::SynSent,
            accepted_on: None,
            snd_una: 0,
            snd_nxt: 0,
            snd_buf: VecDeque::new(),
            snd_buf_len: 0,
            peer_wnd: self.config.rcv_wnd,
            wants_writable: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            paused: false,
            rcv_buf: VecDeque::new(),
            rcv_buf_len: 0,
        };
        let key = tcb.key();
        self.by_tuple.insert(key, sid);
        self.conns.insert(sid, tcb);
        self.counters.segs_out += 1;
        let syn = OutSeg {
            tuple: key,
            seg: TcpSegment {
                src_port: local.port,
                dst_port: remote.port,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                wnd: self.config.rcv_wnd,
                payload: Payload::empty(),
            },
        };
        (SockId(sid), syn)
    }

    /// The `(local, remote)` tuple of a socket, if it exists.
    ///
    /// Connection attribution reads the initiator's source port here — the
    /// paper's "modified iSCSI Login Session code to expose TCP connection
    /// information".
    pub fn tuple_of(&self, sock: SockId) -> Option<FourTuple> {
        self.conns.get(&sock.0).map(|t| t.key())
    }

    /// Owning app of a socket.
    pub fn app_of(&self, sock: SockId) -> Option<AppId> {
        self.conns.get(&sock.0).map(|t| t.app)
    }

    /// Queues up to `data.len()` bytes for sending; returns `(accepted,
    /// segments to transmit)`. Copying wrapper over
    /// [`TcpStack::send_bytes`].
    pub fn send(&mut self, sock: SockId, data: &[u8]) -> (usize, Vec<OutSeg>) {
        // storm-lint: allow(no-hot-path-copy): documented copying
        // wrapper; the datapath uses send_bytes/send_chunks.
        self.send_bytes(sock, Bytes::copy_from_slice(data))
    }

    /// Queues a refcounted chunk for sending without copying; returns
    /// `(accepted, segments to transmit)`.
    ///
    /// The accepted prefix is stored as a view of `data`'s backing
    /// storage; segments are cut at chunk boundaries so their payloads
    /// stay views too. This is the zero-copy half of the split-TCP relay:
    /// forwarded PDUs travel from the receive side's reassembler to the
    /// peer's receive buffer as slices of one allocation.
    pub fn send_bytes(&mut self, sock: SockId, data: Bytes) -> (usize, Vec<OutSeg>) {
        let Some(tcb) = self.conns.get_mut(&sock.0) else {
            return (0, Vec::new());
        };
        if !matches!(
            tcb.state,
            State::Established | State::SynSent | State::SynRcvd
        ) {
            return (0, Vec::new());
        }
        let space = self.config.snd_buf.saturating_sub(tcb.snd_buf_len);
        let n = space.min(data.len());
        if n > 0 {
            let chunk = data.slice(..n);
            tcb.snd_buf_len += n;
            push_joined(&mut tcb.snd_buf, chunk);
        }
        if n < data.len() {
            tcb.wants_writable = true;
        }
        let out = if tcb.state == State::Established {
            Self::pump(&mut self.counters, self.config, tcb)
        } else {
            Vec::new() // flushed when the handshake completes
        };
        (n, out)
    }

    /// Drains as many whole or partial chunks from `chunks` into the send
    /// buffer as there is space, then pumps **once**; returns `(accepted,
    /// segments to transmit)`.
    ///
    /// Batching matters for packetization: queueing a PDU's header chunk
    /// and data chunk before cutting segments lets one full-MSS frame
    /// carry both (scatter-gather), instead of flushing the 48-byte
    /// header as its own packet.
    pub fn send_chunks(
        &mut self,
        sock: SockId,
        chunks: &mut VecDeque<Bytes>,
    ) -> (usize, Vec<OutSeg>) {
        let Some(tcb) = self.conns.get_mut(&sock.0) else {
            return (0, Vec::new());
        };
        if !matches!(
            tcb.state,
            State::Established | State::SynSent | State::SynRcvd
        ) {
            return (0, Vec::new());
        }
        let mut accepted = 0;
        loop {
            let space = self.config.snd_buf.saturating_sub(tcb.snd_buf_len);
            if space == 0 {
                break;
            }
            let Some(front) = chunks.front_mut() else {
                break;
            };
            let chunk = if front.len() <= space {
                match chunks.pop_front() {
                    Some(c) => c,
                    None => break, // front_mut saw it; defensive anyway
                }
            } else {
                let c = front.slice(..space);
                front.advance(space);
                c
            };
            let n = chunk.len();
            tcb.snd_buf_len += n;
            accepted += n;
            push_joined(&mut tcb.snd_buf, chunk);
        }
        if !chunks.is_empty() {
            tcb.wants_writable = true;
        }
        let out = if tcb.state == State::Established {
            Self::pump(&mut self.counters, self.config, tcb)
        } else {
            Vec::new() // flushed when the handshake completes
        };
        (accepted, out)
    }

    /// Free space in the send buffer.
    pub fn send_capacity(&self, sock: SockId) -> usize {
        self.conns
            .get(&sock.0)
            .map(|t| self.config.snd_buf.saturating_sub(t.snd_buf_len))
            .unwrap_or(0)
    }

    /// Bytes accepted but not yet acknowledged by the peer.
    pub fn unacked(&self, sock: SockId) -> usize {
        self.conns.get(&sock.0).map(|t| t.snd_buf_len).unwrap_or(0)
    }

    /// Stops delivering received data to the app; incoming bytes accumulate
    /// (up to the receive window) and the advertised window shrinks,
    /// back-pressuring the sender.
    pub fn pause(&mut self, sock: SockId) {
        if let Some(tcb) = self.conns.get_mut(&sock.0) {
            tcb.paused = true;
        }
    }

    /// Resumes delivery: returns the buffered data events plus a window
    /// update to un-stall the sender.
    pub fn resume(&mut self, sock: SockId) -> (Vec<OutSeg>, Vec<(AppId, TcpEvent)>) {
        let Some(tcb) = self.conns.get_mut(&sock.0) else {
            return (Vec::new(), Vec::new());
        };
        tcb.paused = false;
        let mut events = Vec::new();
        while let Some(chunk) = tcb.rcv_buf.pop_front() {
            tcb.rcv_buf_len -= chunk.len();
            self.counters.bytes_delivered += chunk.len() as u64;
            events.push((tcb.app, TcpEvent::Data { sock, data: chunk }));
        }
        let update = Self::bare_ack(&mut self.counters, tcb, self.config.rcv_wnd);
        (vec![update], events)
    }

    /// Initiates a graceful close; returns the FIN to transmit.
    pub fn close(&mut self, sock: SockId) -> Vec<OutSeg> {
        let Some(tcb) = self.conns.get_mut(&sock.0) else {
            return Vec::new();
        };
        if tcb.state == State::FinSent {
            return Vec::new();
        }
        tcb.state = State::FinSent;
        self.counters.segs_out += 1;
        let fin = OutSeg {
            tuple: tcb.key(),
            seg: TcpSegment {
                src_port: tcb.local.port,
                dst_port: tcb.remote.port,
                seq: tcb.snd_nxt,
                ack: tcb.rcv_nxt,
                flags: TcpFlags::FIN_ACK,
                wnd: Self::adv_wnd(tcb, self.config.rcv_wnd),
                payload: Payload::empty(),
            },
        };
        vec![fin]
    }

    /// Abortively closes; returns the RST to transmit. The local app gets
    /// no callback (it asked for the abort).
    pub fn abort(&mut self, sock: SockId) -> Vec<OutSeg> {
        let Some(tcb) = self.conns.remove(&sock.0) else {
            return Vec::new();
        };
        self.by_tuple.remove(&tcb.key());
        self.counters.segs_out += 1;
        self.counters.rst_sent += 1;
        vec![OutSeg {
            tuple: tcb.key(),
            seg: TcpSegment {
                src_port: tcb.local.port,
                dst_port: tcb.remote.port,
                seq: tcb.snd_nxt,
                ack: tcb.rcv_nxt,
                flags: TcpFlags::RST,
                wnd: 0,
                payload: Payload::empty(),
            },
        }]
    }

    fn adv_wnd(tcb: &Tcb, cap: u32) -> u32 {
        cap.saturating_sub(tcb.rcv_buf_len as u32)
    }

    fn bare_ack(counters: &mut TcpCounters, tcb: &Tcb, cap: u32) -> OutSeg {
        counters.segs_out += 1;
        OutSeg {
            tuple: tcb.key(),
            seg: TcpSegment {
                src_port: tcb.local.port,
                dst_port: tcb.remote.port,
                seq: tcb.snd_nxt,
                ack: tcb.rcv_nxt,
                flags: TcpFlags::ACK,
                wnd: Self::adv_wnd(tcb, cap),
                payload: Payload::empty(),
            },
        }
    }

    /// Returns the segment payload starting at send-buffer offset
    /// `start`, exactly `max` bytes, gathered across chunk boundaries:
    /// each gathered piece is a refcounted view of the chunk the app
    /// queued, so data bytes are not copied here and full-MSS frames are
    /// emitted regardless of how the app chunked its writes.
    fn unsent_payload(tcb: &Tcb, start: usize, max: usize) -> Payload {
        let mut payload = Payload::empty();
        let mut off = 0;
        let mut need = max;
        for c in &tcb.snd_buf {
            if need == 0 {
                break;
            }
            if start + (max - need) < off + c.len() {
                let lo = start + (max - need) - off;
                let hi = (lo + need).min(c.len());
                payload.push(c.slice(lo..hi));
                need -= hi - lo;
            }
            off += c.len();
        }
        debug_assert_eq!(payload.len(), max, "send buffer holds the range");
        payload
    }

    /// Emits as many data segments as the peer window allows. Payloads
    /// are scatter-gather lists of refcounted send-buffer views, so data
    /// bytes are not copied here.
    fn pump(counters: &mut TcpCounters, config: TcpConfig, tcb: &mut Tcb) -> Vec<OutSeg> {
        let mss = config.mss;
        let mut out = Vec::new();
        loop {
            let inflight = tcb.inflight();
            let usable = (tcb.peer_wnd as u64).saturating_sub(inflight) as usize;
            let unsent_off = inflight as usize;
            let avail = tcb.snd_buf_len.saturating_sub(unsent_off);
            let n = usable.min(avail).min(mss);
            if n == 0 {
                break;
            }
            let payload = Self::unsent_payload(tcb, unsent_off, n);
            counters.segs_out += 1;
            out.push(OutSeg {
                tuple: tcb.key(),
                seg: TcpSegment {
                    src_port: tcb.local.port,
                    dst_port: tcb.remote.port,
                    seq: tcb.snd_nxt,
                    ack: tcb.rcv_nxt,
                    flags: TcpFlags::ACK,
                    wnd: Self::adv_wnd(tcb, config.rcv_wnd),
                    payload,
                },
            });
            tcb.snd_nxt += n as u64;
        }
        out
    }

    /// Processes an incoming segment. `tuple` is the segment's on-wire
    /// direction (src = remote, dst = local). Returns segments to transmit
    /// and app events to dispatch.
    pub fn input(
        &mut self,
        tuple: FourTuple,
        seg: TcpSegment,
    ) -> (Vec<OutSeg>, Vec<(AppId, TcpEvent)>) {
        self.counters.segs_in += 1;
        let key = tuple.reversed();
        let mut out = Vec::new();
        let mut events = Vec::new();

        let sid = match self.by_tuple.get(&key) {
            Some(&sid) => sid,
            None => {
                if seg.flags.syn && !seg.flags.ack {
                    if let Some(&app) = self.listeners.get(&tuple.dst.port) {
                        let sid = self.next_sock;
                        self.next_sock += 1;
                        let tcb = Tcb {
                            local: key.src,
                            remote: key.dst,
                            app,
                            state: State::SynRcvd,
                            accepted_on: Some(tuple.dst.port),
                            snd_una: 0,
                            snd_nxt: 1, // our SYN occupies seq 0
                            snd_buf: VecDeque::new(),
                            snd_buf_len: 0,
                            peer_wnd: seg.wnd,
                            wants_writable: false,
                            rcv_nxt: 1, // their SYN occupied seq 0
                            ooo: BTreeMap::new(),
                            paused: false,
                            rcv_buf: VecDeque::new(),
                            rcv_buf_len: 0,
                        };
                        self.by_tuple.insert(key, sid);
                        self.conns.insert(sid, tcb);
                        self.counters.segs_out += 1;
                        out.push(OutSeg {
                            tuple: key,
                            seg: TcpSegment {
                                src_port: key.src.port,
                                dst_port: key.dst.port,
                                seq: 0,
                                ack: 1,
                                flags: TcpFlags::SYN_ACK,
                                wnd: self.config.rcv_wnd,
                                payload: Payload::empty(),
                            },
                        });
                    } else {
                        // Connection refused.
                        self.counters.segs_out += 1;
                        self.counters.rst_sent += 1;
                        out.push(OutSeg {
                            tuple: key,
                            seg: TcpSegment {
                                src_port: key.src.port,
                                dst_port: key.dst.port,
                                seq: 0,
                                ack: seg.seq + 1,
                                flags: TcpFlags::RST,
                                wnd: 0,
                                payload: Payload::empty(),
                            },
                        });
                    }
                } else if !seg.flags.rst {
                    // Stray segment for an unknown connection.
                    self.counters.segs_out += 1;
                    self.counters.rst_sent += 1;
                    out.push(OutSeg {
                        tuple: key,
                        seg: TcpSegment {
                            src_port: key.src.port,
                            dst_port: key.dst.port,
                            seq: seg.ack,
                            ack: 0,
                            flags: TcpFlags::RST,
                            wnd: 0,
                            payload: Payload::empty(),
                        },
                    });
                }
                return (out, events);
            }
        };

        let sock = SockId(sid);
        let mut remove = false;
        {
            // by_tuple said the connection exists; if the tables ever
            // disagree, treat the segment as addressed to no one rather
            // than aborting the stack.
            let Some(tcb) = self.conns.get_mut(&sid) else {
                self.by_tuple.remove(&key);
                return (out, events);
            };
            if seg.flags.rst {
                if tcb.state == State::SynSent {
                    events.push((tcb.app, TcpEvent::ConnectFailed(sock)));
                } else {
                    events.push((
                        tcb.app,
                        TcpEvent::Closed {
                            sock,
                            kind: CloseKind::Reset,
                        },
                    ));
                }
                remove = true;
            } else {
                match tcb.state {
                    State::SynSent if seg.flags.syn && seg.flags.ack => {
                        tcb.state = State::Established;
                        tcb.snd_una = 1;
                        tcb.snd_nxt = 1;
                        tcb.rcv_nxt = 1;
                        tcb.peer_wnd = seg.wnd;
                        out.push(Self::bare_ack(&mut self.counters, tcb, self.config.rcv_wnd));
                        events.push((tcb.app, TcpEvent::Connected(sock)));
                        out.extend(Self::pump(&mut self.counters, self.config, tcb));
                    }
                    State::SynSent => { /* ignore anything else mid-handshake */ }
                    State::SynRcvd if seg.flags.ack => {
                        tcb.state = State::Established;
                        tcb.snd_una = seg.ack.max(1);
                        tcb.peer_wnd = seg.wnd;
                        let port = tcb.accepted_on.unwrap_or(tcb.local.port);
                        events.push((tcb.app, TcpEvent::Accepted { port, sock }));
                        // The handshake ACK may already carry data.
                        Self::rx_data(
                            &mut self.counters,
                            self.config,
                            tcb,
                            sock,
                            &seg,
                            &mut out,
                            &mut events,
                        );
                        out.extend(Self::pump(&mut self.counters, self.config, tcb));
                    }
                    State::SynRcvd => {}
                    State::Established | State::FinSent => {
                        // ACK processing.
                        if seg.flags.ack {
                            let fin_adj = if tcb.state == State::FinSent { 1 } else { 0 };
                            if seg.ack > tcb.snd_una && seg.ack <= tcb.snd_nxt + fin_adj {
                                let mut advance = (seg.ack.min(tcb.snd_nxt) - tcb.snd_una) as usize;
                                tcb.snd_buf_len -= advance;
                                while advance > 0 {
                                    // Acked bytes are buffered by
                                    // construction; stop trimming (not
                                    // the process) if they ever are not.
                                    let Some(front) = tcb.snd_buf.front_mut() else {
                                        break;
                                    };
                                    if front.len() <= advance {
                                        advance -= front.len();
                                        tcb.snd_buf.pop_front();
                                    } else {
                                        front.advance(advance);
                                        advance = 0;
                                    }
                                }
                                tcb.snd_una = seg.ack.min(tcb.snd_nxt);
                            }
                            tcb.peer_wnd = seg.wnd;
                            let had_backlog = tcb.wants_writable;
                            out.extend(Self::pump(&mut self.counters, self.config, tcb));
                            if had_backlog && tcb.snd_buf_len < self.config.snd_buf {
                                tcb.wants_writable = false;
                                events.push((tcb.app, TcpEvent::Writable(sock)));
                            }
                        }
                        // Payload processing.
                        Self::rx_data(
                            &mut self.counters,
                            self.config,
                            tcb,
                            sock,
                            &seg,
                            &mut out,
                            &mut events,
                        );
                        // FIN processing.
                        if seg.flags.fin && seg.seq <= tcb.rcv_nxt {
                            tcb.rcv_nxt = tcb.rcv_nxt.max(seg.seq + 1);
                            if tcb.state == State::FinSent {
                                // Simultaneous / responding close completes.
                                out.push(Self::bare_ack(
                                    &mut self.counters,
                                    tcb,
                                    self.config.rcv_wnd,
                                ));
                            } else {
                                // Peer closed: respond with our FIN too.
                                self.counters.segs_out += 1;
                                out.push(OutSeg {
                                    tuple: tcb.key(),
                                    seg: TcpSegment {
                                        src_port: tcb.local.port,
                                        dst_port: tcb.remote.port,
                                        seq: tcb.snd_nxt,
                                        ack: tcb.rcv_nxt,
                                        flags: TcpFlags::FIN_ACK,
                                        wnd: Self::adv_wnd(tcb, self.config.rcv_wnd),
                                        payload: Payload::empty(),
                                    },
                                });
                            }
                            events.push((
                                tcb.app,
                                TcpEvent::Closed {
                                    sock,
                                    kind: CloseKind::Graceful,
                                },
                            ));
                            remove = true;
                        } else if tcb.state == State::FinSent
                            && seg.flags.ack
                            && seg.ack > tcb.snd_nxt
                        {
                            // Our FIN was acked; peer's FIN (if any) handled
                            // above. Treat as fully closed.
                            events.push((
                                tcb.app,
                                TcpEvent::Closed {
                                    sock,
                                    kind: CloseKind::Graceful,
                                },
                            ));
                            remove = true;
                        }
                    }
                }
            }
        }
        if remove {
            if let Some(tcb) = self.conns.remove(&sid) {
                self.by_tuple.remove(&tcb.key());
            }
        }
        (out, events)
    }

    fn rx_data(
        counters: &mut TcpCounters,
        config: TcpConfig,
        tcb: &mut Tcb,
        sock: SockId,
        seg: &TcpSegment,
        out: &mut Vec<OutSeg>,
        events: &mut Vec<(AppId, TcpEvent)>,
    ) {
        if seg.payload.is_empty() {
            return;
        }
        if seg.seq > tcb.rcv_nxt {
            // Out of order: stash and send a duplicate ack.
            tcb.ooo.insert(seg.seq, seg.payload.clone());
            out.push(Self::bare_ack(counters, tcb, config.rcv_wnd));
            return;
        }
        if seg.seq + seg.payload.len() as u64 <= tcb.rcv_nxt {
            // Entirely duplicate.
            out.push(Self::bare_ack(counters, tcb, config.rcv_wnd));
            return;
        }
        // Trim any already-received prefix. Each scatter-gather piece is
        // delivered as its own chunk, preserving its backing storage.
        let skip = (tcb.rcv_nxt - seg.seq) as usize;
        let mut chunks = seg.payload.skip(skip).into_chunks();
        tcb.rcv_nxt += (seg.payload.len() - skip) as u64;
        // Drain contiguous out-of-order segments.
        loop {
            match tcb.ooo.first_key_value() {
                Some((&s, _)) if s <= tcb.rcv_nxt => {}
                _ => break,
            }
            let Some((s, data)) = tcb.ooo.pop_first() else {
                break;
            };
            if s + data.len() as u64 <= tcb.rcv_nxt {
                continue;
            }
            let skip = (tcb.rcv_nxt - s) as usize;
            tcb.rcv_nxt += (data.len() - skip) as u64;
            chunks.extend(data.skip(skip).into_chunks());
        }
        for chunk in chunks {
            if tcb.paused {
                tcb.rcv_buf_len += chunk.len();
                tcb.rcv_buf.push_back(chunk);
            } else {
                counters.bytes_delivered += chunk.len() as u64;
                events.push((tcb.app, TcpEvent::Data { sock, data: chunk }));
            }
        }
        out.push(Self::bare_ack(counters, tcb, config.rcv_wnd));
    }
}

/// Appends `chunk` to a send buffer, re-joining with the tail when both
/// view the same backing storage (keeps segments full-MSS instead of
/// fragmenting per chunk).
fn push_joined(buf: &mut VecDeque<Bytes>, chunk: Bytes) {
    if let Some(back) = buf.back_mut() {
        if let Some(joined) = back.try_join(&chunk) {
            *back = joined;
            return;
        }
    }
    buf.push_back(chunk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// A small, fixed configuration so window/backpressure tests are
    /// independent of the default (autotuned-style) sizes.
    fn small_config() -> TcpConfig {
        TcpConfig {
            mss: 1448,
            rcv_wnd: 64 * 1024,
            snd_buf: 256 * 1024,
        }
    }

    fn pair() -> (TcpStack, TcpStack) {
        (TcpStack::new(small_config()), TcpStack::new(small_config()))
    }

    /// Shuttles segments between two stacks until both queues drain,
    /// returning all app events per side.
    fn shuttle(
        a: &mut TcpStack,
        b: &mut TcpStack,
        mut from_a: Vec<OutSeg>,
        mut from_b: Vec<OutSeg>,
    ) -> (Vec<TcpEvent>, Vec<TcpEvent>) {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        while !from_a.is_empty() || !from_b.is_empty() {
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for s in from_a.drain(..) {
                let (out, ev) = b.input(s.tuple, s.seg);
                next_b.extend(out);
                eb.extend(ev.into_iter().map(|(_, e)| e));
            }
            for s in from_b.drain(..) {
                let (out, ev) = a.input(s.tuple, s.seg);
                next_a.extend(out);
                ea.extend(ev.into_iter().map(|(_, e)| e));
            }
            from_a = next_a;
            from_b = next_b;
        }
        (ea, eb)
    }

    fn establish(a: &mut TcpStack, b: &mut TcpStack) -> (SockId, SockId) {
        b.listen(AppId(0), 3260);
        let (ca, syn) = a.connect(AppId(0), A, SockAddr::new(B, 3260));
        let (ea, eb) = shuttle(a, b, vec![syn], vec![]);
        assert!(matches!(ea[0], TcpEvent::Connected(s) if s == ca));
        let cb = match eb[0] {
            TcpEvent::Accepted { port: 3260, sock } => sock,
            ref other => panic!("expected accept, got {other:?}"),
        };
        (ca, cb)
    }

    #[test]
    fn handshake_and_data_both_ways() {
        let (mut a, mut b) = pair();
        let (ca, cb) = establish(&mut a, &mut b);
        let (n, segs) = a.send(ca, b"hello iscsi");
        assert_eq!(n, 11);
        let (_, eb) = shuttle(&mut a, &mut b, segs, vec![]);
        let got: Vec<u8> = eb
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data { data, .. } => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(got, b"hello iscsi");
        // Reverse direction.
        let (_, segs) = b.send(cb, b"response");
        let (ea, _) = shuttle(&mut a, &mut b, vec![], segs);
        assert!(ea.iter().any(|e| matches!(e, TcpEvent::Data { .. })));
        // All data acked after the exchange.
        assert_eq!(a.unacked(ca), 0);
        assert_eq!(b.unacked(cb), 0);
    }

    #[test]
    fn large_transfer_respects_window_and_mss() {
        let (mut a, mut b) = pair();
        let (ca, _cb) = establish(&mut a, &mut b);
        let data = vec![7u8; 200 * 1024];
        let (n, segs) = a.send(ca, &data);
        assert_eq!(n, data.len());
        // Only one window's worth may be in flight initially.
        let sent: usize = segs.iter().map(|s| s.seg.payload.len()).sum();
        assert_eq!(sent, 64 * 1024);
        assert!(segs.iter().all(|s| s.seg.payload.len() <= 1448));
        // Acks release the rest.
        let (_, eb) = shuttle(&mut a, &mut b, segs, vec![]);
        let got: usize = eb
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(got, data.len());
        assert_eq!(a.unacked(ca), 0);
    }

    #[test]
    fn send_buffer_backpressure_and_writable() {
        let (mut a, mut b) = pair();
        let (ca, _) = establish(&mut a, &mut b);
        let huge = vec![1u8; 300 * 1024];
        let (n, segs) = a.send(ca, &huge);
        assert_eq!(n, 256 * 1024); // snd_buf cap
        assert!(a.send_capacity(ca) == 0);
        let (ea, _) = shuttle(&mut a, &mut b, segs, vec![]);
        // Once acks drain the buffer the app is told it can write again.
        assert!(ea.iter().any(|e| matches!(e, TcpEvent::Writable(_))));
        assert!(a.send_capacity(ca) > 0);
    }

    #[test]
    fn pause_shrinks_window_and_resume_delivers() {
        let (mut a, mut b) = pair();
        let (ca, cb) = establish(&mut a, &mut b);
        b.pause(cb);
        let data = vec![9u8; 100 * 1024];
        let (_, segs) = a.send(ca, &data);
        let (_, eb) = shuttle(&mut a, &mut b, segs, vec![]);
        // Nothing delivered while paused.
        assert!(!eb.iter().any(|e| matches!(e, TcpEvent::Data { .. })));
        // Sender is stalled: exactly one window of data is unacknowledged...
        // actually acked-but-buffered; the sender has sent only 64 KiB.
        let (update, events) = b.resume(cb);
        let buffered: usize = events
            .iter()
            .filter_map(|(_, e)| match e {
                TcpEvent::Data { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(buffered, 64 * 1024);
        // The window update lets the sender continue; drain fully.
        let (_, eb2) = shuttle(&mut a, &mut b, vec![], update);
        let rest: usize = eb2
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(buffered + rest, data.len());
    }

    #[test]
    fn graceful_close_notifies_both_sides() {
        let (mut a, mut b) = pair();
        let (ca, _cb) = establish(&mut a, &mut b);
        let fin = a.close(ca);
        let (ea, eb) = shuttle(&mut a, &mut b, fin, vec![]);
        assert!(eb.iter().any(|e| matches!(
            e,
            TcpEvent::Closed {
                kind: CloseKind::Graceful,
                ..
            }
        )));
        assert!(ea.iter().any(|e| matches!(
            e,
            TcpEvent::Closed {
                kind: CloseKind::Graceful,
                ..
            }
        )));
        // Both sides cleaned up: further sends are no-ops.
        let (n, _) = a.send(ca, b"x");
        assert_eq!(n, 0);
    }

    #[test]
    fn abort_resets_peer() {
        let (mut a, mut b) = pair();
        let (ca, _cb) = establish(&mut a, &mut b);
        let rst = a.abort(ca);
        let (_, eb) = shuttle(&mut a, &mut b, rst, vec![]);
        assert!(eb.iter().any(|e| matches!(
            e,
            TcpEvent::Closed {
                kind: CloseKind::Reset,
                ..
            }
        )));
    }

    #[test]
    fn connect_to_closed_port_fails() {
        let (mut a, mut b) = pair();
        let (ca, syn) = a.connect(AppId(0), A, SockAddr::new(B, 9999));
        let (ea, _) = shuttle(&mut a, &mut b, vec![syn], vec![]);
        assert!(matches!(ea[0], TcpEvent::ConnectFailed(s) if s == ca));
    }

    #[test]
    fn stray_segment_gets_rst() {
        let (mut _a, mut b) = pair();
        let tuple = FourTuple::new(SockAddr::new(A, 1234), SockAddr::new(B, 3260));
        let seg = TcpSegment {
            src_port: 1234,
            dst_port: 3260,
            seq: 100,
            ack: 5,
            flags: TcpFlags::ACK,
            wnd: 0,
            payload: Bytes::from_static(b"zz").into(),
        };
        let (out, ev) = b.input(tuple, seg);
        assert!(ev.is_empty());
        assert_eq!(out.len(), 1);
        assert!(out[0].seg.flags.rst);
        assert_eq!(b.counters().rst_sent, 1);
    }

    #[test]
    fn ephemeral_ports_are_distinct() {
        let (mut a, _b) = pair();
        let (s1, o1) = a.connect(AppId(0), A, SockAddr::new(B, 3260));
        let (s2, o2) = a.connect(AppId(0), A, SockAddr::new(B, 3260));
        assert_ne!(s1, s2);
        assert_ne!(o1.tuple.src.port, o2.tuple.src.port);
        assert_eq!(a.tuple_of(s1).unwrap().dst.port, 3260);
        assert_eq!(a.app_of(s1), Some(AppId(0)));
    }

    #[test]
    fn data_while_sending_before_connected_is_flushed_on_establish() {
        let (mut a, mut b) = pair();
        b.listen(AppId(0), 3260);
        let (ca, syn) = a.connect(AppId(0), A, SockAddr::new(B, 3260));
        // Queue data before the handshake completes (common for iSCSI login).
        let (n, segs) = a.send(ca, b"early");
        assert_eq!(n, 5);
        assert!(segs.is_empty());
        let (_, eb) = shuttle(&mut a, &mut b, vec![syn], vec![]);
        let got: Vec<u8> = eb
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data { data, .. } => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(got, b"early");
    }
}

//! Addressing primitives: MAC addresses, socket addresses, 4-tuples.

use std::fmt;
use std::net::Ipv4Addr;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Deterministically derives the `n`-th locally administered MAC.
    pub fn nth(n: u64) -> MacAddr {
        let b = n.to_be_bytes();
        // 0x02 prefix = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An IPv4 endpoint: address plus TCP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockAddr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl SockAddr {
    /// Creates a socket address.
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        SockAddr { ip, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// A TCP connection 4-tuple as seen from one side: (src, dst).
///
/// Connection attribution — mapping each iSCSI TCP connection back to the
/// VM that owns it — keys on this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourTuple {
    /// Source endpoint.
    pub src: SockAddr,
    /// Destination endpoint.
    pub dst: SockAddr,
}

impl FourTuple {
    /// Creates a 4-tuple.
    pub fn new(src: SockAddr, dst: SockAddr) -> Self {
        FourTuple { src, dst }
    }

    /// The same connection seen from the other side.
    pub fn reversed(self) -> FourTuple {
        FourTuple {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for FourTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_nth_is_unique_and_local() {
        let a = MacAddr::nth(1);
        let b = MacAddr::nth(2);
        assert_ne!(a, b);
        assert_eq!(a.0[0], 0x02);
        assert!(!a.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert_eq!(a.to_string(), "02:00:00:00:00:01");
    }

    #[test]
    fn four_tuple_reverses() {
        let t = FourTuple::new(
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 1), 4000),
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 2), 3260),
        );
        let r = t.reversed();
        assert_eq!(r.src.port, 3260);
        assert_eq!(r.dst.port, 4000);
        assert_eq!(r.reversed(), t);
        assert_eq!(t.to_string(), "10.0.0.1:4000 -> 10.0.0.2:3260");
    }
}

//! Hosts: interfaces, routing (including StorM's flow steering routes),
//! NAT, a TCP stack and application slots.

use std::fmt;
use std::net::Ipv4Addr;

use std::collections::HashMap;

use storm_sim::{CpuModel, SimDuration};

use crate::addr::{FourTuple, MacAddr};
use crate::fabric::LinkId;
use crate::nat::Nat;
use crate::tcp::{TcpConfig, TcpStack};

/// Index of a host within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Index of an interface within a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u32);

/// Index of an application within a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u32);

/// Why a connection ended (re-exported TCP close kind).
pub type CloseReason = crate::tcp::CloseKind;

/// A network interface.
#[derive(Debug, Clone)]
pub struct Iface {
    /// MAC address (unique fabric-wide).
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Subnet prefix length (for on-link routing decisions).
    pub prefix_len: u8,
    /// The wired link, if connected.
    pub link: Option<LinkId>,
}

/// A static route entry.
#[derive(Debug, Clone, Copy)]
pub struct Route {
    /// Destination network.
    pub dst: Ipv4Addr,
    /// Prefix length (0 = default route).
    pub prefix_len: u8,
    /// Next-hop IP; `None` means on-link.
    pub via: Option<Ipv4Addr>,
    /// Egress interface.
    pub iface: IfaceId,
}

/// A StorM steering route: matches flows by destination (and optionally
/// source port) and diverts them to a gateway next-hop.
///
/// This implements the paper's host-side flow redirection. Because all VMs
/// on a host share the initiator's IP, only 3 of the connection's 4 tuple
/// fields are known before login; StorM therefore installs the steering
/// rule only for the duration of an (atomic) volume attach, and relies on
/// per-flow pinning — established flows keep following their pinned
/// next-hop after the rule is removed, exactly like conntrack-backed NAT
/// ("the removal of NAT rules does not impact established flows").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteerRule {
    /// Destination IP to match.
    pub match_dst_ip: Ipv4Addr,
    /// Destination port to match (`None` = any).
    pub match_dst_port: Option<u16>,
    /// Source port to match (`None` = any); known only post-login.
    pub match_src_port: Option<u16>,
    /// Gateway next-hop.
    pub via: Ipv4Addr,
    /// Egress interface.
    pub iface: IfaceId,
}

impl SteerRule {
    fn matches(&self, t: &FourTuple) -> bool {
        t.dst.ip == self.match_dst_ip
            && self.match_dst_port.is_none_or(|p| p == t.dst.port)
            && self.match_src_port.is_none_or(|p| p == t.src.port)
    }
}

/// Configuration of a passive-relay interception tap on a forwarding host.
#[derive(Debug, Clone, Copy)]
pub struct TapConfig {
    /// The app whose [`crate::App::on_tap`] is invoked per forwarded packet.
    pub app: AppId,
    /// Per-packet kernel-to-user copy cost (one syscall per packet — the
    /// overhead the paper attributes to the passive-relay approach).
    pub per_packet: SimDuration,
}

/// A simulated machine: network state, CPU and applications.
pub struct Host {
    /// Host name (diagnostics).
    pub name: String,
    /// Interfaces, indexed by [`IfaceId`].
    pub ifaces: Vec<Iface>,
    /// Static routes.
    pub routes: Vec<Route>,
    /// StorM steering routes (evaluated before static routes for locally
    /// originated flows).
    pub steer_rules: Vec<SteerRule>,
    /// Pinned per-flow next-hops created by steering-rule hits on SYNs.
    pub flow_pins: HashMap<FourTuple, (Ipv4Addr, IfaceId)>,
    /// NAT rules and conntrack.
    pub nat: Nat,
    /// TCP stack.
    pub tcp: TcpStack,
    /// CPU model (per-label accounting feeds Figure 10).
    pub cpu: CpuModel,
    /// Whether the host forwards IP traffic (gateways, middle-boxes).
    pub ip_forward: bool,
    /// Per-packet CPU cost of kernel forwarding.
    pub forward_cost: SimDuration,
    /// Optional passive-relay tap.
    pub tap: Option<TapConfig>,
    /// The tap's single userspace process: packets serialize through it.
    pub tap_queue: storm_sim::SerialResource,
    /// Frames dropped for lack of a route / ARP entry.
    pub dropped_no_route: u64,
    pub(crate) apps: Vec<Option<Box<dyn crate::engine::App>>>,
}

impl fmt::Debug for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Host")
            .field("name", &self.name)
            .field("ifaces", &self.ifaces.len())
            .field("apps", &self.apps.len())
            .field("ip_forward", &self.ip_forward)
            .finish_non_exhaustive()
    }
}

fn in_subnet(ip: Ipv4Addr, net: Ipv4Addr, prefix_len: u8) -> bool {
    if prefix_len == 0 {
        return true;
    }
    let mask = u32::MAX << (32 - prefix_len as u32);
    (u32::from(ip) & mask) == (u32::from(net) & mask)
}

impl Host {
    pub(crate) fn new(name: String, cores: usize, tcp_config: TcpConfig) -> Self {
        Host {
            name,
            ifaces: Vec::new(),
            routes: Vec::new(),
            steer_rules: Vec::new(),
            flow_pins: HashMap::new(),
            nat: Nat::new(),
            tcp: TcpStack::new(tcp_config),
            cpu: CpuModel::new(cores),
            ip_forward: false,
            forward_cost: SimDuration::from_nanos(800),
            tap: None,
            tap_queue: storm_sim::SerialResource::new(),
            dropped_no_route: 0,
            apps: Vec::new(),
        }
    }

    /// Whether `ip` is assigned to one of this host's interfaces.
    pub fn has_ip(&self, ip: Ipv4Addr) -> bool {
        self.ifaces.iter().any(|i| i.ip == ip)
    }

    /// Picks the egress interface and next hop for `dst`, honouring (in
    /// order) pinned flows, steering rules (SYN-only pinning is handled by
    /// the caller), connected subnets and static routes.
    pub fn route_for(&self, dst: Ipv4Addr) -> Option<(IfaceId, Ipv4Addr)> {
        // Connected subnets first (longest prefix wins).
        let mut best: Option<(u8, IfaceId, Ipv4Addr)> = None;
        for (idx, iface) in self.ifaces.iter().enumerate() {
            if in_subnet(dst, iface.ip, iface.prefix_len)
                && best.is_none_or(|(p, _, _)| iface.prefix_len > p)
            {
                best = Some((iface.prefix_len, IfaceId(idx as u32), dst));
            }
        }
        for r in &self.routes {
            if in_subnet(dst, r.dst, r.prefix_len) && best.is_none_or(|(p, _, _)| r.prefix_len > p)
            {
                best = Some((r.prefix_len, r.iface, r.via.unwrap_or(dst)));
            }
        }
        best.map(|(_, iface, via)| (iface, via))
    }

    /// Resolves the route for a locally originated flow, applying steering
    /// rules and flow pins. `is_syn` flows that hit a steering rule get
    /// pinned so they keep their path after the rule is removed.
    pub fn route_for_flow(
        &mut self,
        tuple: &FourTuple,
        is_syn: bool,
    ) -> Option<(IfaceId, Ipv4Addr)> {
        if let Some(&(via, iface)) = self.flow_pins.get(tuple) {
            return Some((iface, via));
        }
        if is_syn {
            if let Some(rule) = self.steer_rules.iter().find(|r| r.matches(tuple)) {
                let pin = (rule.via, rule.iface);
                self.flow_pins.insert(*tuple, pin);
                return Some((pin.1, pin.0));
            }
        }
        self.route_for(tuple.dst.ip)
    }

    /// Installs a steering rule.
    pub fn add_steer_rule(&mut self, rule: SteerRule) {
        self.steer_rules.push(rule);
    }

    /// Removes steering rules equal to `rule`; pinned flows are unaffected.
    pub fn remove_steer_rule(&mut self, rule: &SteerRule) {
        self.steer_rules.retain(|r| r != rule);
    }

    /// Number of pinned flows (diagnostics).
    pub fn pinned_flows(&self) -> usize {
        self.flow_pins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SockAddr;

    fn host() -> Host {
        let mut h = Host::new("h".into(), 4, TcpConfig::default());
        h.ifaces.push(Iface {
            mac: MacAddr::nth(1),
            ip: Ipv4Addr::new(192, 168, 1, 10),
            prefix_len: 24,
            link: None,
        });
        h.ifaces.push(Iface {
            mac: MacAddr::nth(2),
            ip: Ipv4Addr::new(10, 0, 0, 10),
            prefix_len: 24,
            link: None,
        });
        h
    }

    #[test]
    fn connected_subnet_routing() {
        let h = host();
        let (iface, via) = h.route_for(Ipv4Addr::new(10, 0, 0, 99)).unwrap();
        assert_eq!(iface, IfaceId(1));
        assert_eq!(via, Ipv4Addr::new(10, 0, 0, 99));
        assert!(h.route_for(Ipv4Addr::new(172, 16, 0, 1)).is_none());
        assert!(h.has_ip(Ipv4Addr::new(10, 0, 0, 10)));
        assert!(!h.has_ip(Ipv4Addr::new(10, 0, 0, 11)));
    }

    #[test]
    fn static_route_with_gateway() {
        let mut h = host();
        h.routes.push(Route {
            dst: Ipv4Addr::new(172, 16, 0, 0),
            prefix_len: 16,
            via: Some(Ipv4Addr::new(10, 0, 0, 1)),
            iface: IfaceId(1),
        });
        let (iface, via) = h.route_for(Ipv4Addr::new(172, 16, 5, 5)).unwrap();
        assert_eq!(iface, IfaceId(1));
        assert_eq!(via, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn steering_rule_pins_flows_on_syn() {
        let mut h = host();
        let target = Ipv4Addr::new(10, 0, 0, 99);
        let gw = Ipv4Addr::new(10, 0, 0, 50);
        let rule = SteerRule {
            match_dst_ip: target,
            match_dst_port: Some(3260),
            match_src_port: None,
            via: gw,
            iface: IfaceId(1),
        };
        h.add_steer_rule(rule);
        let flow = FourTuple::new(
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 10), 40001),
            SockAddr::new(target, 3260),
        );
        // SYN hits the rule and pins the flow.
        assert_eq!(h.route_for_flow(&flow, true), Some((IfaceId(1), gw)));
        assert_eq!(h.pinned_flows(), 1);
        // Rule removal leaves the pinned flow steered...
        h.remove_steer_rule(&rule);
        assert_eq!(h.route_for_flow(&flow, false), Some((IfaceId(1), gw)));
        // ...but new flows go direct (the atomic-attach property).
        let fresh = FourTuple::new(
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 10), 40002),
            SockAddr::new(target, 3260),
        );
        assert_eq!(h.route_for_flow(&fresh, true), Some((IfaceId(1), target)));
    }

    #[test]
    fn non_syn_flows_do_not_pin() {
        let mut h = host();
        let target = Ipv4Addr::new(10, 0, 0, 99);
        h.add_steer_rule(SteerRule {
            match_dst_ip: target,
            match_dst_port: None,
            match_src_port: None,
            via: Ipv4Addr::new(10, 0, 0, 50),
            iface: IfaceId(1),
        });
        let flow = FourTuple::new(
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 10), 40001),
            SockAddr::new(target, 3260),
        );
        // Mid-flow packets of unknown flows follow normal routing.
        assert_eq!(h.route_for_flow(&flow, false), Some((IfaceId(1), target)));
        assert_eq!(h.pinned_flows(), 0);
    }

    #[test]
    fn src_port_scoped_steering() {
        let mut h = host();
        let target = Ipv4Addr::new(10, 0, 0, 99);
        let gw = Ipv4Addr::new(10, 0, 0, 50);
        h.add_steer_rule(SteerRule {
            match_dst_ip: target,
            match_dst_port: Some(3260),
            match_src_port: Some(40001),
            via: gw,
            iface: IfaceId(1),
        });
        let hit = FourTuple::new(
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 10), 40001),
            SockAddr::new(target, 3260),
        );
        let miss = FourTuple::new(
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 10), 40002),
            SockAddr::new(target, 3260),
        );
        assert_eq!(h.route_for_flow(&hit, true).unwrap().1, gw);
        assert_eq!(h.route_for_flow(&miss, true).unwrap().1, target);
    }
}

//! Small helpers shared by applications.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::engine::Cx;
use crate::tcp::SockId;

/// An application-side send queue.
///
/// TCP send buffers are finite; protocol engines (iSCSI targets pushing
/// multi-megabyte Data-In trains, relays) queue their output here and
/// drain it as the socket accepts bytes (continuing from
/// [`crate::App::on_writable`]).
///
/// The queue holds refcounted [`Bytes`] chunks rather than flat bytes:
/// [`push_bytes`](SendQueue::push_bytes) enqueues a shared view without
/// copying, and [`pump`](SendQueue::pump) hands chunks to TCP via
/// [`Cx::send_bytes`], so a relay forwarding received wire bytes never
/// duplicates the payload. [`push`](SendQueue::push) remains the copying
/// path for plain slices.
#[derive(Debug, Default)]
pub struct SendQueue {
    chunks: VecDeque<Bytes>,
    len: usize,
    sent: u64,
}

impl SendQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes to the queue by copy (does not transmit).
    pub fn push(&mut self, bytes: &[u8]) {
        if !bytes.is_empty() {
            self.push_bytes(Bytes::copy_from_slice(bytes));
        }
    }

    /// Appends a refcounted chunk to the queue without copying (does not
    /// transmit). Chunks that continue the previous chunk's backing
    /// storage re-join for free.
    pub fn push_bytes(&mut self, bytes: Bytes) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        if let Some(last) = self.chunks.back_mut() {
            if let Some(joined) = last.try_join(&bytes) {
                *last = joined;
                return;
            }
        }
        self.chunks.push_back(bytes);
    }

    /// Sends as much queued data as the socket accepts; returns the number
    /// of bytes handed to TCP. All queued chunks are enqueued in one batch
    /// before TCP cuts segments, so a PDU's header and data chunks share
    /// full-MSS frames instead of flushing one packet per chunk.
    pub fn pump(&mut self, cx: &mut Cx<'_>, sock: SockId) -> usize {
        let n = cx.send_chunks(sock, &mut self.chunks);
        self.len -= n;
        self.sent += n as u64;
        n
    }

    /// Pushes then pumps in one call.
    pub fn send(&mut self, cx: &mut Cx<'_>, sock: SockId, bytes: &[u8]) -> usize {
        self.push(bytes);
        self.pump(cx, sock)
    }

    /// Appends a whole batch of shared chunks — a multi-chunk frame or a
    /// received wire image re-emitted verbatim — without copying any of
    /// them. Adjacent views of one allocation re-join as they land.
    pub fn push_all<I: IntoIterator<Item = Bytes>>(&mut self, chunks: I) {
        for c in chunks {
            self.push_bytes(c);
        }
    }

    /// Bytes still queued (not yet accepted by TCP).
    pub fn backlog(&self) -> usize {
        self.len
    }

    /// Whether everything has been handed to TCP.
    pub fn is_drained(&self) -> bool {
        self.len == 0
    }

    /// Total bytes successfully handed to TCP.
    pub fn total_sent(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_tracks_pushes() {
        let mut q = SendQueue::new();
        assert!(q.is_drained());
        q.push(&[1, 2, 3]);
        q.push(&[4]);
        assert_eq!(q.backlog(), 4);
        assert!(!q.is_drained());
        assert_eq!(q.total_sent(), 0);
    }

    #[test]
    fn push_all_batches_without_copying() {
        let whole = Bytes::from(vec![9u8; 32]);
        let mut q = SendQueue::new();
        q.push_all([whole.slice(..16), whole.slice(16..)]);
        assert_eq!(q.backlog(), 32);
        assert_eq!(q.chunks.len(), 1, "frame chunks re-join");
        assert!(q.chunks[0].same_storage(&whole));
    }

    #[test]
    fn push_bytes_joins_adjacent_views() {
        let whole = Bytes::from(vec![1u8, 2, 3, 4, 5, 6]);
        let mut q = SendQueue::new();
        q.push_bytes(whole.slice(..3));
        q.push_bytes(whole.slice(3..));
        assert_eq!(q.backlog(), 6);
        assert_eq!(q.chunks.len(), 1, "adjacent slices re-join");
        assert!(q.chunks[0].same_storage(&whole));
    }
}

//! Small helpers shared by applications.

use std::collections::VecDeque;

use crate::engine::Cx;
use crate::tcp::SockId;

/// An application-side send queue.
///
/// TCP send buffers are finite; protocol engines (iSCSI targets pushing
/// multi-megabyte Data-In trains, relays) queue their output here and
/// drain it as the socket accepts bytes (continuing from
/// [`crate::App::on_writable`]).
#[derive(Debug, Default)]
pub struct SendQueue {
    buf: VecDeque<u8>,
    sent: u64,
}

impl SendQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes to the queue (does not transmit).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Sends as much queued data as the socket accepts; returns the number
    /// of bytes handed to TCP.
    pub fn pump(&mut self, cx: &mut Cx<'_>, sock: SockId) -> usize {
        let mut total = 0;
        while !self.buf.is_empty() {
            let chunk: Vec<u8> = {
                let (a, _) = self.buf.as_slices();
                let n = a.len().min(64 * 1024);
                a[..n].to_vec()
            };
            let n = cx.send(sock, &chunk);
            total += n;
            self.buf.drain(..n);
            if n < chunk.len() {
                break;
            }
        }
        self.sent += total as u64;
        total
    }

    /// Pushes then pumps in one call.
    pub fn send(&mut self, cx: &mut Cx<'_>, sock: SockId, bytes: &[u8]) -> usize {
        self.push(bytes);
        self.pump(cx, sock)
    }

    /// Bytes still queued (not yet accepted by TCP).
    pub fn backlog(&self) -> usize {
        self.buf.len()
    }

    /// Whether everything has been handed to TCP.
    pub fn is_drained(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total bytes successfully handed to TCP.
    pub fn total_sent(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_tracks_pushes() {
        let mut q = SendQueue::new();
        assert!(q.is_drained());
        q.push(&[1, 2, 3]);
        q.push(&[4]);
        assert_eq!(q.backlog(), 4);
        assert!(!q.is_drained());
        assert_eq!(q.total_sent(), 0);
    }
}

//! Ethernet/IP/TCP frames carrying real payload bytes.

use std::net::Ipv4Addr;

use bytes::Bytes;

use crate::addr::{FourTuple, MacAddr, SockAddr};

/// TCP header flags (only the ones the simulation uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize: connection setup.
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Graceful close.
    pub fin: bool,
    /// Abortive close.
    pub rst: bool,
}

impl TcpFlags {
    /// A plain data/ack segment.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Connection request.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// Connection accept.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Graceful close.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    /// Abort.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

/// Scatter-gather segment payload: an ordered list of refcounted chunks.
///
/// Real zero-copy stacks hand the NIC an iovec per frame; modelling the
/// same shape lets one full-MSS segment carry a PDU header chunk plus a
/// slice of a shared data segment without copying either. The receiver
/// sees each chunk with its original backing storage, so stream
/// reassembly can re-join slices of one allocation.
#[derive(Debug, Clone, Default)]
pub struct Payload {
    chunks: Vec<Bytes>,
    len: usize,
}

impl Payload {
    /// A payload with no bytes.
    pub const fn empty() -> Self {
        Payload {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Appends a chunk (empty chunks are dropped).
    pub fn push(&mut self, chunk: Bytes) {
        if !chunk.is_empty() {
            self.len += chunk.len();
            self.chunks.push(chunk);
        }
    }

    /// Total payload bytes across chunks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunks, in wire order.
    pub fn chunks(&self) -> &[Bytes] {
        &self.chunks
    }

    /// Consumes the payload into its chunks.
    pub fn into_chunks(self) -> Vec<Bytes> {
        self.chunks
    }

    /// The payload with the first `n` bytes dropped (chunks stay views).
    pub fn skip(&self, n: usize) -> Payload {
        let mut out = Payload::empty();
        let mut n = n.min(self.len);
        for c in &self.chunks {
            if n >= c.len() {
                n -= c.len();
            } else {
                out.push(c.slice(n..));
                n = 0;
            }
        }
        out
    }

    /// Flattens to contiguous bytes — zero-copy for a single chunk, a
    /// copy otherwise (passive taps that parse in place use this).
    pub fn to_bytes(&self) -> Bytes {
        match self.chunks.len() {
            0 => Bytes::new(),
            1 => self.chunks[0].clone(),
            _ => {
                let mut flat = Vec::with_capacity(self.len);
                for c in &self.chunks {
                    // storm-lint: allow(no-hot-path-copy): documented
                    // flatten for passive taps that parse in place; the
                    // forwarding path moves chunks without flattening.
                    flat.extend_from_slice(c);
                }
                Bytes::from(flat)
            }
        }
    }
}

impl From<Bytes> for Payload {
    fn from(chunk: Bytes) -> Self {
        let mut p = Payload::empty();
        p.push(chunk);
        p
    }
}

/// Logical-bytes equality: chunk boundaries don't affect what's on the
/// wire.
impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let mut a = self.chunks.iter().flat_map(|c| c.iter());
        let mut b = other.chunks.iter().flat_map(|c| c.iter());
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (x, y) if x == y => {}
                _ => return false,
            }
        }
    }
}

impl Eq for Payload {}

/// A TCP segment with byte-granularity sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Cumulative acknowledgement (next expected byte), valid when
    /// `flags.ack`.
    pub ack: u64,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub wnd: u32,
    /// Payload bytes (scatter-gather).
    pub payload: Payload,
}

/// An Ethernet frame wrapping an IPv4/TCP packet.
///
/// The simulation is TCP-only (iSCSI rides TCP), so the encapsulation is
/// flattened into a single struct for efficiency; header sizes are still
/// accounted for in [`Frame::wire_len`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC (rewritten by `mod_dst_mac` flow actions).
    pub dst_mac: MacAddr,
    /// IPv4 source address.
    pub src_ip: Ipv4Addr,
    /// IPv4 destination address.
    pub dst_ip: Ipv4Addr,
    /// The TCP segment.
    pub tcp: TcpSegment,
    /// Hops traversed so far; frames are dropped at [`Frame::MAX_HOPS`].
    pub hops: u8,
}

impl Frame {
    /// Hop budget; exceeding it drops the frame (forwarding-loop guard).
    pub const MAX_HOPS: u8 = 32;

    /// Ethernet + IPv4 + TCP header bytes per frame.
    pub const HEADER_BYTES: usize = 14 + 20 + 20;

    /// Total bytes occupied on the wire.
    pub fn wire_len(&self) -> usize {
        Self::HEADER_BYTES + self.tcp.payload.len()
    }

    /// The connection 4-tuple in the frame's direction of travel.
    pub fn tuple(&self) -> FourTuple {
        FourTuple::new(
            SockAddr::new(self.src_ip, self.tcp.src_port),
            SockAddr::new(self.dst_ip, self.tcp.dst_port),
        )
    }

    /// Applies a 4-tuple rewrite (NAT) to the IP and TCP headers.
    pub fn set_tuple(&mut self, t: FourTuple) {
        self.src_ip = t.src.ip;
        self.tcp.src_port = t.src.port;
        self.dst_ip = t.dst.ip;
        self.tcp.dst_port = t.dst.port;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            src_mac: MacAddr::nth(1),
            dst_mac: MacAddr::nth(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp: TcpSegment {
                src_port: 40000,
                dst_port: 3260,
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                wnd: 65535,
                payload: Bytes::from_static(b"hello").into(),
            },
            hops: 0,
        }
    }

    #[test]
    fn wire_len_counts_headers() {
        assert_eq!(frame().wire_len(), 54 + 5);
    }

    #[test]
    fn tuple_round_trip() {
        let mut f = frame();
        let t = f.tuple();
        assert_eq!(t.src.port, 40000);
        assert_eq!(t.dst.port, 3260);
        let r = t.reversed();
        f.set_tuple(r);
        assert_eq!(f.src_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(f.tcp.src_port, 3260);
        assert_eq!(f.tcp.dst_port, 40000);
    }

    #[test]
    fn flag_constants() {
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(TcpFlags::SYN.syn && !TcpFlags::SYN.ack);
            assert!(TcpFlags::SYN_ACK.syn && TcpFlags::SYN_ACK.ack);
            assert!(TcpFlags::FIN_ACK.fin);
            assert!(TcpFlags::RST.rst);
        }
    }
}

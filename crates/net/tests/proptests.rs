//! Property-based tests for NAT, flow tables and the TCP stack.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use storm_net::tcp::{TcpConfig, TcpStack};
use storm_net::{AppId, DnatRule, FlowMatch, FourTuple, Nat, SnatRule, SockAddr};

fn sockaddr() -> impl Strategy<Value = SockAddr> {
    (any::<u8>(), any::<u8>(), 1u16..u16::MAX)
        .prop_map(|(a, b, p)| SockAddr::new(Ipv4Addr::new(10, a, b, 1), p))
}

proptest! {
    /// NAT: for any translated flow, the reply direction applies the exact
    /// inverse (conntrack correctness) — the property StorM's masquerading
    /// chain depends on end-to-end.
    #[test]
    fn nat_reply_is_inverse(src in sockaddr(), dst in sockaddr(),
                            to in sockaddr(), masq in sockaddr()) {
        prop_assume!(src != dst && dst != to);
        let mut nat = Nat::new();
        nat.add_dnat(DnatRule {
            match_dst_ip: dst.ip,
            match_dst_port: Some(dst.port),
            match_src_ip: None,
            to,
        });
        nat.add_snat(SnatRule {
            match_dst_ip: Some(to.ip),
            match_dst_port: Some(to.port),
            to_ip: masq.ip,
            to_port: None,
        });
        let orig = FourTuple::new(src, dst);
        let fwd = nat.translate(orig, true);
        // Forward direction consistently repeats.
        prop_assert_eq!(nat.translate(orig, false), fwd);
        // Reply direction inverts exactly.
        let reply = nat.translate(fwd.reversed(), false);
        prop_assert_eq!(reply, orig.reversed());
        // And the reply's reply is the forward translation again.
        prop_assert_eq!(nat.translate(reply.reversed(), false), fwd);
    }

    /// FourTuple reversal is an involution.
    #[test]
    fn tuple_reversal_involution(a in sockaddr(), b in sockaddr()) {
        let t = FourTuple::new(a, b);
        prop_assert_eq!(t.reversed().reversed(), t);
    }

    /// Wildcarded flow matches are monotonic: adding a constraint never
    /// matches more frames.
    #[test]
    fn flow_match_monotonic(port in 1u16..u16::MAX, other in 1u16..u16::MAX) {
        use storm_net::{Frame, MacAddr, TcpFlags, TcpSegment};
        let frame = Frame {
            src_mac: MacAddr::nth(1),
            dst_mac: MacAddr::nth(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp: TcpSegment {
                src_port: port,
                dst_port: 3260,
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                wnd: 0,
                payload: storm_net::Payload::empty(),
            },
            hops: 0,
        };
        let base = FlowMatch::any().dst_port(3260);
        let constrained = base.src_port(other);
        let p = storm_net::PortNo(0);
        if constrained.matches(&frame, p) {
            prop_assert!(base.matches(&frame, p));
        }
        prop_assert_eq!(constrained.matches(&frame, p), other == port);
    }

    /// TCP: any sequence of sends from A arrives at B intact and in order,
    /// under any interleaving of the shuttle (windows force multiple
    /// exchange rounds).
    #[test]
    fn tcp_stream_integrity(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..5000), 1..8)) {
        let config = TcpConfig { mss: 1448, rcv_wnd: 16 * 1024, snd_buf: 64 * 1024 };
        let mut a = TcpStack::new(config);
        let mut b = TcpStack::new(config);
        b.listen(AppId(0), 3260);
        let (sock, syn) = a.connect(AppId(0), Ipv4Addr::new(10, 0, 0, 1),
            SockAddr::new(Ipv4Addr::new(10, 0, 0, 2), 3260));
        // Complete the handshake.
        let mut from_a = vec![syn];
        let mut from_b: Vec<storm_net::tcp::OutSeg> = Vec::new();
        let mut received: Vec<u8> = Vec::new();
        let mut to_send: Vec<u8> = chunks.concat();
        let total = to_send.len();
        let mut offered = 0usize;
        for _round in 0..10_000 {
            // Offer more data whenever the buffer has room.
            if offered < total {
                let (n, segs) = a.send(sock, &to_send[..]);
                offered += n;
                to_send.drain(..n);
                from_a.extend(segs);
            }
            if from_a.is_empty() && from_b.is_empty() && offered >= total
                && received.len() >= total {
                break;
            }
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for s in from_a.drain(..) {
                let (out, evs) = b.input(s.tuple, s.seg);
                next_b.extend(out);
                for (_, e) in evs {
                    if let storm_net::tcp::TcpEvent::Data { data, .. } = e {
                        received.extend_from_slice(&data);
                    }
                }
            }
            for s in from_b.drain(..) {
                let (out, _evs) = a.input(s.tuple, s.seg);
                next_a.extend(out);
            }
            from_a = next_a;
            from_b = next_b;
        }
        let expect: Vec<u8> = chunks.concat();
        prop_assert_eq!(received.len(), expect.len());
        prop_assert_eq!(received, expect);
        prop_assert_eq!(a.unacked(sock), 0);
    }
}

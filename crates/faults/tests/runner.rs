//! Runner mechanics against a real cloud: timed commands, windows with
//! auto-heal, predicate triggers, and run-to-run trace determinism.

use storm_cloud::{Cloud, CloudConfig};
use storm_faults::{Fault, FaultPlan, FaultRunner};
use storm_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn plan(storage_host: u32) -> FaultPlan {
    FaultPlan::new(2024)
        // A 2-second partition of the first storage host starting at t=1s.
        .window(
            secs(1),
            SimDuration::from_secs(2),
            Fault::Partition { host: storage_host },
        )
        // Permanent medium error armed at t=2s.
        .at(
            secs(2),
            Fault::MediumError {
                volume: 1,
                lba: 0,
                sectors: 8,
            },
        )
        // A predicate event: fires at the first poll tick past t=4s.
        .when(
            |c: &Cloud| c.net.now() >= secs(4),
            Fault::LinkDown { link: 0 },
        )
}

fn run_once() -> (Vec<String>, bool, bool) {
    let mut cloud = Cloud::build(CloudConfig::default());
    let storage_host = cloud.storages[0].host;
    let mut runner = FaultRunner::new(plan(storage_host.0).schedule());
    runner.arm_cloud(&mut cloud);

    runner.run(&mut cloud, secs(2));
    // Mid-partition: every link on the storage host is down.
    let partitioned = cloud
        .net
        .host(storage_host)
        .ifaces
        .iter()
        .filter_map(|i| i.link)
        .all(|l| !cloud.net.fabric.link(l).is_up());

    runner.run(&mut cloud, secs(6));
    // Partition healed at t=3s; the predicate then took link 0 down for
    // good at the first poll tick past t=4s.
    let healed_then_cut = {
        let back_up = cloud
            .net
            .host(storage_host)
            .ifaces
            .iter()
            .filter_map(|i| i.link)
            .filter(|l| l.0 != 0)
            .all(|l| cloud.net.fabric.link(l).is_up());
        let cut = !cloud.net.fabric.link(storm_net::LinkId(0)).is_up();
        back_up && cut
    };
    (runner.trace(), partitioned, healed_then_cut)
}

#[test]
fn scheduled_commands_apply_heal_and_trigger() {
    let (trace, partitioned, healed_then_cut) = run_once();
    assert!(partitioned, "storage host must be partitioned at t=2s");
    assert!(
        healed_then_cut,
        "partition must heal and predicate must fire"
    );
    let joined = trace.join("\n");
    assert!(joined.contains("partition host"), "{joined}");
    assert!(joined.contains("heal partition"), "{joined}");
    assert!(joined.contains("arm #1 MediumError"), "{joined}");
    assert!(joined.contains("predicate fired"), "{joined}");
    assert!(joined.contains("cmd link-down 0"), "{joined}");
    // Ordering: partition precedes its heal precedes the predicate.
    let p = joined.find("partition host").unwrap();
    let h = joined.find("heal partition").unwrap();
    let f = joined.find("predicate fired").unwrap();
    assert!(p < h && h < f, "{joined}");
}

#[test]
fn whole_cloud_runs_replay_identically() {
    let (a, _, _) = run_once();
    let (b, _, _) = run_once();
    assert_eq!(
        a, b,
        "same schedule over the same cloud must trace identically"
    );
}

#[test]
fn crash_on_unregistered_mb_is_noted_not_fatal() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let mut runner = FaultRunner::new(
        FaultPlan::new(1)
            .at(secs(1), Fault::MbCrash { mb: 7 })
            .schedule(),
    );
    runner.run(&mut cloud, secs(2));
    let joined = runner.trace().join("\n");
    assert!(joined.contains("crash mb 7: unregistered"), "{joined}");
}

//! Chaos soak: any schedule drawn from a seed yields identical event
//! traces across two runs.
//!
//! The driver below is a synthetic stand-in for the simulator: it arms,
//! disarms and consults the fault state in an order derived purely from
//! the seed. Since the real simulator is itself deterministic, trace
//! equality here plus engine determinism gives whole-run reproducibility.

use proptest::prelude::*;

use storm_faults::{Fault, FaultState};
use storm_sim::{FaultPoint, FaultSite, SimDuration, SimRng, SimTime};

/// Draws a random condition fault from `rng`.
fn random_fault(rng: &mut SimRng) -> Fault {
    match rng.below(6) {
        0 => Fault::LinkLoss {
            link: rng.below(4) as u32,
            prob: rng.unit(),
        },
        1 => Fault::DiskDelay {
            host: rng.below(3) as u32,
            extra: SimDuration::from_micros(rng.range(1, 500)),
            prob: rng.unit(),
        },
        2 => Fault::MediumError {
            volume: rng.below(3) as u32,
            lba: rng.below(1 << 20),
            sectors: rng.range(1, 64),
        },
        3 => Fault::MuteTarget {
            host: rng.below(3) as u32,
        },
        4 => Fault::MbDrop {
            mb: rng.below(2) as u32,
            prob: rng.unit(),
        },
        _ => Fault::MbDelay {
            mb: rng.below(2) as u32,
            delay: SimDuration::from_micros(rng.range(1, 100)),
            prob: rng.unit(),
        },
    }
}

/// Draws a random injection site from `rng`.
fn random_site(rng: &mut SimRng) -> FaultSite {
    match rng.below(5) {
        0 => FaultSite::LinkTransmit {
            link: rng.below(4) as u32,
        },
        1 => FaultSite::DiskServe {
            host: rng.below(3) as u32,
            write: rng.chance(0.5),
        },
        2 => FaultSite::TargetRespond {
            host: rng.below(3) as u32,
        },
        3 => FaultSite::VolumeIo {
            volume: rng.below(3) as u32,
            lba: rng.below(1 << 20),
            write: rng.chance(0.5),
        },
        _ => FaultSite::MbProcess {
            mb: rng.below(2) as u32,
        },
    }
}

/// One full soak: a fresh state seeded with `seed`, driven through a
/// schedule of arms/disarms/decisions derived from the same seed.
fn soak(seed: u64) -> Vec<String> {
    let state = FaultState::new(seed);
    // The driver RNG is decorrelated from the decision RNG but equally
    // seed-determined.
    let mut driver = SimRng::seed_from_u64(seed ^ 0xD1CE_CAFE_F00D_BEEF);
    let mut armed: Vec<u64> = Vec::new();
    for tick in 0..300u64 {
        let now = SimTime::from_nanos(tick * 1_000);
        if driver.chance(0.15) {
            let fault = random_fault(&mut driver);
            armed.push(state.arm(now, fault));
        }
        if !armed.is_empty() && driver.chance(0.08) {
            let idx = driver.below(armed.len() as u64) as usize;
            state.disarm(now, armed.swap_remove(idx));
        }
        for _ in 0..driver.below(4) {
            let site = random_site(&mut driver);
            let _ = state.decide(now, site);
        }
    }
    state.trace()
}

proptest! {
    /// Same seed, same schedule, same decisions — byte-identical traces.
    #[test]
    fn same_seed_schedules_replay_identically(seed in 0u64..u64::MAX) {
        let a = soak(seed);
        let b = soak(seed);
        prop_assert_eq!(&a, &b);
        // The soak must actually exercise the machinery, not trivially
        // compare empty traces.
        prop_assert!(!a.is_empty());
    }

    /// Different seeds almost surely diverge — the seed is load-bearing.
    #[test]
    fn different_seeds_diverge(seed in 0u64..(u64::MAX - 1)) {
        let a = soak(seed);
        let b = soak(seed + 1);
        prop_assert!(a != b);
    }
}

//! The armed fault plan: condition matching, seeded randomness, and the
//! event trace.

use std::sync::Arc;

use parking_lot::Mutex;

use storm_sim::{FaultAction, FaultHook, FaultPoint, FaultSite, SimRng, SimTime};

use crate::plan::Fault;

struct Condition {
    id: u64,
    fault: Fault,
}

struct Inner {
    rng: SimRng,
    conditions: Vec<Condition>,
    trace: Vec<String>,
    next_id: u64,
}

/// The live decision state behind every injection hook.
///
/// Condition faults (loss probabilities, latency spikes, medium errors,
/// muted targets) are armed here — by a [`FaultRunner`](crate::FaultRunner)
/// at their scheduled instants, or directly by tests — and consulted from
/// the instrumented layers through [`FaultPoint::decide`]. Probabilistic
/// decisions draw from one seeded [`SimRng`]; since the simulator calls
/// `decide` in a deterministic order, the entire fault history is a pure
/// function of the seed and the schedule. The trace records every
/// non-proceed decision and every arm/disarm, so two runs can be compared
/// byte for byte.
pub struct FaultState {
    inner: Mutex<Inner>,
}

impl FaultState {
    /// Creates an armed-but-empty state seeded with `seed`.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(FaultState {
            inner: Mutex::new(Inner {
                rng: SimRng::seed_from_u64(seed),
                conditions: Vec::new(),
                trace: Vec::new(),
                next_id: 1,
            }),
        })
    }

    /// Mints a hook for an injection site.
    pub fn hook(self: &Arc<Self>) -> FaultHook {
        FaultHook::armed(Arc::clone(self) as Arc<dyn FaultPoint>)
    }

    /// Arms a condition fault; returns its id for [`disarm`](Self::disarm).
    ///
    /// Command faults ([`Fault::is_command`]) have no data-path effect and
    /// are rejected with a trace note.
    pub fn arm(&self, now: SimTime, fault: Fault) -> u64 {
        let mut inner = self.inner.lock();
        if fault.is_command() {
            inner
                .trace
                .push(format!("t={} reject-arm {fault:?}", now.as_nanos()));
            return 0;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.conditions.push(Condition { id, fault });
        inner
            .trace
            .push(format!("t={} arm #{id} {fault:?}", now.as_nanos()));
        id
    }

    /// Disarms a previously armed condition. Unknown ids are ignored.
    pub fn disarm(&self, now: SimTime, id: u64) {
        let mut inner = self.inner.lock();
        let before = inner.conditions.len();
        inner.conditions.retain(|c| c.id != id);
        if inner.conditions.len() != before {
            inner
                .trace
                .push(format!("t={} disarm #{id}", now.as_nanos()));
        }
    }

    /// Appends a free-form entry to the trace (the runner logs its
    /// commands through this).
    pub fn note(&self, now: SimTime, msg: &str) {
        self.inner
            .lock()
            .trace
            .push(format!("t={} {msg}", now.as_nanos()));
    }

    /// Number of currently armed conditions.
    pub fn armed_len(&self) -> usize {
        self.inner.lock().conditions.len()
    }

    /// A copy of the event trace so far.
    pub fn trace(&self) -> Vec<String> {
        self.inner.lock().trace.clone()
    }
}

/// Matches `site` against `fault`; `Some(action)` if the condition
/// applies (before any probability draw).
fn matches(fault: &Fault, site: &FaultSite) -> bool {
    match (fault, site) {
        (Fault::LinkLoss { link, .. }, FaultSite::LinkTransmit { link: l }) => link == l,
        (Fault::DiskDelay { host, .. }, FaultSite::DiskServe { host: h, .. }) => host == h,
        (Fault::MuteTarget { host }, FaultSite::TargetRespond { host: h }) => host == h,
        (
            Fault::MediumError {
                volume,
                lba,
                sectors,
            },
            FaultSite::VolumeIo {
                volume: v, lba: l, ..
            },
        ) => volume == v && *l >= *lba && *l < lba + sectors,
        (Fault::MbDrop { mb, .. }, FaultSite::MbProcess { mb: m }) => mb == m,
        (Fault::MbDelay { mb, .. }, FaultSite::MbProcess { mb: m }) => mb == m,
        _ => false,
    }
}

impl FaultPoint for FaultState {
    fn decide(&self, now: SimTime, site: FaultSite) -> FaultAction {
        let mut inner = self.inner.lock();
        // First matching condition wins, in arm order. The RNG is only
        // consumed when a probabilistic condition matches the site, so
        // unaffected traffic does not perturb the stream.
        let mut verdict = FaultAction::Proceed;
        for i in 0..inner.conditions.len() {
            let fault = inner.conditions[i].fault;
            if !matches(&fault, &site) {
                continue;
            }
            verdict = match fault {
                Fault::LinkLoss { prob, .. } => {
                    if inner.rng.chance(prob) {
                        FaultAction::Drop
                    } else {
                        FaultAction::Proceed
                    }
                }
                Fault::DiskDelay { extra, prob, .. } => {
                    if inner.rng.chance(prob) {
                        FaultAction::Delay(extra)
                    } else {
                        FaultAction::Proceed
                    }
                }
                Fault::MuteTarget { .. } => FaultAction::Drop,
                Fault::MediumError { .. } => FaultAction::Fail,
                Fault::MbDrop { prob, .. } => {
                    if inner.rng.chance(prob) {
                        FaultAction::Drop
                    } else {
                        FaultAction::Proceed
                    }
                }
                Fault::MbDelay { delay, prob, .. } => {
                    if inner.rng.chance(prob) {
                        FaultAction::Delay(delay)
                    } else {
                        FaultAction::Proceed
                    }
                }
                // Commands never reach the condition list.
                Fault::LinkDown { .. } | Fault::Partition { .. } | Fault::MbCrash { .. } => {
                    FaultAction::Proceed
                }
            };
            if verdict != FaultAction::Proceed {
                break;
            }
        }
        if verdict != FaultAction::Proceed {
            inner
                .trace
                .push(format!("t={} {site:?} -> {verdict:?}", now.as_nanos()));
        }
        verdict
    }
}

impl std::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FaultState")
            .field("conditions", &inner.conditions.len())
            .field("trace_len", &inner.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_sim::SimDuration;

    #[test]
    fn unmatched_sites_proceed_without_consuming_rng() {
        let s = FaultState::new(7);
        s.arm(SimTime::ZERO, Fault::LinkLoss { link: 3, prob: 1.0 });
        // A different link is untouched...
        assert_eq!(
            s.decide(SimTime::ZERO, FaultSite::LinkTransmit { link: 4 }),
            FaultAction::Proceed
        );
        // ...while the armed link always drops at prob=1.
        assert_eq!(
            s.decide(SimTime::ZERO, FaultSite::LinkTransmit { link: 3 }),
            FaultAction::Drop
        );
    }

    #[test]
    fn medium_error_covers_only_its_range() {
        let s = FaultState::new(1);
        s.arm(
            SimTime::ZERO,
            Fault::MediumError {
                volume: 2,
                lba: 100,
                sectors: 8,
            },
        );
        let hit = FaultSite::VolumeIo {
            volume: 2,
            lba: 104,
            write: false,
        };
        let miss_lba = FaultSite::VolumeIo {
            volume: 2,
            lba: 108,
            write: false,
        };
        let miss_vol = FaultSite::VolumeIo {
            volume: 3,
            lba: 104,
            write: false,
        };
        assert_eq!(s.decide(SimTime::ZERO, hit), FaultAction::Fail);
        assert_eq!(s.decide(SimTime::ZERO, miss_lba), FaultAction::Proceed);
        assert_eq!(s.decide(SimTime::ZERO, miss_vol), FaultAction::Proceed);
    }

    #[test]
    fn disarm_restores_normal_service() {
        let s = FaultState::new(1);
        let id = s.arm(SimTime::ZERO, Fault::MuteTarget { host: 0 });
        let site = FaultSite::TargetRespond { host: 0 };
        assert_eq!(s.decide(SimTime::ZERO, site), FaultAction::Drop);
        s.disarm(SimTime::from_secs(1), id);
        assert_eq!(s.decide(SimTime::from_secs(1), site), FaultAction::Proceed);
        assert_eq!(s.armed_len(), 0);
    }

    #[test]
    fn commands_are_rejected_as_conditions() {
        let s = FaultState::new(1);
        assert_eq!(s.arm(SimTime::ZERO, Fault::MbCrash { mb: 0 }), 0);
        assert_eq!(s.armed_len(), 0);
    }

    #[test]
    fn trace_records_decisions_and_arming() {
        let s = FaultState::new(9);
        let id = s.arm(
            SimTime::ZERO,
            Fault::DiskDelay {
                host: 1,
                extra: SimDuration::from_millis(5),
                prob: 1.0,
            },
        );
        let site = FaultSite::DiskServe {
            host: 1,
            write: true,
        };
        assert!(matches!(
            s.decide(SimTime::from_nanos(10), site),
            FaultAction::Delay(_)
        ));
        s.disarm(SimTime::from_nanos(20), id);
        let t = s.trace();
        assert_eq!(t.len(), 3, "{t:?}");
        assert!(t[0].contains("arm #1"));
        assert!(t[1].contains("DiskServe"));
        assert!(t[2].contains("disarm #1"));
    }
}

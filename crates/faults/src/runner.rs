//! Drives a cloud through a fault schedule.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use storm_cloud::{Cloud, VolumeHandle};
use storm_core::relay::{ActiveRelayMb, MbControl};
use storm_net::{AppId, BusMsg, HostId, LinkId};
use storm_sim::{SimDuration, SimTime};

use crate::plan::{Fault, FaultSchedule, PredicateEvent, TimedEvent};
use crate::state::FaultState;

enum Heal {
    LinkUp(u32),
    Rejoin(Vec<u32>),
    MbRestart(u32),
    Disarm(u64),
}

/// Executes a [`FaultSchedule`] against a [`Cloud`].
///
/// The runner owns the armed [`FaultState`]; wire its hooks into the
/// layers under test with [`arm_cloud`](Self::arm_cloud) /
/// [`arm_volume`](Self::arm_volume) / [`arm_mb`](Self::arm_mb), then call
/// [`run`](Self::run) instead of `cloud.net.run_until`. The simulation
/// advances to each event instant exactly, so a schedule replays
/// identically run after run.
pub struct FaultRunner {
    state: Arc<FaultState>,
    timed: VecDeque<TimedEvent>,
    predicates: Vec<PredicateEvent>,
    heals: Vec<(SimTime, u64, Heal)>,
    next_heal_seq: u64,
    poll: SimDuration,
    mbs: HashMap<u32, (HostId, AppId)>,
}

impl FaultRunner {
    /// Creates a runner for `schedule`, seeding the decision state from
    /// the schedule's seed.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultRunner {
            state: FaultState::new(schedule.seed),
            timed: schedule.timed.into(),
            predicates: schedule.predicates,
            heals: Vec::new(),
            next_heal_seq: 0,
            poll: schedule.poll,
            mbs: HashMap::new(),
        }
    }

    /// The armed decision state (for minting extra hooks or reading the
    /// trace).
    pub fn state(&self) -> &Arc<FaultState> {
        &self.state
    }

    /// A copy of the event trace so far.
    pub fn trace(&self) -> Vec<String> {
        self.state.trace()
    }

    /// Arms the fabric (frame loss, link transmit) and every storage
    /// target (disk latency, muted responses) in `cloud`.
    pub fn arm_cloud(&self, cloud: &mut Cloud) {
        cloud.net.fabric.set_fault_hook(self.state.hook());
        for i in 0..cloud.storages.len() {
            let hook = self.state.hook();
            cloud.target_mut(i).set_fault_hook(hook, i as u32);
        }
    }

    /// Arms a volume for [`Fault::MediumError`] injection.
    pub fn arm_volume(&self, vol: &VolumeHandle) {
        vol.shared.set_fault_hook(self.state.hook());
    }

    /// Arms the active-relay middle-box app at `(node, app)` and registers
    /// it as middle-box `mb` for [`Fault::MbCrash`] delivery and
    /// [`storm_sim::FaultSite::MbProcess`] sites.
    ///
    /// Returns false (and registers nothing) if the app is not an
    /// [`ActiveRelayMb`].
    pub fn arm_mb(&mut self, cloud: &mut Cloud, mb: u32, node: HostId, app: AppId) -> bool {
        let hook = self.state.hook();
        let Some(relay) = cloud
            .net
            .app_mut(node, app)
            .and_then(|a| a.downcast_mut::<ActiveRelayMb>())
        else {
            return false;
        };
        relay.set_fault_hook(hook, mb);
        self.mbs.insert(mb, (node, app));
        true
    }

    /// Runs the cloud to `until`, injecting scheduled faults at their
    /// instants and polling predicates at the configured cadence.
    pub fn run(&mut self, cloud: &mut Cloud, until: SimTime) {
        loop {
            let now = cloud.net.now();
            let mut next = until;
            if let Some(e) = self.timed.front() {
                next = next.min(e.at);
            }
            if let Some(t) = self.heals.iter().map(|(t, _, _)| *t).min() {
                next = next.min(t);
            }
            if !self.predicates.is_empty() {
                let p = self.poll.as_nanos();
                let tick = SimTime::from_nanos((now.as_nanos() / p + 1) * p);
                next = next.min(tick);
            }
            let next = next.max(now);
            cloud.net.run_until(next);
            self.fire_due(cloud, next);
            if next >= until {
                break;
            }
        }
    }

    /// Applies everything due at `now`: heals first (a window ending as
    /// another begins sees clean state), then timed events, then a
    /// predicate poll if `now` is on the cadence.
    fn fire_due(&mut self, cloud: &mut Cloud, now: SimTime) {
        let mut due: Vec<(SimTime, u64, Heal)> = Vec::new();
        self.heals.retain_mut(|entry| {
            if entry.0 <= now {
                due.push((
                    entry.0,
                    entry.1,
                    std::mem::replace(&mut entry.2, Heal::Disarm(0)),
                ));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|(t, seq, _)| (*t, *seq));
        for (_, _, heal) in due {
            self.apply_heal(cloud, now, heal);
        }
        while self.timed.front().is_some_and(|e| e.at <= now) {
            let e = self.timed.pop_front().expect("peeked");
            self.apply(cloud, now, e.fault, e.duration);
        }
        if !self.predicates.is_empty() && now.as_nanos().is_multiple_of(self.poll.as_nanos()) {
            let mut fired = Vec::new();
            self.predicates.retain_mut(|p| {
                if (p.pred)(cloud) {
                    fired.push((p.fault, p.duration));
                    false
                } else {
                    true
                }
            });
            for (fault, duration) in fired {
                self.state.note(now, &format!("predicate fired: {fault:?}"));
                self.apply(cloud, now, fault, duration);
            }
        }
    }

    fn schedule_heal(&mut self, at: SimTime, heal: Heal) {
        let seq = self.next_heal_seq;
        self.next_heal_seq += 1;
        self.heals.push((at, seq, heal));
    }

    fn apply(
        &mut self,
        cloud: &mut Cloud,
        now: SimTime,
        fault: Fault,
        duration: Option<SimDuration>,
    ) {
        match fault {
            Fault::LinkDown { link } => {
                assert!(
                    (link as usize) < cloud.net.fabric.link_count(),
                    "fault plan names unknown link {link} (fabric has {})",
                    cloud.net.fabric.link_count()
                );
                cloud.net.fabric.set_link_up(LinkId(link), false);
                self.state.note(now, &format!("cmd link-down {link}"));
                if let Some(d) = duration {
                    self.schedule_heal(now + d, Heal::LinkUp(link));
                }
            }
            Fault::Partition { host } => {
                assert!(
                    (host as usize) < cloud.net.host_count(),
                    "fault plan names unknown host {host} (network has {})",
                    cloud.net.host_count()
                );
                let links: Vec<u32> = cloud
                    .net
                    .host(HostId(host))
                    .ifaces
                    .iter()
                    .filter_map(|i| i.link)
                    .map(|l| l.0)
                    .collect();
                for &l in &links {
                    cloud.net.fabric.set_link_up(LinkId(l), false);
                }
                self.state
                    .note(now, &format!("cmd partition host {host} (links {links:?})"));
                if let Some(d) = duration {
                    self.schedule_heal(now + d, Heal::Rejoin(links));
                }
            }
            Fault::MbCrash { mb } => {
                if let Some(&(node, app)) = self.mbs.get(&mb) {
                    cloud.net.bus_send(
                        node,
                        node,
                        app,
                        SimDuration::ZERO,
                        BusMsg::new(MbControl::Crash),
                    );
                    self.state.note(now, &format!("cmd crash mb {mb}"));
                    if let Some(d) = duration {
                        self.schedule_heal(now + d, Heal::MbRestart(mb));
                    }
                } else {
                    self.state
                        .note(now, &format!("cmd crash mb {mb}: unregistered"));
                }
            }
            condition => {
                let id = self.state.arm(now, condition);
                if let (Some(d), true) = (duration, id != 0) {
                    self.schedule_heal(now + d, Heal::Disarm(id));
                }
            }
        }
    }

    fn apply_heal(&mut self, cloud: &mut Cloud, now: SimTime, heal: Heal) {
        match heal {
            Heal::LinkUp(link) => {
                cloud.net.fabric.set_link_up(LinkId(link), true);
                self.state.note(now, &format!("cmd link-up {link}"));
            }
            Heal::Rejoin(links) => {
                for &l in &links {
                    cloud.net.fabric.set_link_up(LinkId(l), true);
                }
                self.state
                    .note(now, &format!("cmd heal partition (links {links:?})"));
            }
            Heal::MbRestart(mb) => {
                if let Some(&(node, app)) = self.mbs.get(&mb) {
                    cloud.net.bus_send(
                        node,
                        node,
                        app,
                        SimDuration::ZERO,
                        BusMsg::new(MbControl::Restart),
                    );
                    self.state.note(now, &format!("cmd restart mb {mb}"));
                }
            }
            Heal::Disarm(0) => {}
            Heal::Disarm(id) => self.state.disarm(now, id),
        }
    }
}

impl std::fmt::Debug for FaultRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultRunner")
            .field("timed_remaining", &self.timed.len())
            .field("predicates_remaining", &self.predicates.len())
            .field("heals_pending", &self.heals.len())
            .finish()
    }
}

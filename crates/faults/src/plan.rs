//! The fault schedule DSL: what fails, when, and for how long.

use storm_cloud::Cloud;
use storm_sim::{SimDuration, SimTime};

/// One injectable fault.
///
/// Identifiers are the raw integers the injection sites report
/// ([`storm_sim::FaultSite`]): link ids (`LinkId.0`), storage host
/// indexes, volume ids (`VolumeId.0`) and middle-box indexes assigned at
/// arm time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Takes a fabric link administratively down (applied by the runner).
    LinkDown {
        /// Raw link identifier.
        link: u32,
    },
    /// Random frame loss on a link while armed.
    LinkLoss {
        /// Raw link identifier.
        link: u32,
        /// Per-frame loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Partitions a host off the fabric: every link on its interfaces
    /// goes down (applied by the runner).
    Partition {
        /// Raw host identifier (`HostId.0`).
        host: u32,
    },
    /// Extra service latency on a storage host's disk while armed (a
    /// latency spike, e.g. a background scrub or a failing spindle).
    DiskDelay {
        /// Storage host index.
        host: u32,
        /// Extra latency added to each affected access.
        extra: SimDuration,
        /// Per-access probability of the spike in `[0, 1]`.
        prob: f64,
    },
    /// A grown defect: accesses touching the sector range fail with a
    /// medium error while armed; the rest of the volume stays readable.
    MediumError {
        /// Raw volume identifier.
        volume: u32,
        /// First bad sector.
        lba: u64,
        /// Length of the bad range in sectors.
        sectors: u64,
    },
    /// A storage host's target goes mute while armed: requests are served
    /// but responses never leave the host. Detectable only by timeout —
    /// the paper's "not responsive" replica.
    MuteTarget {
        /// Storage host index.
        host: u32,
    },
    /// Crashes a middle-box VM (applied by the runner over the
    /// hypervisor bus); a durationed event restarts it afterwards.
    ///
    /// The crash aborts every guest session through the relay. Restart
    /// re-establishes the relay's replica connections, but the platform
    /// has no guest-side reconnect: a crashed middle-box's guests stall
    /// until re-attached.
    MbCrash {
        /// Middle-box index registered with the runner.
        mb: u32,
    },
    /// The middle-box drops PDUs while armed (overload shedding, a wedged
    /// worker thread).
    MbDrop {
        /// Middle-box index assigned at arm time.
        mb: u32,
        /// Per-PDU drop probability in `[0, 1]`.
        prob: f64,
    },
    /// The middle-box processes PDUs slower while armed.
    MbDelay {
        /// Middle-box index assigned at arm time.
        mb: u32,
        /// Extra processing time per PDU.
        delay: SimDuration,
        /// Per-PDU probability of the slowdown in `[0, 1]`.
        prob: f64,
    },
}

impl Fault {
    /// Whether this fault is a discrete command the runner applies to the
    /// cloud (as opposed to a condition armed in the [`FaultState`]
    /// decision state).
    ///
    /// [`FaultState`]: crate::FaultState
    pub fn is_command(&self) -> bool {
        matches!(
            self,
            Fault::LinkDown { .. } | Fault::Partition { .. } | Fault::MbCrash { .. }
        )
    }
}

/// A predicate over the cloud; polled by the runner at a fixed cadence.
pub type Predicate = Box<dyn Fn(&Cloud) -> bool + Send>;

pub(crate) struct TimedEvent {
    pub at: SimTime,
    pub fault: Fault,
    pub duration: Option<SimDuration>,
}

pub(crate) struct PredicateEvent {
    pub pred: Predicate,
    pub fault: Fault,
    pub duration: Option<SimDuration>,
}

/// Builder for a fault schedule.
///
/// `at`/`window` inject at an instant; `when`/`when_for` inject once a
/// predicate over the cloud first holds (polled every
/// [`poll_every`](FaultPlan::poll_every), default 1 s). The seed drives
/// every probabilistic decision the armed plan makes.
pub struct FaultPlan {
    seed: u64,
    timed: Vec<TimedEvent>,
    predicates: Vec<PredicateEvent>,
    poll: SimDuration,
}

impl FaultPlan {
    /// Creates an empty plan whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            timed: Vec::new(),
            predicates: Vec::new(),
            poll: SimDuration::from_secs(1),
        }
    }

    /// Injects `fault` at instant `at`, permanently.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.timed.push(TimedEvent {
            at,
            fault,
            duration: None,
        });
        self
    }

    /// Injects `fault` at instant `at` and heals it `duration` later
    /// (link comes back up, partition heals, middle-box restarts,
    /// condition disarms).
    pub fn window(mut self, at: SimTime, duration: SimDuration, fault: Fault) -> Self {
        self.timed.push(TimedEvent {
            at,
            fault,
            duration: Some(duration),
        });
        self
    }

    /// Injects `fault` (permanently) the first time `pred` holds.
    pub fn when(mut self, pred: impl Fn(&Cloud) -> bool + Send + 'static, fault: Fault) -> Self {
        self.predicates.push(PredicateEvent {
            pred: Box::new(pred),
            fault,
            duration: None,
        });
        self
    }

    /// Injects `fault` the first time `pred` holds and heals it
    /// `duration` later.
    pub fn when_for(
        mut self,
        pred: impl Fn(&Cloud) -> bool + Send + 'static,
        duration: SimDuration,
        fault: Fault,
    ) -> Self {
        self.predicates.push(PredicateEvent {
            pred: Box::new(pred),
            fault,
            duration: Some(duration),
        });
        self
    }

    /// Sets the predicate polling cadence (default 1 s).
    ///
    /// # Panics
    ///
    /// Panics if `poll` is zero.
    pub fn poll_every(mut self, poll: SimDuration) -> Self {
        assert!(poll > SimDuration::ZERO, "poll cadence must be positive");
        self.poll = poll;
        self
    }

    /// Compiles the plan into a time-ordered schedule.
    pub fn schedule(self) -> FaultSchedule {
        let mut timed = self.timed;
        // Stable: events at the same instant keep insertion order.
        timed.sort_by_key(|e| e.at);
        FaultSchedule {
            seed: self.seed,
            timed,
            predicates: self.predicates,
            poll: self.poll,
        }
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("timed", &self.timed.len())
            .field("predicates", &self.predicates.len())
            .finish()
    }
}

/// A compiled, time-ordered fault schedule, ready for a
/// [`FaultRunner`](crate::FaultRunner).
pub struct FaultSchedule {
    pub(crate) seed: u64,
    pub(crate) timed: Vec<TimedEvent>,
    pub(crate) predicates: Vec<PredicateEvent>,
    pub(crate) poll: SimDuration,
}

impl FaultSchedule {
    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of time-triggered events.
    pub fn timed_len(&self) -> usize {
        self.timed.len()
    }

    /// Number of predicate-triggered events.
    pub fn predicate_len(&self) -> usize {
        self.predicates.len()
    }
}

impl std::fmt::Debug for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultSchedule")
            .field("seed", &self.seed)
            .field("timed", &self.timed.len())
            .field("predicates", &self.predicates.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_orders_events_by_time() {
        let plan = FaultPlan::new(1)
            .at(SimTime::from_secs(30), Fault::LinkDown { link: 0 })
            .at(SimTime::from_secs(10), Fault::MuteTarget { host: 1 })
            .window(
                SimTime::from_secs(10),
                SimDuration::from_secs(2),
                Fault::LinkLoss { link: 2, prob: 0.5 },
            );
        let s = plan.schedule();
        assert_eq!(s.timed_len(), 3);
        assert_eq!(s.timed[0].at, SimTime::from_secs(10));
        assert!(matches!(s.timed[0].fault, Fault::MuteTarget { host: 1 }));
        assert!(matches!(s.timed[1].fault, Fault::LinkLoss { .. }));
        assert_eq!(s.timed[2].at, SimTime::from_secs(30));
    }

    #[test]
    fn command_vs_condition_classes() {
        assert!(Fault::LinkDown { link: 0 }.is_command());
        assert!(Fault::Partition { host: 0 }.is_command());
        assert!(Fault::MbCrash { mb: 0 }.is_command());
        assert!(!Fault::LinkLoss { link: 0, prob: 0.1 }.is_command());
        assert!(!Fault::MuteTarget { host: 0 }.is_command());
        assert!(!Fault::MediumError {
            volume: 1,
            lba: 0,
            sectors: 8
        }
        .is_command());
    }
}

//! Deterministic fault injection for the StorM stack.
//!
//! The paper's reliability story (Case 3 replication, Figure 13) hinges on
//! failure behavior — "once a replica is not responsive ... it will be
//! eliminated from future operations" — so this crate provides the means
//! to *cause* failures, reproducibly:
//!
//! - [`FaultPlan`] / [`FaultSchedule`]: a small DSL describing what fails,
//!   when (at an instant, over a window, or once a predicate over the
//!   cloud holds), and for how long.
//! - [`FaultState`]: the armed plan. It implements
//!   [`storm_sim::FaultPoint`] and is consulted from injection sites in
//!   the net fabric (frame loss), the storage targets (disk latency
//!   spikes, muted responses), logical volumes (medium errors) and the
//!   active relay (PDU drop/slowdown). All randomness comes from one
//!   seeded [`storm_sim::SimRng`], so a schedule replays identically.
//! - [`FaultRunner`]: drives a [`storm_cloud::Cloud`] through a schedule,
//!   interleaving `run_until` with discrete actions (link down/up, host
//!   partition, middle-box crash/restart over the hypervisor bus).
//!
//! Every decision and command is appended to an event trace
//! ([`FaultState::trace`]); two runs of the same seed produce
//! byte-identical traces, which the chaos soak test asserts.
//!
//! ```
//! use storm_faults::{Fault, FaultPlan};
//! use storm_sim::{SimDuration, SimTime};
//!
//! let plan = FaultPlan::new(42)
//!     // Mute storage host 1 at t=10s: its target stops responding, the
//!     // relay watchdog times the requests out and evicts the replica.
//!     .at(SimTime::from_secs(10), Fault::MuteTarget { host: 1 })
//!     // 2% frame loss on link 3 between t=20s and t=25s.
//!     .window(
//!         SimTime::from_secs(20),
//!         SimDuration::from_secs(5),
//!         Fault::LinkLoss { link: 3, prob: 0.02 },
//!     );
//! let schedule = plan.schedule();
//! assert_eq!(schedule.timed_len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod runner;
mod state;

pub use plan::{Fault, FaultPlan, FaultSchedule, Predicate};
pub use runner::FaultRunner;
pub use state::FaultState;

//! Seeded randomness for reproducible experiments.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random source for simulations.
///
/// All experiment randomness (I/O offsets, think times, workload mixes) is
/// drawn through a `SimRng` seeded from the experiment configuration, so a
/// run is fully reproducible from its seed.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each workload
    /// thread / component its own stream without correlation.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.random())
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() needs a positive bound");
        self.inner.random_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random()
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fills `buf` with random bytes (payload generation).
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.below(1 << 20), fb.below(1 << 20));
    }

    #[test]
    fn range_and_chance_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let u = r.unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SimRng::seed_from_u64(9);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed_from_u64(0).below(0);
    }
}

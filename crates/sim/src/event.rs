//! The simulation event queue: a hierarchical bucketed timer wheel.
//!
//! Up to PR 7 this was a `BinaryHeap<(SimTime, seq)>`; at fleet scale
//! (millions of queued events across thousands of tenants) the heap's
//! `O(log n)` sift on every push/pop and its per-event allocation churn
//! dominated the simulator's own profile. The wheel replaces it with:
//!
//! * **Hierarchical buckets** — [`LEVELS`] levels of [`SLOTS`] slots each;
//!   level `l` slots are `SLOTS^l` ns wide, so the wheel spans
//!   `SLOTS^LEVELS` ns (≈ 73 minutes) of lookahead. Push is `O(1)`;
//!   pop amortizes cascades over the events that caused them. Events
//!   beyond the horizon wait in a `BTreeMap` overflow ("far") list and
//!   re-enter the wheel lazily.
//! * **Slab-allocated nodes** — events live in one grow-only `Vec` with an
//!   embedded free list; slot membership is an intrusive doubly-linked
//!   list of slab indices, so steady-state scheduling allocates nothing.
//! * **Cancel tokens** — [`EventQueue::push_cancelable`] returns a
//!   generation-checked [`CancelToken`]; [`EventQueue::cancel`] unlinks
//!   the node in `O(1)` and returns the event. The heap could only
//!   tombstone.
//!
//! # Ordering contract (unchanged from the heap)
//!
//! Events pop in non-decreasing `(time, push sequence)` order: equal
//! instants are FIFO, which keeps equal-seed traces byte-identical. The
//! wheel may internally advance its cursor while *peeking* (cascading a
//! higher-level slot down), but the cursor never passes the earliest
//! pending event, so an event pushed at or after the last popped time is
//! always delivered in exact order. Pushing *before* the last popped time
//! is delivered as soon as possible (next pop), still `(time, seq)`
//! ordered against any other late events — the same observable behavior
//! the engine's `debug_assert!(t >= now)` permits.

use std::collections::BTreeMap;
use std::fmt;

use crate::SimTime;

/// Slots per wheel level (must be 64: occupancy is a `u64` bitmap).
const SLOTS: usize = 64;
/// log2(SLOTS).
const SLOT_BITS: u32 = 6;
/// Wheel levels. Level `l` covers deltas in `[64^l, 64^(l+1))` ns, so the
/// whole wheel spans `64^7` ns ≈ 4398 s; longer timers go to the far list.
const LEVELS: usize = 7;
/// First delta that no longer fits the wheel.
const SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32); // 64^LEVELS

/// Sentinel slab index ("null pointer" of the intrusive lists).
const NIL: u32 = u32::MAX;

/// Where a live node currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In `levels[level].slots[slot]`'s linked list.
    Wheel { level: u8, slot: u8 },
    /// In the far (beyond-horizon) `BTreeMap`.
    Far,
    /// On the free list (not a live event).
    Free,
}

/// One slab entry: the event plus its intrusive list links.
struct Node<E> {
    at: u64,
    seq: u64,
    /// Bumped on every free; stale [`CancelToken`]s fail the check.
    gen: u32,
    prev: u32,
    next: u32,
    loc: Loc,
    event: Option<E>,
}

/// Head/tail of one slot's doubly-linked node list.
#[derive(Clone, Copy)]
struct Slot {
    head: u32,
    tail: u32,
}

impl Slot {
    const EMPTY: Slot = Slot {
        head: NIL,
        tail: NIL,
    };
}

/// One wheel level: 64 slots plus an occupancy bitmap.
struct Level {
    occupied: u64,
    slots: [Slot; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: [Slot::EMPTY; SLOTS],
        }
    }
}

/// A handle to a scheduled event, returned by
/// [`EventQueue::push_cancelable`].
///
/// Tokens are generation-checked: cancelling after the event was popped
/// (or already cancelled) is a safe no-op returning `None`, even if the
/// slab entry has been reused for a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CancelToken {
    idx: u32,
    gen: u32,
}

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO), which makes simulations deterministic: replaying the same seed
/// yields the same event interleaving. See the module docs for the wheel
/// internals and the exact ordering contract.
pub struct EventQueue<E> {
    slab: Vec<Node<E>>,
    /// LIFO free list of slab indices (deterministic reuse order).
    free: Vec<u32>,
    levels: Vec<Level>,
    /// Beyond-horizon events keyed by `(at, seq)` — exact global order.
    far: BTreeMap<(u64, u64), u32>,
    /// The wheel cursor in ns. Never passes the earliest pending event.
    cursor: u64,
    seq: u64,
    popped: u64,
    len: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            far: BTreeMap::new(),
            cursor: 0,
            seq: 0,
            popped: 0,
            len: 0,
        }
    }

    /// Schedules `event` for delivery at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let _ = self.push_cancelable(at, event);
    }

    /// Schedules `event` for delivery at instant `at`, returning a token
    /// that can later [`cancel`](Self::cancel) it.
    pub fn push_cancelable(&mut self, at: SimTime, event: E) -> CancelToken {
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc(at.as_nanos(), seq, event);
        self.place(idx);
        self.len += 1;
        CancelToken {
            idx,
            gen: self.slab[idx as usize].gen,
        }
    }

    /// Cancels a scheduled event, returning it if it was still pending.
    ///
    /// Unlinks the slab node in `O(1)`; a token whose event already popped
    /// (or was already cancelled) returns `None`.
    pub fn cancel(&mut self, token: CancelToken) -> Option<E> {
        let node = self.slab.get(token.idx as usize)?;
        if node.gen != token.gen || node.loc == Loc::Free {
            return None;
        }
        self.unlink(token.idx);
        let event = self.release(token.idx);
        self.len -= 1;
        Some(event)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let idx = self.find_earliest()?;
        let at = self.slab[idx as usize].at;
        self.unlink(idx);
        let event = self.release(idx);
        self.len -= 1;
        self.popped += 1;
        self.cursor = self.cursor.max(at);
        Some((SimTime::from_nanos(at), event))
    }

    /// The delivery instant of the next event, if any.
    ///
    /// Takes `&mut self`: locating the earliest event may cascade
    /// higher-level buckets down (never past that event), which is exactly
    /// the work a subsequent [`pop`](Self::pop) would have done anyway.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let idx = self.find_earliest()?;
        Some(SimTime::from_nanos(self.slab[idx as usize].at))
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events delivered so far (monotonic).
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    // ------------------------------------------------------------------
    // Slab management
    // ------------------------------------------------------------------

    fn alloc(&mut self, at: u64, seq: u64, event: E) -> u32 {
        if let Some(idx) = self.free.pop() {
            let node = &mut self.slab[idx as usize];
            node.at = at;
            node.seq = seq;
            node.prev = NIL;
            node.next = NIL;
            node.event = Some(event);
            idx
        } else {
            let idx = self.slab.len() as u32;
            assert!(idx != NIL, "event slab exhausted");
            self.slab.push(Node {
                at,
                seq,
                gen: 0,
                prev: NIL,
                next: NIL,
                loc: Loc::Free,
                event: Some(event),
            });
            idx
        }
    }

    /// Frees a node (bumping its generation) and takes its event out.
    fn release(&mut self, idx: u32) -> E {
        let node = &mut self.slab[idx as usize];
        node.loc = Loc::Free;
        node.gen = node.gen.wrapping_add(1);
        node.prev = NIL;
        node.next = NIL;
        self.free.push(idx);
        node.event.take().expect("released node holds an event")
    }

    // ------------------------------------------------------------------
    // Placement
    // ------------------------------------------------------------------

    /// Inserts node `idx` into the wheel (or far list) according to its
    /// delta from the cursor, appending at the slot tail so same-instant
    /// events keep push order.
    fn place(&mut self, idx: u32) {
        let at = self.slab[idx as usize].at;
        let delta = at.saturating_sub(self.cursor);
        if delta >= SPAN {
            let seq = self.slab[idx as usize].seq;
            self.slab[idx as usize].loc = Loc::Far;
            self.far.insert((at, seq), idx);
            return;
        }
        // Level from the highest set bit of the delta: level l covers
        // deltas in [64^l, 64^(l+1)). A past-time push (delta 0 via
        // saturation) lands in the cursor's own level-0 slot and is
        // delivered on the next pop.
        let level = if delta < SLOTS as u64 {
            0
        } else {
            ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = if level == 0 && at < self.cursor {
            (self.cursor >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1)
        } else {
            (at >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1)
        };
        self.slab[idx as usize].loc = Loc::Wheel {
            level: level as u8,
            slot: slot as u8,
        };
        let s = &mut self.levels[level].slots[slot];
        if s.tail == NIL {
            s.head = idx;
            s.tail = idx;
        } else {
            self.slab[s.tail as usize].next = idx;
            self.slab[idx as usize].prev = s.tail;
            s.tail = idx;
        }
        self.levels[level].occupied |= 1 << slot;
    }

    /// Unlinks a live node from whichever container holds it.
    fn unlink(&mut self, idx: u32) {
        match self.slab[idx as usize].loc {
            Loc::Wheel { level, slot } => {
                let (prev, next) = {
                    let n = &self.slab[idx as usize];
                    (n.prev, n.next)
                };
                if prev != NIL {
                    self.slab[prev as usize].next = next;
                }
                if next != NIL {
                    self.slab[next as usize].prev = prev;
                }
                let s = &mut self.levels[level as usize].slots[slot as usize];
                if s.head == idx {
                    s.head = next;
                }
                if s.tail == idx {
                    s.tail = prev;
                }
                if s.head == NIL {
                    self.levels[level as usize].occupied &= !(1 << slot);
                }
            }
            Loc::Far => {
                let key = {
                    let n = &self.slab[idx as usize];
                    (n.at, n.seq)
                };
                self.far.remove(&key);
            }
            Loc::Free => unreachable!("unlink of a free node"),
        }
    }

    // ------------------------------------------------------------------
    // Search & cascades
    // ------------------------------------------------------------------

    /// Lower-bound arrival time of the first occupied slot of `level`, as
    /// `(slot, start_time)`, walking forward from the cursor.
    ///
    /// The start is a lower bound on every event in the slot, exact for
    /// all but two mixed-content cases (late pushes in level 0's current
    /// slot; a higher level's current slot straddling the cursor's block
    /// and the next rotation), which the caller resolves by scanning or
    /// cascading respectively.
    fn level_candidate(&self, level: usize) -> Option<(usize, u64)> {
        let lv = &self.levels[level];
        if lv.occupied == 0 {
            return None;
        }
        let shift = SLOT_BITS * level as u32;
        let block = self.cursor >> shift; // current slot counter
        let cur = (block as usize) & (SLOTS - 1);
        // Rotate so the current slot is bit 0, then take the first set bit.
        let rotated = lv.occupied.rotate_right(cur as u32);
        let dist = rotated.trailing_zeros() as u64; // 0 = the current slot
        if dist == 0 {
            let slot = cur;
            if level == 0 || self.slot_holds_current_block(level, slot, block) {
                // The cursor's own slot with current-tick content: level 0
                // may mix late pushes with the cursor-tick event (exact
                // times read by the caller); a higher level holding a
                // current-block event must cascade now. Either way the
                // cursor does not move.
                return Some((slot, self.cursor));
            }
            // The cursor's slot holds only next-rotation events (same
            // residue, 64 blocks on) — a full rotation LATER than any
            // other occupied slot at this level, so rotation distance is
            // not monotone in time here: prefer the next occupied slot if
            // there is one.
            let rest = rotated & !1;
            if rest != 0 {
                let dist = rest.trailing_zeros() as u64;
                let slot = (cur + dist as usize) & (SLOTS - 1);
                return Some((slot, (block + dist) << shift));
            }
            return Some((slot, (block + SLOTS as u64) << shift));
        }
        // A distance-d slot (d >= 1) holds exactly block `block + d`
        // events: an older rotation would already have been passed (the
        // cursor never passes a pending event) and a newer one would need
        // placement distance d + 64 > 64, more than placement allows.
        let slot = (cur + dist as usize) & (SLOTS - 1);
        Some((slot, (block + dist) << shift))
    }

    /// Whether any node in `levels[level].slots[slot]` belongs to the
    /// cursor's current block at that level (as opposed to the next
    /// rotation, 64 blocks later — the only other possibility).
    fn slot_holds_current_block(&self, level: usize, slot: usize, block: u64) -> bool {
        let shift = SLOT_BITS * level as u32;
        let mut cur = self.levels[level].slots[slot].head;
        while cur != NIL {
            let n = &self.slab[cur as usize];
            if n.at >> shift == block {
                return true;
            }
            cur = n.next;
        }
        false
    }

    /// Finds the slab index of the earliest `(at, seq)` event, cascading
    /// higher-level buckets down (and pulling far events in) until it sits
    /// in a level-0 slot. Advances the cursor, but never past the earliest
    /// pending event. Returns `None` when the queue is empty.
    fn find_earliest(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Best wheel candidate: the lowest lower-bound start time.
            // Ties prefer the HIGHEST level: a tied higher-level slot must
            // cascade before level 0 is read, or a same-instant event
            // stuck up-wheel would pop after a later-pushed twin (FIFO
            // violation). Cascading on a tie is always safe — it only
            // redistributes nodes — so `<=` keeps the last (highest) tie.
            let mut best: Option<(usize, usize, u64)> = None; // (level, slot, start)
            for level in 0..LEVELS {
                if let Some((slot, start)) = self.level_candidate(level) {
                    if best.is_none_or(|(_, _, s)| start <= s) {
                        best = Some((level, slot, start));
                    }
                }
            }
            let far_at = self.far.keys().next().map(|&(at, _)| at);
            match (best, far_at) {
                (None, None) => return None,
                // Far event at or before every wheel lower bound: advance
                // and pull it in. Ties also pull (`<=`): an equal-time far
                // event may carry a lower seq than its wheel twin, and
                // once in the wheel the level-0 scan orders them exactly.
                (best, Some(fat)) if best.is_none_or(|(_, _, s)| fat <= s) => {
                    // `fat` lower-bounds nothing: every wheel event's at
                    // is >= its slot's start >= ... >= fat is false in
                    // general, but fat <= min start <= min wheel at, so
                    // the cursor may jump to fat without passing anything.
                    self.cursor = self.cursor.max(fat);
                    let (&key, &idx) = self.far.iter().next().expect("far nonempty");
                    self.far.remove(&key);
                    self.place(idx);
                }
                // The far-pull guard is vacuously true for an empty wheel,
                // so a far event always finds a home above.
                (None, Some(_)) => unreachable!("far pull guard covers an empty wheel"),
                (Some((0, slot, start)), _) => {
                    // Exact: scan the slot for the minimum (at, seq).
                    // Normally all nodes share one tick (only push order
                    // varies); the cursor's own slot may also hold late
                    // pushes with arbitrary earlier times.
                    self.cursor = self.cursor.max(start);
                    let mut cur = self.levels[0].slots[slot].head;
                    let mut min_idx = cur;
                    let mut min_key = {
                        let n = &self.slab[cur as usize];
                        (n.at, n.seq)
                    };
                    while cur != NIL {
                        let n = &self.slab[cur as usize];
                        if (n.at, n.seq) < min_key {
                            min_key = (n.at, n.seq);
                            min_idx = cur;
                        }
                        cur = n.next;
                    }
                    return Some(min_idx);
                }
                (Some((level, slot, start)), _) => {
                    // Cascade: no pending event precedes `start`, so the
                    // cursor may advance to it. Current-block nodes then
                    // re-place at least one level lower (their delta from
                    // the cursor is under this level's slot width);
                    // next-rotation nodes re-place by their own delta and
                    // are found again via their true block start.
                    self.cursor = self.cursor.max(start);
                    let mut cur = self.levels[level].slots[slot].head;
                    self.levels[level].slots[slot] = Slot::EMPTY;
                    self.levels[level].occupied &= !(1 << slot);
                    while cur != NIL {
                        let next = self.slab[cur as usize].next;
                        self.slab[cur as usize].prev = NIL;
                        self.slab[cur as usize].next = NIL;
                        self.place(cur);
                        cur = next;
                    }
                }
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("delivered", &self.popped)
            .field("cursor_ns", &self.cursor)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::ZERO + SimDuration::from_micros(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7_000)));
        q.pop();
        assert_eq!(q.delivered(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn crosses_level_boundaries() {
        // One event per level, including one past the wheel horizon.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for l in 0..=LEVELS as u32 {
            let t = 3u64 << (SLOT_BITS * l);
            q.push(SimTime::from_nanos(t), l);
            expect.push((t, l));
        }
        expect.sort_unstable();
        let got: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.as_nanos(), e))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn far_events_reenter_the_wheel() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(SPAN * 2 + 5), "far");
        q.push(SimTime::from_nanos(1), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(SPAN * 2 + 5)));
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_removes_pending_event() {
        let mut q = EventQueue::new();
        let a = q.push_cancelable(SimTime::from_nanos(10), "a");
        let b = q.push_cancelable(SimTime::from_nanos(20), "b");
        let far = q.push_cancelable(SimTime::from_nanos(SPAN * 3), "far");
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(far), Some("far"));
        assert_eq!(q.len(), 1);
        // Double-cancel and post-pop cancel are no-ops.
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.cancel(b), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_token_generation_survives_slab_reuse() {
        let mut q = EventQueue::new();
        let a = q.push_cancelable(SimTime::from_nanos(1), "a");
        q.pop();
        // The slab slot is reused for "b"; the stale token must not hit it.
        let b = q.push_cancelable(SimTime::from_nanos(2), "b");
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(b), Some("b"));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), 0u32);
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(100));
        // Same-tick push after a pop at that tick pops immediately.
        q.push(SimTime::from_nanos(100), 1);
        q.push(SimTime::from_nanos(4_000), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // Past-time push (allowed, delivered next) keeps (at, seq) order.
        q.push(SimTime::from_nanos(50), 3);
        q.push(SimTime::from_nanos(60), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn next_rotation_slot_does_not_mask_nearer_slots() {
        // Regression: with the cursor at 100 (level-1 block 1, residue 1),
        // an event at 4160 lands in level-1 block 65 — the SAME residue,
        // i.e. the cursor's own slot, one rotation ahead. A later event at
        // 200 (block 3) sits two slots "ahead" by rotation distance but
        // 3960 ns earlier in time. The level scan must not let the
        // rotation-distance-0 slot shadow it.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), "setup");
        assert_eq!(q.pop().unwrap().1, "setup"); // cursor -> 100
        q.push(SimTime::from_nanos(4_160), "next-rotation");
        q.push(SimTime::from_nanos(200), "nearer");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(200), "nearer")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(4_160), "next-rotation")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn dense_same_slot_distinct_ticks_stay_sorted() {
        // Distinct nanoseconds mapping to one level-1 slot must still pop
        // in time order after the cascade redistributes them.
        let mut q = EventQueue::new();
        for i in (0..SLOTS as u64).rev() {
            q.push(SimTime::from_nanos(SLOTS as u64 + i), i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, (0..SLOTS as u64).collect::<Vec<_>>());
    }
}

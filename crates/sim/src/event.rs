//! The simulation event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO), which makes simulations deterministic: replaying the same seed
/// yields the same event interleaving.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    popped: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` for delivery at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// The delivery instant of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far (monotonic).
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::ZERO + SimDuration::from_micros(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7_000)));
        q.pop();
        assert_eq!(q.delivered(), 1);
        assert!(q.is_empty());
    }
}

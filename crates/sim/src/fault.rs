//! The fault-injection hook shared by every layer of the stack.
//!
//! `storm-faults` arms a [`FaultPoint`] implementation; the net, block,
//! cloud and core crates consult it through a [`FaultHook`] at their
//! injection sites. An unarmed hook is a `None` — the hot path pays one
//! branch and nothing else.

use std::sync::Arc;

use crate::{SimDuration, SimTime};

/// An injection site: where in the stack an operation is about to happen.
///
/// The payload carries just enough context for a fault plan to decide —
/// identifiers are plain integers so no layer above `storm-sim` leaks its
/// types downward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The fabric is about to carry a frame over link `link`.
    LinkTransmit {
        /// Raw link identifier (`LinkId.0`).
        link: u32,
    },
    /// A storage host's disk model is about to serve an access.
    DiskServe {
        /// Storage host index.
        host: u32,
        /// Whether the access is a write.
        write: bool,
    },
    /// A storage host's target is about to send an I/O response.
    TargetRespond {
        /// Storage host index.
        host: u32,
    },
    /// A logical volume is about to perform a sector access.
    VolumeIo {
        /// Raw volume identifier (`VolumeId.0`).
        volume: u32,
        /// First sector of the access.
        lba: u64,
        /// Whether the access is a write.
        write: bool,
    },
    /// A middle-box is about to process a PDU.
    MbProcess {
        /// Middle-box identifier assigned at arm time.
        mb: u32,
    },
}

/// The verdict an armed plan returns for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: the operation proceeds normally.
    Proceed,
    /// The operation vanishes silently (lost frame, swallowed response).
    Drop,
    /// The operation fails with an error visible to the caller.
    Fail,
    /// The operation proceeds after an extra delay.
    Delay(SimDuration),
}

/// A decision point consulted by instrumented layers.
///
/// Implementations must be deterministic given the simulation time and the
/// site — `storm-faults` derives all randomness from a seeded RNG so that
/// identical schedules replay identically.
pub trait FaultPoint: Send + Sync {
    /// Decides the fate of the operation at `site` at time `now`.
    ///
    /// Sites outside the simulation clock (the block layer) pass
    /// [`SimTime::ZERO`]; time-windowed faults therefore only make sense
    /// at clocked sites.
    fn decide(&self, now: SimTime, site: FaultSite) -> FaultAction;
}

/// A cheap, cloneable, optional handle to an armed [`FaultPoint`].
///
/// The default (unarmed) hook always proceeds; instrumented hot paths
/// check a single `Option` discriminant.
#[derive(Clone, Default)]
pub struct FaultHook {
    point: Option<Arc<dyn FaultPoint>>,
}

impl FaultHook {
    /// The unarmed hook: every decision is [`FaultAction::Proceed`].
    pub const fn none() -> Self {
        FaultHook { point: None }
    }

    /// Arms the hook with a fault plan.
    pub fn armed(point: Arc<dyn FaultPoint>) -> Self {
        FaultHook { point: Some(point) }
    }

    /// Whether a plan is armed.
    pub fn is_armed(&self) -> bool {
        self.point.is_some()
    }

    /// Consults the armed plan, or proceeds when unarmed.
    #[inline]
    pub fn decide(&self, now: SimTime, site: FaultSite) -> FaultAction {
        match &self.point {
            None => FaultAction::Proceed,
            Some(p) => p.decide(now, site),
        }
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHook")
            .field("armed", &self.is_armed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DropEverything;
    impl FaultPoint for DropEverything {
        fn decide(&self, _now: SimTime, _site: FaultSite) -> FaultAction {
            FaultAction::Drop
        }
    }

    #[test]
    fn unarmed_hook_proceeds() {
        let hook = FaultHook::none();
        assert!(!hook.is_armed());
        assert_eq!(
            hook.decide(SimTime::ZERO, FaultSite::LinkTransmit { link: 0 }),
            FaultAction::Proceed
        );
    }

    #[test]
    fn armed_hook_consults_the_point() {
        let hook = FaultHook::armed(Arc::new(DropEverything));
        assert!(hook.is_armed());
        assert_eq!(
            hook.decide(
                SimTime::ZERO,
                FaultSite::DiskServe {
                    host: 1,
                    write: false
                }
            ),
            FaultAction::Drop
        );
    }
}

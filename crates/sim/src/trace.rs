//! The tracing hook shared by every layer of the stack.
//!
//! `storm-telemetry` arms a [`TraceSink`] implementation; the net, iscsi,
//! cloud and core crates report span events through a [`TraceHook`] at
//! their instrumentation sites. Like [`crate::FaultHook`], an unarmed hook
//! is a `None` — the hot path pays one branch and nothing else.
//!
//! Request identity is a [`ReqToken`]: the flow's initiator-side TCP
//! source port in the high 32 bits and the iSCSI initiator task tag (ITT)
//! in the low 32. Both survive every hop of the spliced path — StorM's
//! NAT rules never rewrite ports and the active relay's pseudo-client
//! binds the flow's original source port upstream — so the same token is
//! minted independently at the guest, the middle-box and the target, and
//! the analyzer can stitch one request's events across all of them.
//! Events whose ITT half is zero are flow-scoped (per-packet forwarding
//! work that is not attributable to a single command).

use std::sync::Arc;

use crate::{SimDuration, SimTime};

/// Identity of one I/O request across the whole path.
pub type ReqToken = u64;

/// Mints the canonical request token from the flow's initiator-side
/// source port and the command's ITT.
pub const fn req_token(src_port: u16, itt: u32) -> ReqToken {
    ((src_port as u64) << 32) | itt as u64
}

/// Mints a flow-scoped token (ITT zero) for per-packet events.
pub const fn flow_token(src_port: u16) -> ReqToken {
    req_token(src_port, 0)
}

/// Where on the data path a span event happened.
///
/// The taxonomy follows the paper's Figure-10 cost centers: guest virtio
/// work, kernel forwarding on gateways/FWD boxes, relay framework work,
/// tenant service processing, target CPU and the disk itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Hop {
    /// Guest virtio-blk + initiator CPU on the compute host.
    Virtio,
    /// Per-packet kernel forwarding (gateway namespaces, MB-FWD boxes).
    Forward,
    /// Relay framework work: per-PDU active-relay cost or the passive
    /// tap's per-packet copy.
    Relay,
    /// A tenant service stage inside a middle-box (`id` = chain index).
    Service,
    /// Target-side request parsing and data copies.
    TargetCpu,
    /// Disk model service time (queueing + media).
    Disk,
    /// The active relay's persistence buffer.
    Buffer,
    /// QoS machinery: rate-limiter shaping delay, WFQ queueing, admission
    /// decisions and tier migrations.
    Qos,
}

impl Hop {
    /// Stable lower-case label used in trace files.
    pub const fn label(self) -> &'static str {
        match self {
            Hop::Virtio => "virtio",
            Hop::Forward => "forward",
            Hop::Relay => "relay",
            Hop::Service => "service",
            Hop::TargetCpu => "target",
            Hop::Disk => "disk",
            Hop::Buffer => "buffer",
            Hop::Qos => "qos",
        }
    }

    /// Parses a [`label`](Self::label) back into a hop.
    pub fn parse(s: &str) -> Option<Hop> {
        Some(match s {
            "virtio" => Hop::Virtio,
            "forward" => Hop::Forward,
            "relay" => Hop::Relay,
            "service" => Hop::Service,
            "target" => Hop::TargetCpu,
            "disk" => Hop::Disk,
            "buffer" => Hop::Buffer,
            "qos" => Hop::Qos,
            _ => return None,
        })
    }
}

/// One structured trace event.
///
/// Payloads are plain integers (plus the one setup-time name string) so
/// no layer above `storm-sim` leaks its types downward, mirroring
/// [`crate::FaultSite`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The guest issued an I/O request.
    Issue {
        /// Request identity.
        req: ReqToken,
        /// 0 = read, 1 = write, 2 = flush.
        kind: u8,
        /// Payload bytes.
        bytes: u32,
    },
    /// The guest observed the completion.
    Complete {
        /// Request identity.
        req: ReqToken,
        /// Whether the SCSI status was GOOD.
        ok: bool,
    },
    /// Time attributed to a hop on behalf of a request (or of a whole
    /// flow when the token's ITT half is zero).
    Stage {
        /// Request or flow identity.
        req: ReqToken,
        /// The cost center.
        hop: Hop,
        /// Instance id: service chain index, middle-box id, storage host
        /// index — whatever distinguishes same-hop instances.
        id: u32,
        /// Time spent.
        dur: SimDuration,
    },
    /// A request passed a point of interest without a duration (e.g.
    /// entered the persistence buffer).
    Mark {
        /// Request or flow identity.
        req: ReqToken,
        /// The location.
        hop: Hop,
        /// Instance id.
        id: u32,
    },
    /// Declares a human-readable name for `(hop, id)` — emitted once at
    /// arm time so hot-path events stay integer-only.
    Meta {
        /// The cost center being named.
        hop: Hop,
        /// Instance id.
        id: u32,
        /// Display name (e.g. a service's `name()`).
        name: String,
    },
    /// A replica was evicted from a replication middle-box (Figure 13's
    /// failover moment).
    ReplicaEvict {
        /// Middle-box id assigned at arm time.
        mb: u32,
        /// Replica session index.
        replica: u32,
    },
}

/// A sink consuming trace events as they happen.
///
/// Implementations must not reorder events: the simulator is
/// single-threaded and event order is part of the deterministic trace
/// contract (equal seeds ⇒ byte-identical exports).
pub trait TraceSink: Send + Sync {
    /// Records one event stamped at `now`.
    fn record(&self, now: SimTime, ev: &TraceEvent);
}

/// A cheap, cloneable, optional handle to an armed [`TraceSink`].
///
/// The default (unarmed) hook discards everything; instrumented hot paths
/// check a single `Option` discriminant.
#[derive(Clone, Default)]
pub struct TraceHook {
    sink: Option<Arc<dyn TraceSink>>,
}

impl TraceHook {
    /// The unarmed hook: every event is discarded.
    pub const fn none() -> Self {
        TraceHook { sink: None }
    }

    /// Arms the hook with a recorder.
    pub fn armed(sink: Arc<dyn TraceSink>) -> Self {
        TraceHook { sink: Some(sink) }
    }

    /// Whether a recorder is armed.
    pub fn is_armed(&self) -> bool {
        self.sink.is_some()
    }

    /// Records an event, or does nothing when unarmed.
    #[inline]
    pub fn emit(&self, now: SimTime, ev: TraceEvent) {
        if let Some(s) = &self.sink {
            s.record(now, &ev);
        }
    }

    /// Records a lazily-built event; the closure only runs when armed.
    /// Use at sites where building the event itself costs something.
    #[inline]
    pub fn emit_with(&self, now: SimTime, f: impl FnOnce() -> TraceEvent) {
        if let Some(s) = &self.sink {
            s.record(now, &f());
        }
    }
}

impl std::fmt::Debug for TraceHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHook")
            .field("armed", &self.is_armed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Collect(Mutex<Vec<(SimTime, TraceEvent)>>);
    impl TraceSink for Collect {
        fn record(&self, now: SimTime, ev: &TraceEvent) {
            self.0.lock().unwrap().push((now, ev.clone()));
        }
    }

    #[test]
    fn tokens_pack_port_and_itt() {
        let t = req_token(40_000, 7);
        assert_eq!(t >> 32, 40_000);
        assert_eq!(t & 0xFFFF_FFFF, 7);
        assert_eq!(flow_token(40_000), req_token(40_000, 0));
    }

    #[test]
    fn unarmed_hook_discards() {
        let hook = TraceHook::none();
        assert!(!hook.is_armed());
        hook.emit(
            SimTime::ZERO,
            TraceEvent::Mark {
                req: 1,
                hop: Hop::Relay,
                id: 0,
            },
        );
        let mut built = false;
        hook.emit_with(SimTime::ZERO, || {
            built = true;
            TraceEvent::Complete { req: 1, ok: true }
        });
        assert!(!built, "closure must not run when unarmed");
    }

    #[test]
    fn armed_hook_delivers_in_order() {
        let sink = Arc::new(Collect::default());
        let hook = TraceHook::armed(sink.clone());
        assert!(hook.is_armed());
        hook.emit(
            SimTime::from_nanos(1),
            TraceEvent::Complete { req: 9, ok: true },
        );
        hook.emit_with(SimTime::from_nanos(2), || TraceEvent::Mark {
            req: 9,
            hop: Hop::Disk,
            id: 3,
        });
        let got = sink.0.lock().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, SimTime::from_nanos(1));
        assert!(matches!(got[1].1, TraceEvent::Mark { id: 3, .. }));
    }

    #[test]
    fn hop_labels_round_trip() {
        for hop in [
            Hop::Virtio,
            Hop::Forward,
            Hop::Relay,
            Hop::Service,
            Hop::TargetCpu,
            Hop::Disk,
            Hop::Buffer,
            Hop::Qos,
        ] {
            assert_eq!(Hop::parse(hop.label()), Some(hop));
        }
        assert_eq!(Hop::parse("nope"), None);
    }
}

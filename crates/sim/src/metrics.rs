//! Measurement primitives: latency histograms, rate meters, time series.
//!
//! These feed the evaluation harness: IOPS and latency for Figures 4–9,
//! utilization for Figure 10, per-second transaction timelines for
//! Figure 13.

use std::fmt;

use crate::hist::Histogram;
use crate::{SimDuration, SimTime};

/// Records a population of durations and answers mean / percentile queries.
///
/// A thin façade over the log-bucketed [`Histogram`]: recording is O(1)
/// with no per-sample allocation, queries take `&self` with no interior
/// cache, and percentiles are approximate within the bucket width (~1.6%)
/// while `count`/`mean`/`min`/`max` stay exact.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    hist: Histogram,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.hist.record(d);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.hist.count() as usize
    }

    /// Exact arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        self.hist.mean()
    }

    /// Percentile in `[0, 100]`, or zero when empty.
    ///
    /// Approximate within the histogram's bucket width; `0` and `100`
    /// return the exact minimum and maximum.
    pub fn percentile(&self, p: f64) -> SimDuration {
        self.hist.percentile(p)
    }

    /// Largest sample (exact), or zero when empty.
    pub fn max(&self) -> SimDuration {
        self.hist.max()
    }

    /// Smallest sample (exact), or zero when empty.
    pub fn min(&self) -> SimDuration {
        self.hist.min()
    }

    /// The underlying histogram (for registry export and merging).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Counts events over a window and reports a rate (events per second).
///
/// The completion counter behind every IOPS number in Figures 4–6.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    count: u64,
    bytes: u64,
}

impl Meter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event carrying `bytes` bytes.
    pub fn record(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    /// Total events recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Events per second over `window`.
    pub fn rate(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.count as f64 / secs
    }

    /// Bytes per second over `window`.
    pub fn throughput(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / secs
    }
}

/// Bins event counts into fixed-width time buckets — the per-second TPS
/// timeline of Figure 13.
#[derive(Debug, Clone)]
pub struct Timeline {
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl Timeline {
    /// Creates a timeline with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(bucket > SimDuration::ZERO, "bucket must be positive");
        Timeline {
            bucket,
            counts: Vec::new(),
        }
    }

    /// Records one event at instant `at`.
    pub fn record(&mut self, at: SimTime) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Event counts per bucket, index 0 starting at time zero.
    pub fn series(&self) -> &[u64] {
        &self.counts
    }

    /// Mean rate (events per bucket) over the bucket range `[lo, hi)`.
    pub fn mean_over(&self, lo: usize, hi: usize) -> f64 {
        let hi = hi.min(self.counts.len());
        if lo >= hi {
            return 0.0;
        }
        let total: u64 = self.counts[lo..hi].iter().sum();
        total as f64 / (hi - lo) as f64
    }
}

/// Formats a fraction as a percentage string for experiment tables.
pub fn pct(x: f64) -> Pct {
    Pct(x)
}

/// Display adapter produced by [`pct`].
#[derive(Debug, Clone, Copy)]
pub struct Pct(f64);

impl fmt::Display for Pct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn latency_mean_and_percentiles() {
        let mut s = LatencyStats::new();
        for i in 1..=100 {
            s.record(ms(i));
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.mean(), SimDuration::from_micros(50_500));
        assert_eq!(s.percentile(0.0), ms(1));
        assert_eq!(s.percentile(100.0), ms(100));
        // Bucketed percentiles are exact to within ~1.6%.
        let p50 = s.percentile(50.0);
        assert!(p50 >= ms(49) && p50 <= ms(51), "{p50}");
        assert_eq!(s.min(), ms(1));
        assert_eq!(s.max(), ms(100));
    }

    #[test]
    fn empty_latency_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(99.0), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
    }

    #[test]
    fn percentile_takes_shared_ref_and_tracks_new_samples() {
        let mut s = LatencyStats::new();
        s.record(ms(10));
        s.record(ms(30));
        // Query through a shared reference; no interior cache involved.
        let shared: &LatencyStats = &s;
        assert_eq!(shared.percentile(100.0), ms(30));
        assert_eq!(shared.percentile(0.0), ms(10));
        // Later records are visible immediately (out of order on purpose).
        s.record(ms(20));
        let p50 = s.percentile(50.0);
        assert!(p50 >= ms(19) && p50 <= ms(21), "{p50}");
        assert_eq!(s.percentile(100.0), ms(30));
        // Clones answer queries independently.
        let c = s.clone();
        assert_eq!(c.percentile(0.0), ms(10));
    }

    #[test]
    fn meter_rates() {
        let mut m = Meter::new();
        for _ in 0..500 {
            m.record(4096);
        }
        assert_eq!(m.count(), 500);
        assert_eq!(m.bytes(), 500 * 4096);
        let iops = m.rate(SimDuration::from_secs(5));
        assert!((iops - 100.0).abs() < 1e-9);
        let bw = m.throughput(SimDuration::from_secs(5));
        assert!((bw - 409_600.0).abs() < 1e-6);
        assert_eq!(m.rate(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn timeline_buckets() {
        let mut t = Timeline::new(SimDuration::from_secs(1));
        t.record(SimTime::from_nanos(100));
        t.record(SimTime::from_nanos(999_999_999));
        t.record(SimTime::from_nanos(1_000_000_000));
        t.record(SimTime::from_nanos(3_500_000_000));
        assert_eq!(t.series(), &[2, 1, 0, 1]);
        assert!((t.mean_over(0, 2) - 1.5).abs() < 1e-9);
        assert_eq!(t.mean_over(5, 9), 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0731).to_string(), "7.3%");
    }
}

//! Sharded multi-core execution: conservative-lookahead parallel DES.
//!
//! A fleet-scale run partitions the topology by rack and gives every rack
//! its own event loop (a [`ShardSim`]). Racks only interact through
//! inter-rack links, whose latency is a *lookahead bound*: an event
//! executed at time `t` cannot affect another shard before `t + L`. The
//! [`ShardedExecutor`] exploits that with the classic conservative
//! (CMB-style) round protocol:
//!
//! 1. compute `global_next`, the earliest pending event across all
//!    shards;
//! 2. let every shard run its local events *strictly before*
//!    `global_next + L` in parallel, buffering cross-shard messages in an
//!    [`Outbox`];
//! 3. route the buffered messages in globally sorted order, then repeat.
//!
//! Strict `<` matters: an event exactly at `global_next` may emit a
//! message arriving exactly at `global_next + L`, which must be delivered
//! before any shard reaches that instant.
//!
//! # Determinism
//!
//! Equal seeds stay byte-identical regardless of worker-thread count:
//!
//! * the round bounds depend only on event timestamps, never on thread
//!   scheduling;
//! * each shard is single-threaded within a round, so its internal event
//!   order is the sequential order;
//! * cross-shard messages are injected in sorted
//!   `(arrival, sender key, source shard, emission index)` order — a
//!   total order derived only from simulation state — so every shard's
//!   incoming FIFO sequence numbers are reproducible.
//!
//! Worker threads merely multiplex shards (shard `i` belongs to worker
//! `i % threads`); moving a shard to a different worker changes wall
//! clock, not results. Merged outputs (traces, stats) are returned as the
//! shard vector in shard-id order for the caller to concatenate.

use std::sync::mpsc;

use crate::{SimDuration, SimTime};

/// A cross-shard message buffered during a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMsg<M> {
    /// Simulation instant at which the message arrives at `dest`.
    pub at: SimTime,
    /// Destination shard id.
    pub dest: usize,
    /// Sender-supplied ordering key, compared before the source shard id
    /// when same-instant messages are injected. Deriving it from
    /// simulation state (e.g. source *rack* id and a per-rack counter)
    /// makes injection order independent of how racks are packed into
    /// shards; `0` is fine when the shard layout is fixed.
    pub key: u64,
    /// Payload.
    pub msg: M,
}

/// Collects a shard's outgoing cross-shard messages during
/// [`ShardSim::run_until`].
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<ShardMsg<M>>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Buffers a message for `dest`, arriving at instant `at`, ordered
    /// among same-instant messages by `key` (see [`ShardMsg::key`]).
    ///
    /// `at` must be at least the emitting event's time plus the
    /// executor's lookahead (the inter-shard link latency) — the protocol
    /// relies on it and the executor asserts it per round.
    pub fn send(&mut self, dest: usize, at: SimTime, key: u64, msg: M) {
        self.msgs.push(ShardMsg { at, dest, key, msg });
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// One partition (rack) of a sharded simulation.
///
/// Implementations wrap their own [`EventQueue`](crate::EventQueue),
/// state, and trace sink; the executor only needs the three scheduling
/// hooks below.
pub trait ShardSim: Send {
    /// Payload carried between shards.
    type Msg: Send;

    /// The instant of the earliest pending local event, if any.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Runs every local event with time **strictly before** `bound`,
    /// buffering cross-shard sends into `outbox`.
    fn run_until(&mut self, bound: SimTime, outbox: &mut Outbox<Self::Msg>);

    /// Injects a message from another shard, arriving at instant `at`.
    ///
    /// Calls arrive in globally sorted `(at, sender key, source shard,
    /// emission index)` order; implementations typically just push an
    /// event.
    fn deliver(&mut self, at: SimTime, msg: Self::Msg);
}

/// Runs a set of [`ShardSim`]s to completion on a pool of OS threads.
///
/// See the module docs for the protocol and determinism argument.
pub struct ShardedExecutor {
    lookahead: SimDuration,
    threads: usize,
}

/// Per-round work order sent to a worker.
enum Cmd<M> {
    /// Deliver the bundled messages, then run owned shards to `bound`.
    Round {
        bound: SimTime,
        /// `(dest shard, arrival, msg)` in global injection order.
        inbox: Vec<(usize, SimTime, M)>,
    },
    Done,
}

/// A worker's report after a round: per owned shard, the next pending
/// time and the outbox contents (tagged with the emission index).
struct Report<M> {
    worker: usize,
    /// `(shard id, next_time)` for each owned shard.
    next: Vec<(usize, Option<SimTime>)>,
    /// `(source shard, emission index, msg)` for each buffered message.
    sent: Vec<(usize, usize, ShardMsg<M>)>,
}

impl ShardedExecutor {
    /// Creates an executor with the given lookahead (the minimum
    /// inter-shard latency) and worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero (the conservative protocol cannot
    /// make progress without it) or `threads` is zero.
    pub fn new(lookahead: SimDuration, threads: usize) -> Self {
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative sync needs a positive lookahead"
        );
        assert!(threads > 0, "need at least one worker thread");
        ShardedExecutor { lookahead, threads }
    }

    /// Runs every shard until all local events at or before `end` (and
    /// every message they trigger) have executed, then returns the shards
    /// in shard-id order.
    pub fn run<S: ShardSim>(&self, mut shards: Vec<S>, end: SimTime) -> Vec<S> {
        if shards.is_empty() {
            return shards;
        }
        let threads = self.threads.min(shards.len());
        let lookahead = self.lookahead;
        // Shard i lives on worker i % threads for the whole run.
        let shard_ids: Vec<Vec<usize>> = (0..threads)
            .map(|w| (w..shards.len()).step_by(threads).collect())
            .collect();
        let mut owned: Vec<Vec<(usize, S)>> = (0..threads).map(|_| Vec::new()).collect();
        for (id, shard) in shards.drain(..).enumerate().rev() {
            owned[id % threads].push((id, shard));
        }
        for set in &mut owned {
            set.reverse(); // ascending shard id within each worker
        }

        let mut finished: Vec<Option<(usize, S)>> = Vec::new();
        std::thread::scope(|scope| {
            let (report_tx, report_rx) = mpsc::channel::<Report<S::Msg>>();
            let mut cmd_txs = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            for (worker, mut set) in owned.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<S::Msg>>();
                cmd_txs.push(cmd_tx);
                let report_tx = report_tx.clone();
                handles.push(scope.spawn(move || {
                    // Initial report so the coordinator can seed the
                    // first round's global minimum.
                    let mut outbox = Outbox::new();
                    let next = set.iter_mut().map(|(id, s)| (*id, s.next_time())).collect();
                    report_tx
                        .send(Report {
                            worker,
                            next,
                            sent: Vec::new(),
                        })
                        .expect("coordinator alive");
                    while let Ok(Cmd::Round { bound, inbox }) = cmd_rx.recv() {
                        let mut sent = Vec::new();
                        for (dest, at, msg) in inbox {
                            let (_, shard) = set
                                .iter_mut()
                                .find(|(id, _)| *id == dest)
                                .expect("routed to owner");
                            shard.deliver(at, msg);
                        }
                        let mut next = Vec::with_capacity(set.len());
                        for (id, shard) in set.iter_mut() {
                            shard.run_until(bound, &mut outbox);
                            for (emit_idx, m) in outbox.msgs.drain(..).enumerate() {
                                debug_assert!(
                                    m.at >= bound,
                                    "cross-shard message undercuts the lookahead bound"
                                );
                                sent.push((*id, emit_idx, m));
                            }
                            next.push((*id, shard.next_time()));
                        }
                        report_tx
                            .send(Report { worker, next, sent })
                            .expect("coordinator alive");
                    }
                    set
                }));
            }
            drop(report_tx);

            // Coordinator: global-barrier rounds.
            let mut next_times: Vec<Option<SimTime>> =
                vec![None; shard_ids.iter().map(Vec::len).sum()];
            let mut round_inbox: Vec<(usize, usize, ShardMsg<S::Msg>)> = Vec::new();
            let await_reports =
                |round_inbox: &mut Vec<(usize, usize, ShardMsg<S::Msg>)>,
                 next_times: &mut Vec<Option<SimTime>>| {
                    for _ in 0..threads {
                        let report = report_rx.recv().expect("workers alive");
                        let _ = report.worker;
                        for (id, t) in report.next {
                            next_times[id] = t;
                        }
                        round_inbox.extend(report.sent);
                    }
                };
            await_reports(&mut round_inbox, &mut next_times);

            loop {
                // The horizon is the earliest thing that can still happen:
                // the minimum over local queues AND in-flight message
                // arrivals. An in-flight message can precede every local
                // event, and its consequences (delivered at round start,
                // below) may emit new messages as early as `arrival + L` —
                // so the bound must not outrun `arrival + L` either.
                let global_next = next_times.iter().flatten().min().copied();
                let inflight_next = round_inbox.iter().map(|(_, _, m)| m.at).min();
                let horizon = match [global_next, inflight_next].into_iter().flatten().min() {
                    Some(t) if t <= end => t,
                    // Nothing left at or before `end` (later arrivals can
                    // only schedule work past `end`).
                    _ => break,
                };
                let bound = SimTime::from_nanos(
                    horizon
                        .as_nanos()
                        .saturating_add(lookahead.as_nanos())
                        .min(end.as_nanos().saturating_add(1)),
                );
                // Total injection order: (arrival, sender key, source
                // shard, emission index) — reproducible from simulation
                // state alone, never from thread timing.
                round_inbox.sort_by_key(|(src, emit_idx, m)| (m.at, m.key, *src, *emit_idx));
                let mut inboxes: Vec<Vec<(usize, SimTime, S::Msg)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (_, _, m) in round_inbox.drain(..) {
                    assert!(m.dest < next_times.len(), "message to unknown shard");
                    inboxes[m.dest % threads].push((m.dest, m.at, m.msg));
                }
                for (w, inbox) in inboxes.into_iter().enumerate() {
                    cmd_txs[w]
                        .send(Cmd::Round { bound, inbox })
                        .expect("worker alive");
                }
                await_reports(&mut round_inbox, &mut next_times);
            }

            for tx in &cmd_txs {
                let _ = tx.send(Cmd::Done);
            }
            for handle in handles {
                for entry in handle.join().expect("worker panicked") {
                    finished.push(Some(entry));
                }
            }
        });

        // Return in shard-id order regardless of worker ownership.
        let mut out: Vec<Option<S>> = (0..finished.len()).map(|_| None).collect();
        for entry in finished.into_iter().flatten() {
            let (id, shard) = entry;
            out[id] = Some(shard);
        }
        out.into_iter()
            .map(|s| s.expect("every shard returned"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    /// A toy shard: a queue of `(time, value)` events; every multiple-of-k
    /// value forwards `value + 1` to the next shard after `latency`.
    struct Toy {
        id: usize,
        shards: usize,
        latency: SimDuration,
        q: EventQueue<u64>,
        log: Vec<(u64, u64)>, // (time ns, value)
    }

    impl ShardSim for Toy {
        type Msg = u64;

        fn next_time(&mut self) -> Option<SimTime> {
            self.q.peek_time()
        }

        fn run_until(&mut self, bound: SimTime, outbox: &mut Outbox<u64>) {
            while let Some(t) = self.q.peek_time() {
                if t >= bound {
                    break;
                }
                let (t, v) = self.q.pop().expect("peeked");
                self.log.push((t.as_nanos(), v));
                if v % 3 == 0 {
                    outbox.send((self.id + 1) % self.shards, t + self.latency, 0, v + 1);
                }
            }
        }

        fn deliver(&mut self, at: SimTime, msg: u64) {
            self.q.push(at, msg);
        }
    }

    fn run_toy(shards: usize, threads: usize) -> Vec<Vec<(u64, u64)>> {
        let latency = SimDuration::from_micros(5);
        let mut sims: Vec<Toy> = (0..shards)
            .map(|id| Toy {
                id,
                shards,
                latency,
                q: EventQueue::new(),
                log: Vec::new(),
            })
            .collect();
        for (id, sim) in sims.iter_mut().enumerate() {
            for k in 0..20u64 {
                sim.q
                    .push(SimTime::from_nanos(1 + k * 700 + id as u64), k * 3);
            }
        }
        let exec = ShardedExecutor::new(latency, threads);
        let done = exec.run(sims, SimTime::from_millis(10));
        done.into_iter().map(|s| s.log).collect()
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = run_toy(4, 1);
        assert_eq!(base, run_toy(4, 2));
        assert_eq!(base, run_toy(4, 4));
        // Messages actually crossed shards.
        assert!(base.iter().all(|log| log.len() > 20));
    }

    #[test]
    fn single_shard_matches_sequential() {
        let logs = run_toy(1, 1);
        let mut sorted = logs[0].clone();
        sorted.sort();
        assert_eq!(logs[0], sorted, "events ran in time order");
    }

    #[test]
    fn events_at_end_instant_run() {
        let mut sims = vec![Toy {
            id: 0,
            shards: 1,
            latency: SimDuration::from_micros(1),
            q: EventQueue::new(),
            log: Vec::new(),
        }];
        sims[0].q.push(SimTime::from_millis(10), 1);
        let exec = ShardedExecutor::new(SimDuration::from_micros(1), 1);
        let done = exec.run(sims, SimTime::from_millis(10));
        assert_eq!(done[0].log, vec![(10_000_000, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let _ = ShardedExecutor::new(SimDuration::ZERO, 1);
    }
}

//! Virtual time: instants and durations with nanosecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// `SimTime` is a monotonically non-decreasing virtual clock; it has no
/// relation to wall-clock time. Arithmetic with [`SimDuration`] is saturating
/// on underflow and panics on overflow (an overflow indicates a runaway
/// simulation, not a recoverable condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if the instant exceeds `u64::MAX` nanoseconds. (A plain `*`
    /// here would wrap silently in release builds, turning a runaway
    /// instant into a bogus *early* one.)
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000_000) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime::from_millis overflow"),
        }
    }

    /// Creates an instant `s` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if the instant exceeds `u64::MAX` nanoseconds.
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000_000) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime::from_secs overflow"),
        }
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a floating-point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the duration exceeds `u64::MAX` nanoseconds; like the
    /// other constructors it must not wrap in release builds.
    pub const fn from_micros(us: u64) -> Self {
        match us.checked_mul(1_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_micros overflow"),
        }
    }

    /// Creates a duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the duration exceeds `u64::MAX` nanoseconds.
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_millis overflow"),
        }
    }

    /// Creates a duration from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if the duration exceeds `u64::MAX` nanoseconds.
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_secs overflow"),
        }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration seconds: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// The duration it takes to serialize `bytes` bytes onto a link running
    /// at `bits_per_sec`.
    ///
    /// Returns [`SimDuration::ZERO`] for an infinitely fast (`0`) rate, which
    /// callers use to express "no bandwidth limit".
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> Self {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        SimDuration(((bits * 1_000_000_000) / bits_per_sec as u128) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        assert_eq!((t - SimTime::ZERO).as_millis(), 3);
        assert_eq!(
            t - SimDuration::from_millis(1),
            SimTime::from_nanos(2_000_000)
        );
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_nanos(40));
    }

    #[test]
    fn transmission_delay_matches_line_rate() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        let d = SimDuration::transmission(1500, 1_000_000_000);
        assert_eq!(d.as_micros(), 12);
        // Zero rate means "unlimited".
        assert_eq!(SimDuration::transmission(1 << 20, 0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn constructors_accept_boundary_values() {
        // The largest inputs that still fit u64 nanoseconds.
        assert_eq!(
            SimTime::from_millis(u64::MAX / 1_000_000).as_nanos(),
            (u64::MAX / 1_000_000) * 1_000_000
        );
        assert_eq!(
            SimTime::from_secs(u64::MAX / 1_000_000_000).as_nanos(),
            (u64::MAX / 1_000_000_000) * 1_000_000_000
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX / 1_000).as_nanos(),
            (u64::MAX / 1_000) * 1_000
        );
    }

    #[test]
    #[should_panic(expected = "from_millis overflow")]
    fn time_from_millis_overflow_panics() {
        let _ = SimTime::from_millis(u64::MAX / 1_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "from_secs overflow")]
    fn time_from_secs_overflow_panics() {
        let _ = SimTime::from_secs(u64::MAX / 1_000_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "from_micros overflow")]
    fn duration_from_micros_overflow_panics() {
        let _ = SimDuration::from_micros(u64::MAX / 1_000 + 1);
    }

    #[test]
    #[should_panic(expected = "from_millis overflow")]
    fn duration_from_millis_overflow_panics() {
        let _ = SimDuration::from_millis(u64::MAX / 1_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "from_secs overflow")]
    fn duration_from_secs_overflow_panics() {
        let _ = SimDuration::from_secs(u64::MAX / 1_000_000_000 + 1);
    }

    #[test]
    fn duration_sum_and_scale() {
        let parts = [SimDuration::from_micros(1), SimDuration::from_micros(2)];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total.as_micros(), 3);
        assert_eq!((total * 2).as_micros(), 6);
        assert_eq!((total / 3).as_micros(), 1);
    }
}

//! Discrete-event simulation toolkit underpinning the StorM reproduction.
//!
//! The paper evaluates StorM on a 10-machine OpenStack testbed. This crate
//! replaces that hardware with a deterministic discrete-event engine: virtual
//! time ([`SimTime`]), an ordered event queue ([`EventQueue`]), contended
//! resources ([`CpuModel`], [`SerialResource`]) and measurement primitives
//! ([`metrics`]). Higher layers (`storm-net`, `storm-cloud`, `storm-core`)
//! build the network fabric, hosts and middle-boxes on top of these
//! primitives.
//!
//! # Example
//!
//! ```
//! use storm_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(5), "second");
//! q.push(SimTime::ZERO + SimDuration::from_millis(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t.as_micros(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod event;
pub mod fault;
pub mod hist;
pub mod metrics;
mod rng;
pub mod shard;
mod time;
pub mod trace;

pub use cpu::{CpuModel, SerialResource};
pub use event::{CancelToken, EventQueue};
pub use fault::{FaultAction, FaultHook, FaultPoint, FaultSite};
pub use hist::Histogram;
pub use rng::SimRng;
pub use shard::{Outbox, ShardMsg, ShardSim, ShardedExecutor};
pub use time::{SimDuration, SimTime};
pub use trace::{flow_token, req_token, Hop, ReqToken, TraceEvent, TraceHook, TraceSink};

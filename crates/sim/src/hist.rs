//! Log-bucketed duration histogram with `&self` percentile queries.
//!
//! The shared recording primitive behind [`crate::metrics::LatencyStats`]
//! and the telemetry registry. Values are bucketed by power of two with 64
//! linear sub-buckets per power, bounding the relative quantile error to
//! about 1.6% while keeping a record O(1) with no allocation after the
//! bucket table stops growing. Count, sum, min and max are kept exactly,
//! so means are exact and the extreme percentiles clamp to real samples.

use crate::SimDuration;

/// Linear sub-buckets per power of two (2^6).
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

/// A histogram of [`SimDuration`] samples.
///
/// Unlike the sorted-vector recorder it replaces, queries never mutate
/// interior state: percentiles walk the bucket table directly, so shared
/// references (report formatters, `&self` accessors) need no cache or
/// `RefCell`.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for a raw nanosecond value.
fn index_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let p = 63 - v.leading_zeros();
    let group = (p - SUB_BITS + 1) as u64;
    let sub = (v >> (p - SUB_BITS)) & (SUB - 1);
    (group * SUB + sub) as usize
}

/// Lowest raw value mapping to bucket `idx`.
fn lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let group = idx / SUB;
    let sub = idx % SUB;
    (SUB + sub) << (group - 1)
}

/// Width of bucket `idx` in raw units.
fn width_of(idx: usize) -> u64 {
    let group = idx as u64 / SUB;
    if group == 0 {
        1
    } else {
        1 << (group - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let v = d.as_nanos();
        let idx = index_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.sum += v as u128;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> SimDuration {
        SimDuration::from_nanos(u64::try_from(self.sum).unwrap_or(u64::MAX))
    }

    /// Smallest sample (exact), or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.min)
    }

    /// Largest sample (exact), or zero when empty.
    pub fn max(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.max)
    }

    /// Exact arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / self.count as u128) as u64)
    }

    /// Value at quantile `q` in `[0, 1]`, or zero when empty.
    ///
    /// The result is the midpoint of the bucket holding the sample of rank
    /// `ceil(q * count)`, clamped into `[min, max]`; `q <= 0` returns the
    /// exact minimum and `q >= 1` the exact maximum.
    ///
    /// A NaN quantile is a caller bug (it compares false against both
    /// guards, and `NaN * count` poisons the rank): debug builds panic;
    /// release builds clamp to the maximum, the conservative reading for
    /// a tail-latency query.
    pub fn value_at_quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        if q.is_nan() {
            debug_assert!(false, "quantile is NaN");
            return self.max();
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let mid = lower_bound(idx) + width_of(idx) / 2;
                return SimDuration::from_nanos(mid.clamp(self.min, self.max));
            }
        }
        self.max()
    }

    /// Percentile in `[0, 100]` — see [`value_at_quantile`](Self::value_at_quantile).
    pub fn percentile(&self, p: f64) -> SimDuration {
        self.value_at_quantile(p / 100.0)
    }

    /// Number of samples at or below `threshold`.
    ///
    /// Samples in the bucket straddling the threshold count as "below"
    /// when the bucket midpoint is — consistent with
    /// [`value_at_quantile`](Self::value_at_quantile) reporting bucket
    /// midpoints, so `count_at_or_below(value_at_quantile(q))` is never
    /// less than `ceil(q * count)`.
    pub fn count_at_or_below(&self, threshold: SimDuration) -> u64 {
        let t = threshold.as_nanos();
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let mid = lower_bound(idx) + width_of(idx) / 2;
            if mid.clamp(self.min, self.max) <= t {
                cum += n;
            }
        }
        cum
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (idx, &n) in other.buckets.iter().enumerate() {
            self.buckets[idx] += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: SimDuration, b: SimDuration, rel: f64) -> bool {
        let (a, b) = (a.as_nanos() as f64, b.as_nanos() as f64);
        (a - b).abs() <= rel * b.max(1.0)
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(SimDuration::from_nanos(v));
        }
        // Values below the sub-bucket width land in unit buckets.
        assert_eq!(h.value_at_quantile(0.0), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_nanos(SUB - 1));
        assert_eq!(index_of(5), 5);
        assert_eq!(lower_bound(index_of(5)), 5);
    }

    #[test]
    fn index_and_bounds_are_consistent() {
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            1_000_000,
            123_456_789,
            u64::MAX / 2,
        ] {
            let idx = index_of(v);
            let lo = lower_bound(idx);
            let w = width_of(idx);
            assert!(lo <= v && v < lo + w, "v={v} idx={idx} lo={lo} w={w}");
        }
    }

    #[test]
    fn percentiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), SimDuration::from_micros(1));
        assert_eq!(h.max(), SimDuration::from_micros(1000));
        assert_eq!(h.mean(), SimDuration::from_nanos(500_500));
        assert!(close(
            h.percentile(50.0),
            SimDuration::from_micros(500),
            0.02
        ));
        assert!(close(
            h.percentile(99.0),
            SimDuration::from_micros(990),
            0.02
        ));
        assert_eq!(h.percentile(0.0), SimDuration::from_micros(1));
        assert_eq!(h.percentile(100.0), SimDuration::from_micros(1000));
    }

    #[test]
    fn count_at_or_below_tracks_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        assert_eq!(h.count_at_or_below(SimDuration::ZERO), 0);
        assert_eq!(h.count_at_or_below(h.max()), 1000);
        // Consistency with the quantile query: at least q*count samples
        // sit at or below the reported quantile value.
        for q in [0.5, 0.9, 0.99] {
            let v = h.value_at_quantile(q);
            let n = h.count_at_or_below(v);
            assert!(
                n >= (q * 1000.0).ceil() as u64,
                "q={q}: {n} samples below {v}"
            );
        }
        // Small exact buckets behave exactly.
        let mut small = Histogram::new();
        for v in 0..10u64 {
            small.record(SimDuration::from_nanos(v));
        }
        assert_eq!(small.count_at_or_below(SimDuration::from_nanos(4)), 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "quantile is NaN")]
    fn nan_quantile_panics_in_debug() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(5));
        let _ = h.percentile(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_quantile_clamps_to_max_in_release() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(5));
        h.record(SimDuration::from_nanos(9));
        assert_eq!(h.percentile(f64::NAN), h.max());
    }

    #[test]
    fn nan_quantile_on_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.value_at_quantile(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(9));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), SimDuration::from_millis(1));
        assert_eq!(a.max(), SimDuration::from_millis(9));
        assert_eq!(a.mean(), SimDuration::from_millis(5));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.value_at_quantile(0.5), SimDuration::ZERO);
        assert_eq!(h.sum(), SimDuration::ZERO);
    }
}

//! Contended compute resources: multi-core CPUs and single-threaded queues.
//!
//! The paper's performance observations hinge on where cycles are burnt: the
//! virtio copy thread ("a single thread per VM's virtual interface"), the
//! middle-box service logic, dm-crypt in the tenant VM. [`CpuModel`] models a
//! host CPU with `n` cores and per-label busy accounting (to reproduce the
//! Figure 10 utilization breakdown); [`SerialResource`] models a strictly
//! FIFO single-threaded resource (virtio vif queue, SATA disk).

use std::collections::BTreeMap;

use crate::{SimDuration, SimTime};

/// A multi-core CPU with FIFO earliest-free-core scheduling and per-label
/// busy-time accounting.
///
/// Work is non-preemptive: a task occupies the earliest-available core for
/// its full cost. Labels attribute busy time to a logical owner (a VM, the
/// middle-box service, the kernel) for utilization breakdowns.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cores: Vec<SimTime>,
    // Label-keyed BTreeMap: breakdowns iterate this, and utilization
    // reports feed traces, so order must not depend on hasher state.
    busy: BTreeMap<String, SimDuration>,
    total_busy: SimDuration,
}

impl CpuModel {
    /// Creates a CPU with `cores` cores, all idle at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "a CPU needs at least one core");
        CpuModel {
            cores: vec![SimTime::ZERO; cores],
            busy: BTreeMap::new(),
            total_busy: SimDuration::ZERO,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Runs a task costing `cost` cycles-worth of time, submitted at `now`,
    /// on the earliest-available core. Returns the completion instant.
    ///
    /// Busy time is attributed to `label`.
    pub fn run(&mut self, now: SimTime, cost: SimDuration, label: &str) -> SimTime {
        let core = self
            .cores
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("at least one core");
        let start = (*core).max(now);
        let done = start + cost;
        *core = done;
        *self.busy.entry(label.to_owned()).or_default() += cost;
        self.total_busy += cost;
        done
    }

    /// Total busy time attributed to `label`.
    pub fn busy_for(&self, label: &str) -> SimDuration {
        self.busy.get(label).copied().unwrap_or_default()
    }

    /// Busy time across all labels.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Mean utilization (0..=1 per core, so up to `cores()` in total terms)
    /// over the window `[0, horizon]`, expressed as a fraction of total
    /// capacity.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let capacity = horizon.as_nanos() as f64 * self.cores.len() as f64;
        (self.total_busy.as_nanos() as f64 / capacity).min(1.0)
    }

    /// Per-label busy times, in label order (BTreeMap iteration is
    /// already sorted, so no post-sort is needed).
    pub fn breakdown(&self) -> Vec<(String, SimDuration)> {
        self.busy.iter().map(|(k, d)| (k.clone(), *d)).collect()
    }
}

/// A single-threaded FIFO resource: each job starts when the previous one
/// finishes.
///
/// Used for virtio vif copy threads (per-packet cost) and disk service
/// queues. Per the paper, "the virtualization driver ... uses a single
/// thread per VM's virtual interface", which is why intra-host packet
/// transfer dominates routing overhead.
#[derive(Debug, Clone, Default)]
pub struct SerialResource {
    busy_until: SimTime,
    busy_total: SimDuration,
    jobs: u64,
}

impl SerialResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job arriving at `now` with the given `service` time and
    /// returns its completion instant.
    pub fn serve(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        self.busy_total += service;
        self.jobs += 1;
        self.busy_until
    }

    /// The instant at which the resource next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total service time performed.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }
    fn at(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000)
    }

    #[test]
    fn single_core_serializes() {
        let mut cpu = CpuModel::new(1);
        assert_eq!(cpu.run(at(0), us(10), "a"), at(10));
        // Submitted while busy: queued behind the first task.
        assert_eq!(cpu.run(at(5), us(10), "b"), at(20));
        // Submitted after idle: starts immediately.
        assert_eq!(cpu.run(at(100), us(1), "a"), at(101));
    }

    #[test]
    fn multi_core_runs_in_parallel() {
        let mut cpu = CpuModel::new(2);
        assert_eq!(cpu.run(at(0), us(10), "a"), at(10));
        assert_eq!(cpu.run(at(0), us(10), "b"), at(10));
        // Third task waits for the earliest core.
        assert_eq!(cpu.run(at(0), us(10), "c"), at(20));
    }

    #[test]
    fn accounting_by_label() {
        let mut cpu = CpuModel::new(4);
        cpu.run(at(0), us(10), "vm");
        cpu.run(at(0), us(30), "vm");
        cpu.run(at(0), us(5), "kernel");
        assert_eq!(cpu.busy_for("vm"), us(40));
        assert_eq!(cpu.busy_for("kernel"), us(5));
        assert_eq!(cpu.busy_for("absent"), SimDuration::ZERO);
        assert_eq!(cpu.total_busy(), us(45));
        let breakdown = cpu.breakdown();
        assert_eq!(breakdown[0].0, "kernel");
        assert_eq!(breakdown[1].0, "vm");
    }

    #[test]
    fn utilization_fraction_of_capacity() {
        let mut cpu = CpuModel::new(2);
        cpu.run(at(0), us(50), "x");
        // 50us busy out of 2 cores * 100us = 25%.
        let u = cpu.utilization(at(100));
        assert!((u - 0.25).abs() < 1e-9, "{u}");
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CpuModel::new(0);
    }

    #[test]
    fn serial_resource_fifo() {
        let mut r = SerialResource::new();
        assert_eq!(r.serve(at(0), us(3)), at(3));
        assert_eq!(r.serve(at(1), us(3)), at(6));
        assert_eq!(r.serve(at(100), us(3)), at(103));
        assert_eq!(r.jobs(), 3);
        assert_eq!(r.busy_total(), us(9));
        assert!(r.utilization(at(103)) > 0.08);
    }
}

//! Property-based tests for the simulation toolkit.

use proptest::prelude::*;
use storm_sim::{CpuModel, EventQueue, SerialResource, SimDuration, SimTime};

proptest! {
    /// The event queue always pops in non-decreasing time order, and ties
    /// preserve insertion order (determinism).
    #[test]
    fn queue_orders_any_schedule(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((prev_at, prev_i)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(i > prev_i, "FIFO tie-break violated");
                }
            }
            last = Some((at, i));
        }
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    /// A serial resource never overlaps jobs and conserves busy time.
    #[test]
    fn serial_resource_conserves_time(jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut r = SerialResource::new();
        let mut prev_done = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for &(arrive, service) in &jobs {
            let arrive = SimTime::from_nanos(arrive);
            let service = SimDuration::from_nanos(service);
            let done = r.serve(arrive, service);
            // Starts no earlier than both the arrival and the previous job.
            prop_assert!(done >= arrive + service);
            prop_assert!(done >= prev_done + service);
            prev_done = done;
            total += service;
        }
        prop_assert_eq!(r.busy_total(), total);
        prop_assert_eq!(r.jobs(), jobs.len() as u64);
    }

    /// An n-core CPU is never busier than n× wall-clock and completion
    /// times respect submission order per label accounting.
    #[test]
    fn cpu_capacity_bound(cores in 1usize..8, jobs in prop::collection::vec(1u64..200, 1..100)) {
        let mut cpu = CpuModel::new(cores);
        let mut latest = SimTime::ZERO;
        for &cost in &jobs {
            let done = cpu.run(SimTime::ZERO, SimDuration::from_micros(cost), "w");
            latest = latest.max(done);
        }
        let total: u64 = jobs.iter().sum::<u64>() * 1000;
        prop_assert_eq!(cpu.total_busy().as_nanos(), total);
        // Makespan is at least total/cores (can't beat perfect packing).
        prop_assert!(latest.as_nanos() * cores as u64 >= total);
        // And utilization never exceeds 1.
        prop_assert!(cpu.utilization(latest) <= 1.0 + 1e-9);
    }
}

//! Property-based tests for the simulation toolkit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use storm_sim::{CancelToken, CpuModel, EventQueue, SerialResource, SimDuration, SimTime};

/// The event queue the timer wheel replaced, kept as the differential
/// reference model: a binary heap ordered by `(time, push sequence)`.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    live: std::collections::BTreeMap<u64, u64>, // seq -> at (for cancels)
    seq: u64,
}

impl HeapModel {
    fn push(&mut self, at: u64) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live.insert(seq, at);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        // Heap entries are tombstoned lazily: pop skips dead seqs.
        self.live.remove(&seq).is_some()
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if self.live.remove(&seq).is_some() {
                return Some((at, seq));
            }
        }
        None
    }
}

/// One step of the differential driver.
#[derive(Debug, Clone)]
enum Op {
    Push {
        at: u64,
    },
    /// Cancel the i-th oldest still-cancelable push (mod live count).
    Cancel {
        nth: usize,
    },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Pushes dominate (three arms); deltas span every wheel level, from
    // same-tick up past the ~73-minute horizon into the far list.
    prop_oneof![
        (0u64..20_000_000_000).prop_map(|at| Op::Push { at }),
        (0u64..5_000_000_000_000).prop_map(|at| Op::Push { at }),
        (0u64..3_000).prop_map(|at| Op::Push { at }),
        (0usize..64).prop_map(|nth| Op::Cancel { nth }),
        Just(Op::Pop),
    ]
}

proptest! {
    /// Differential test: the timer wheel agrees with the old
    /// `BinaryHeap` queue on every interleaving of pushes, cancels, and
    /// pops — identical pop order (time AND sequence) and identical
    /// cancel outcomes.
    #[test]
    fn wheel_matches_heap_reference(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap = HeapModel::default();
        // seq -> wheel token, for cancel targeting (kept sorted by seq).
        let mut tokens: Vec<(u64, CancelToken)> = Vec::new();
        let mut floor = 0u64; // wheel pops must not go back in time
        for op in ops {
            match op {
                Op::Push { at } => {
                    // The engine never schedules into the past; mirror it.
                    let at = floor + at;
                    let seq = heap.push(at);
                    let tok = wheel.push_cancelable(SimTime::from_nanos(at), seq);
                    tokens.push((seq, tok));
                }
                Op::Cancel { nth } => {
                    if tokens.is_empty() {
                        continue;
                    }
                    let (seq, tok) = tokens.remove(nth % tokens.len());
                    let wheel_hit = wheel.cancel(tok).is_some();
                    let heap_hit = heap.cancel(seq);
                    prop_assert_eq!(wheel_hit, heap_hit, "cancel outcome diverged");
                }
                Op::Pop => {
                    let expect = heap.pop();
                    let got = wheel.pop().map(|(t, seq)| (t.as_nanos(), seq));
                    prop_assert_eq!(got, expect, "pop order diverged");
                    if let Some((at, seq)) = got {
                        floor = at;
                        tokens.retain(|(s, _)| *s != seq);
                    }
                }
            }
        }
        // Drain: the remaining contents must match exactly too.
        loop {
            let expect = heap.pop();
            let got = wheel.pop().map(|(t, seq)| (t.as_nanos(), seq));
            prop_assert_eq!(got, expect, "drain diverged");
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// The event queue always pops in non-decreasing time order, and ties
    /// preserve insertion order (determinism).
    #[test]
    fn queue_orders_any_schedule(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((prev_at, prev_i)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(i > prev_i, "FIFO tie-break violated");
                }
            }
            last = Some((at, i));
        }
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    /// A serial resource never overlaps jobs and conserves busy time.
    #[test]
    fn serial_resource_conserves_time(jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut r = SerialResource::new();
        let mut prev_done = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for &(arrive, service) in &jobs {
            let arrive = SimTime::from_nanos(arrive);
            let service = SimDuration::from_nanos(service);
            let done = r.serve(arrive, service);
            // Starts no earlier than both the arrival and the previous job.
            prop_assert!(done >= arrive + service);
            prop_assert!(done >= prev_done + service);
            prev_done = done;
            total += service;
        }
        prop_assert_eq!(r.busy_total(), total);
        prop_assert_eq!(r.jobs(), jobs.len() as u64);
    }

    /// An n-core CPU is never busier than n× wall-clock and completion
    /// times respect submission order per label accounting.
    #[test]
    fn cpu_capacity_bound(cores in 1usize..8, jobs in prop::collection::vec(1u64..200, 1..100)) {
        let mut cpu = CpuModel::new(cores);
        let mut latest = SimTime::ZERO;
        for &cost in &jobs {
            let done = cpu.run(SimTime::ZERO, SimDuration::from_micros(cost), "w");
            latest = latest.max(done);
        }
        let total: u64 = jobs.iter().sum::<u64>() * 1000;
        prop_assert_eq!(cpu.total_busy().as_nanos(), total);
        // Makespan is at least total/cores (can't beat perfect packing).
        prop_assert!(latest.as_nanos() * cores as u64 >= total);
        // And utilization never exceeds 1.
        prop_assert!(cpu.utilization(latest) <= 1.0 + 1e-9);
    }
}

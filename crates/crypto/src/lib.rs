//! From-scratch ciphers for StorM's encryption middle-box.
//!
//! The paper's encryption service uses dm-crypt (AES, 256-bit keys) and the
//! API-overhead experiments use a byte-wise stream cipher. No external
//! crypto crates are in this workspace's allowed dependency set, so the
//! primitives are implemented here and validated against published test
//! vectors (FIPS-197 for AES, RFC 7539 for ChaCha20):
//!
//! * [`Aes128`] / [`Aes256`] — the AES block cipher.
//! * [`AesXts`] — XTS sector mode, the dm-crypt default, used by the
//!   encryption middle-box for data-at-rest (Figures 10 and 11).
//! * [`ChaCha20`] — a position-seekable stream cipher, used as the paper's
//!   "stream cipher service that operates on each bit of the raw data"
//!   (Figures 5, 6, 8 and 9).
//!
//! These implementations favour clarity over speed and are **not**
//! side-channel hardened; they exist to make the reproduction
//! self-contained, not for production cryptography.
//!
//! # Example
//!
//! ```
//! use storm_crypto::AesXts;
//!
//! let xts = AesXts::new(&[0x11; 32], &[0x22; 32]);
//! let mut sector = vec![0u8; 512];
//! sector[0..4].copy_from_slice(b"data");
//! let original = sector.clone();
//! xts.encrypt_sector(7, &mut sector);
//! assert_ne!(sector, original);
//! xts.decrypt_sector(7, &mut sector);
//! assert_eq!(sector, original);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aes;
mod chacha;
mod xts;

pub use aes::{Aes128, Aes256, BLOCK_SIZE};
pub use chacha::ChaCha20;
pub use xts::AesXts;

//! AES-XTS sector encryption (IEEE 1619), dm-crypt's default mode.
//!
//! XTS is length-preserving and tweakable by sector number, which is why
//! disk encryptors use it: each 512-byte sector encrypts independently, so
//! random sector I/O needs no chaining state. The StorM encryption
//! middle-box applies it per SCSI sector.

use crate::aes::{Aes256, BLOCK_SIZE};

/// AES-256-XTS for 512-byte sectors.
#[derive(Debug, Clone)]
pub struct AesXts {
    data_cipher: Aes256,
    tweak_cipher: Aes256,
}

impl AesXts {
    /// Creates an XTS cipher from a data key and a tweak key.
    pub fn new(data_key: &[u8; 32], tweak_key: &[u8; 32]) -> Self {
        AesXts {
            data_cipher: Aes256::new(data_key),
            tweak_cipher: Aes256::new(tweak_key),
        }
    }

    /// Derives both keys from a single 64-byte master key, as dm-crypt's
    /// `aes-xts-plain64` does.
    pub fn from_master_key(master: &[u8; 64]) -> Self {
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k1.copy_from_slice(&master[..32]);
        k2.copy_from_slice(&master[32..]);
        Self::new(&k1, &k2)
    }

    fn initial_tweak(&self, sector: u64) -> [u8; BLOCK_SIZE] {
        // "plain64" tweak: little-endian sector number.
        let mut t = [0u8; BLOCK_SIZE];
        t[..8].copy_from_slice(&sector.to_le_bytes());
        self.tweak_cipher.encrypt_block(&mut t);
        t
    }

    /// Multiplies the tweak by alpha in GF(2^128) (little-endian convention).
    fn next_tweak(t: &mut [u8; BLOCK_SIZE]) {
        let mut carry = 0u8;
        for b in t.iter_mut() {
            let new_carry = *b >> 7;
            *b = (*b << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            t[0] ^= 0x87;
        }
    }

    fn process(&self, sector: u64, data: &mut [u8], encrypt: bool) {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(BLOCK_SIZE),
            "XTS data must be a positive multiple of {BLOCK_SIZE} bytes, got {}",
            data.len()
        );
        let mut tweak = self.initial_tweak(sector);
        for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
            let mut block = [0u8; BLOCK_SIZE];
            block.copy_from_slice(chunk);
            for (b, t) in block.iter_mut().zip(&tweak) {
                *b ^= t;
            }
            if encrypt {
                self.data_cipher.encrypt_block(&mut block);
            } else {
                self.data_cipher.decrypt_block(&mut block);
            }
            for (b, t) in block.iter_mut().zip(&tweak) {
                *b ^= t;
            }
            chunk.copy_from_slice(&block);
            Self::next_tweak(&mut tweak);
        }
    }

    /// Encrypts a sector in place.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or not a multiple of 16 bytes.
    pub fn encrypt_sector(&self, sector: u64, data: &mut [u8]) {
        self.process(sector, data, true);
    }

    /// Decrypts a sector in place.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or not a multiple of 16 bytes.
    pub fn decrypt_sector(&self, sector: u64, data: &mut [u8]) {
        self.process(sector, data, false);
    }

    /// Encrypts a run of consecutive sectors in place. `data` must be a
    /// whole number of `sector_bytes`-sized sectors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of `sector_bytes` or
    /// `sector_bytes` is not a positive multiple of 16.
    pub fn encrypt_run(&self, first_sector: u64, sector_bytes: usize, data: &mut [u8]) {
        self.run(first_sector, sector_bytes, data, true);
    }

    /// Decrypts a run of consecutive sectors in place.
    ///
    /// # Panics
    ///
    /// Same conditions as [`AesXts::encrypt_run`].
    pub fn decrypt_run(&self, first_sector: u64, sector_bytes: usize, data: &mut [u8]) {
        self.run(first_sector, sector_bytes, data, false);
    }

    fn run(&self, first_sector: u64, sector_bytes: usize, data: &mut [u8], encrypt: bool) {
        assert!(
            sector_bytes > 0 && sector_bytes.is_multiple_of(BLOCK_SIZE),
            "sector size must be a positive multiple of {BLOCK_SIZE}"
        );
        assert!(
            data.len().is_multiple_of(sector_bytes),
            "data length {} is not a whole number of {sector_bytes}-byte sectors",
            data.len()
        );
        for (i, sector) in data.chunks_exact_mut(sector_bytes).enumerate() {
            self.process(first_sector + i as u64, sector, encrypt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> AesXts {
        let mut master = [0u8; 64];
        for (i, b) in master.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        AesXts::from_master_key(&master)
    }

    #[test]
    fn round_trip_sector() {
        let xts = cipher();
        let mut data: Vec<u8> = (0..512).map(|i| (i % 256) as u8).collect();
        let orig = data.clone();
        xts.encrypt_sector(42, &mut data);
        assert_ne!(data, orig);
        xts.decrypt_sector(42, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn sector_number_matters() {
        let xts = cipher();
        let plain = vec![0u8; 512];
        let mut a = plain.clone();
        let mut b = plain.clone();
        xts.encrypt_sector(1, &mut a);
        xts.encrypt_sector(2, &mut b);
        assert_ne!(a, b);
        // Decrypting with the wrong sector yields garbage, not plaintext.
        let mut c = a.clone();
        xts.decrypt_sector(2, &mut c);
        assert_ne!(c, plain);
    }

    #[test]
    fn identical_blocks_within_sector_differ() {
        // ECB would leak identical blocks; XTS's per-block tweak must not.
        let xts = cipher();
        let mut data = vec![0xABu8; 512];
        xts.encrypt_sector(9, &mut data);
        assert_ne!(data[0..16], data[16..32]);
    }

    #[test]
    fn multi_sector_run_equals_individual_sectors() {
        let xts = cipher();
        let mut run: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let mut individually = run.clone();
        xts.encrypt_run(10, 512, &mut run);
        xts.encrypt_sector(10, &mut individually[..512]);
        xts.encrypt_sector(11, &mut individually[512..]);
        assert_eq!(run, individually);
        xts.decrypt_run(10, 512, &mut run);
        assert_eq!(&run[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn tweak_doubling_carries() {
        let mut t = [0u8; 16];
        t[15] = 0x80;
        AesXts::next_tweak(&mut t);
        // The carry out of the top bit folds back as 0x87.
        assert_eq!(t[0], 0x87);
        assert_eq!(t[15], 0x00);
        let mut t2 = [1u8; 16];
        AesXts::next_tweak(&mut t2);
        assert_eq!(t2[0], 2);
        assert_eq!(t2[1], 2);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_unaligned_length() {
        cipher().encrypt_sector(0, &mut [0u8; 100]);
    }
}

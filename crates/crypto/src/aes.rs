//! The AES block cipher (FIPS-197), 128- and 256-bit keys.
//!
//! The S-box is derived at first use from its definition (multiplicative
//! inverse in GF(2^8) followed by the affine transform) rather than
//! transcribed, eliminating a whole class of copy errors.

use std::sync::OnceLock;

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for (i, slot) in sbox.iter_mut().enumerate() {
            let inv = gf_inv(i as u8);
            // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
            let s = inv
                ^ inv.rotate_left(1)
                ^ inv.rotate_left(2)
                ^ inv.rotate_left(3)
                ^ inv.rotate_left(4)
                ^ 0x63;
            *slot = s;
            inv_sbox[s as usize] = i as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

/// Round constants for key expansion.
const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D, 0x9A,
];

/// An expanded AES key schedule, generic over key length.
#[derive(Clone)]
struct KeySchedule {
    round_keys: Vec<[u8; 16]>,
}

impl KeySchedule {
    fn expand(key: &[u8]) -> Self {
        let nk = key.len() / 4; // words in key: 4, 6 or 8
        let rounds = nk + 6;
        let total_words = 4 * (rounds + 1);
        let t = tables();
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = t.sbox[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        KeySchedule { round_keys }
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

/// State is column-major: byte `r + 4c` is row `r`, column `c`.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

fn encrypt_block(ks: &KeySchedule, block: &mut [u8; 16]) {
    let t = tables();
    let rounds = ks.round_keys.len() - 1;
    add_round_key(block, &ks.round_keys[0]);
    for r in 1..rounds {
        sub_bytes(block, &t.sbox);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, &ks.round_keys[r]);
    }
    sub_bytes(block, &t.sbox);
    shift_rows(block);
    add_round_key(block, &ks.round_keys[rounds]);
}

fn decrypt_block(ks: &KeySchedule, block: &mut [u8; 16]) {
    let t = tables();
    let rounds = ks.round_keys.len() - 1;
    add_round_key(block, &ks.round_keys[rounds]);
    for r in (1..rounds).rev() {
        inv_shift_rows(block);
        sub_bytes(block, &t.inv_sbox);
        add_round_key(block, &ks.round_keys[r]);
        inv_mix_columns(block);
    }
    inv_shift_rows(block);
    sub_bytes(block, &t.inv_sbox);
    add_round_key(block, &ks.round_keys[0]);
}

macro_rules! aes_variant {
    ($name:ident, $key_len:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone)]
        pub struct $name {
            ks: KeySchedule,
        }

        impl $name {
            /// Expands `key` into a key schedule.
            pub fn new(key: &[u8; $key_len]) -> Self {
                $name {
                    ks: KeySchedule::expand(key),
                }
            }

            /// Encrypts one 16-byte block in place.
            pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
                encrypt_block(&self.ks, block);
            }

            /// Decrypts one 16-byte block in place.
            pub fn decrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
                decrypt_block(&self.ks, block);
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Never expose key material.
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

aes_variant!(Aes128, 16, "AES with a 128-bit key (10 rounds).");
aes_variant!(
    Aes256,
    32,
    "AES with a 256-bit key (14 rounds), as used by dm-crypt in the paper."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        // Canonical spot values from FIPS-197.
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7C);
        assert_eq!(t.sbox[0x53], 0xED);
        assert_eq!(t.sbox[0xFF], 0x16);
        for i in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[i] as usize], i as u8);
        }
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD,
            0xEE, 0xFF,
        ];
        let expect: [u8; 16] = [
            0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
            0xC5, 0x5A,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expect);
        aes.decrypt_block(&mut block);
        let plain: [u8; 16] = core::array::from_fn(|i| ((i as u8) << 4) | i as u8);
        assert_eq!(block, plain);
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| ((i as u8) << 4) | i as u8);
        let expect: [u8; 16] = [
            0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF, 0xEA, 0xFC, 0x49, 0x90, 0x4B, 0x49,
            0x60, 0x89,
        ];
        let aes = Aes256::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expect);
    }

    #[test]
    fn encrypt_decrypt_round_trip_random() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        for _ in 0..50 {
            let mut key = [0u8; 32];
            rng.fill(&mut key[..]);
            let aes = Aes256::new(&key);
            let mut block = [0u8; 16];
            rng.fill(&mut block[..]);
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn debug_does_not_leak_keys() {
        let aes = Aes128::new(&[0xAA; 16]);
        let s = format!("{aes:?}");
        assert!(!s.contains("aa") && !s.contains("AA") && !s.contains("170"));
    }

    #[test]
    fn gf_mul_basics() {
        // x * x = x^2; 0x80 * 2 wraps with the field polynomial.
        assert_eq!(gf_mul(0x02, 0x02), 0x04);
        assert_eq!(gf_mul(0x80, 0x02), 0x1B);
        assert_eq!(gf_mul(0x57, 0x83), 0xC1); // FIPS-197 example 4.2
    }
}

//! The ChaCha20 stream cipher (RFC 7539).
//!
//! Used as the StorM "stream cipher" service in the API-overhead
//! experiments. ChaCha20 is seekable: the keystream for any byte position
//! can be generated independently, which lets the passive-relay service
//! transform packet payloads mid-stream without buffering whole sectors —
//! the keystream position is derived from the absolute byte offset of the
//! data on the volume.

/// ChaCha20 with a 256-bit key and 96-bit nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha20").finish_non_exhaustive()
    }
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher from a 32-byte key and 12-byte nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Produces the 64-byte keystream block for the given block counter.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[0..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs `data` with the keystream starting at absolute byte `offset`
    /// (offset 0 corresponds to block counter 0, byte 0).
    ///
    /// Applying the same call twice restores the original data, and
    /// processing a buffer in arbitrary contiguous pieces yields the same
    /// result as processing it at once — the property the passive-relay
    /// cipher service relies on.
    pub fn apply_keystream_at(&self, offset: u64, data: &mut [u8]) {
        let mut pos = offset;
        let mut i = 0usize;
        while i < data.len() {
            let counter = (pos / 64) as u32;
            let within = (pos % 64) as usize;
            let ks = self.block(counter);
            let n = (64 - within).min(data.len() - i);
            for j in 0..n {
                data[i + j] ^= ks[within + j];
            }
            pos += n as u64;
            i += n;
        }
    }

    /// Encrypts/decrypts `data` in place from keystream position 0.
    pub fn apply_keystream(&self, data: &mut [u8]) {
        self.apply_keystream_at(0, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc7539_quarter_round() {
        // RFC 7539 section 2.1.1.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9B8D6F43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xEA2A92F4);
        assert_eq!(state[1], 0xCB1CF8CE);
        assert_eq!(state[2], 0x4581472E);
        assert_eq!(state[3], 0x5881C4BB);
    }

    #[test]
    fn rfc7539_block_function() {
        // RFC 7539 section 2.3.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4A, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce);
        let block = cipher.block(1);
        let expect_start: [u8; 16] = [
            0x10, 0xF1, 0xE7, 0xE4, 0xD1, 0x3B, 0x59, 0x15, 0x50, 0x0F, 0xDD, 0x1F, 0xA3, 0x20,
            0x71, 0xC4,
        ];
        assert_eq!(&block[..16], &expect_start);
    }

    #[test]
    fn xor_twice_is_identity() {
        let cipher = ChaCha20::new(&[7u8; 32], &[3u8; 12]);
        let mut data: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let orig = data.clone();
        cipher.apply_keystream(&mut data);
        assert_ne!(data, orig);
        cipher.apply_keystream(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn piecewise_equals_whole() {
        // Chunked processing at arbitrary offsets must match one-shot —
        // this is what lets the passive relay cipher packets of any size.
        let cipher = ChaCha20::new(&[9u8; 32], &[1u8; 12]);
        let mut whole: Vec<u8> = (0..500).map(|i| (i * 3 % 256) as u8).collect();
        let mut pieces = whole.clone();
        cipher.apply_keystream_at(123, &mut whole);
        let cuts = [0usize, 1, 63, 64, 65, 200, 450, 500];
        for w in cuts.windows(2) {
            cipher.apply_keystream_at(123 + w[0] as u64, &mut pieces[w[0]..w[1]]);
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn different_nonces_different_streams() {
        let a = ChaCha20::new(&[1u8; 32], &[0u8; 12]);
        let b = ChaCha20::new(&[1u8; 32], &[1u8; 12]);
        assert_ne!(a.block(0), b.block(0));
        assert_ne!(a.block(0), a.block(1));
    }

    #[test]
    fn debug_hides_key() {
        let c = ChaCha20::new(&[0xAB; 32], &[0; 12]);
        assert_eq!(format!("{c:?}"), "ChaCha20 { .. }");
    }
}

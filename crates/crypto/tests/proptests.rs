//! Property-based tests for the cipher implementations.

use proptest::prelude::*;
use storm_crypto::{Aes128, Aes256, AesXts, ChaCha20};

proptest! {
    /// AES-128: decrypt ∘ encrypt = identity for arbitrary keys/blocks.
    #[test]
    fn aes128_round_trip(key in prop::array::uniform16(any::<u8>()),
                         block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes128::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// AES-256 round trip.
    #[test]
    fn aes256_round_trip(key in prop::array::uniform32(any::<u8>()),
                         block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes256::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// Encryption is not the identity (for non-degenerate inputs the
    /// probability of a fixed point is negligible; assert difference).
    #[test]
    fn aes_encryption_changes_data(key in prop::array::uniform32(any::<u8>()),
                                   block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes256::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        prop_assert_ne!(b, block);
    }

    /// XTS: round trip over whole sectors at arbitrary sector numbers.
    #[test]
    fn xts_round_trip(master in prop::collection::vec(any::<u8>(), 64..=64),
                      sector in any::<u64>(),
                      sectors in 1usize..5,
                      seed in any::<u8>()) {
        let mut key = [0u8; 64];
        key.copy_from_slice(&master);
        let xts = AesXts::from_master_key(&key);
        let data: Vec<u8> = (0..sectors * 512).map(|i| (i as u8).wrapping_add(seed)).collect();
        let mut buf = data.clone();
        xts.encrypt_run(sector, 512, &mut buf);
        prop_assert_ne!(&buf, &data);
        xts.decrypt_run(sector, 512, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// XTS: the same plaintext at different sectors yields different
    /// ciphertext (tweak effectiveness).
    #[test]
    fn xts_sector_tweak(sector_a in any::<u64>(), sector_b in any::<u64>()) {
        prop_assume!(sector_a != sector_b);
        let xts = AesXts::from_master_key(&[0x61; 64]);
        let mut a = vec![0u8; 512];
        let mut b = vec![0u8; 512];
        xts.encrypt_sector(sector_a, &mut a);
        xts.encrypt_sector(sector_b, &mut b);
        prop_assert_ne!(a, b);
    }

    /// ChaCha20: applying the keystream twice restores the data, for any
    /// offset.
    #[test]
    fn chacha_involution(key in prop::array::uniform32(any::<u8>()),
                         nonce in prop::array::uniform12(any::<u8>()),
                         offset in 0u64..1_000_000,
                         data in prop::collection::vec(any::<u8>(), 0..512)) {
        let c = ChaCha20::new(&key, &nonce);
        let mut buf = data.clone();
        c.apply_keystream_at(offset, &mut buf);
        c.apply_keystream_at(offset, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// ChaCha20: piecewise processing at arbitrary split points equals
    /// one-shot processing — the property the passive relay depends on.
    #[test]
    fn chacha_piecewise(offset in 0u64..100_000,
                        data in prop::collection::vec(any::<u8>(), 1..400),
                        split in 0usize..400) {
        let split = split.min(data.len());
        let c = ChaCha20::new(&[5u8; 32], &[6u8; 12]);
        let mut whole = data.clone();
        c.apply_keystream_at(offset, &mut whole);
        let mut pieces = data.clone();
        c.apply_keystream_at(offset, &mut pieces[..split]);
        c.apply_keystream_at(offset + split as u64, &mut pieces[split..]);
        prop_assert_eq!(whole, pieces);
    }
}

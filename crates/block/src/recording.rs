//! A block device wrapper that records every access.
//!
//! The tenant VM's filesystem runs synchronously against a
//! [`RecordingDevice`]; the recorded access stream is then replayed through
//! the simulated fabric as iSCSI traffic. This preserves the exact order,
//! addresses and contents of the block accesses the middle-box observes —
//! which is what the semantics-reconstruction experiments (Tables I–III)
//! analyse.

use crate::device::{BlockDevice, BlockError, SECTOR_SIZE};

/// Whether an access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data flowed from the device.
    Read,
    /// Data flowed to the device.
    Write,
}

/// One recorded block access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Read or write.
    pub kind: AccessKind,
    /// Starting sector.
    pub lba: u64,
    /// Number of sectors.
    pub sectors: u64,
    /// Payload for writes (the bytes written); empty for reads.
    pub data: Vec<u8>,
}

impl AccessRecord {
    /// Length of the access in bytes.
    pub fn len_bytes(&self) -> usize {
        self.sectors as usize * SECTOR_SIZE
    }
}

/// Wraps a [`BlockDevice`] and logs every read and write.
#[derive(Debug, Clone, Default)]
pub struct RecordingDevice<D> {
    inner: D,
    log: Vec<AccessRecord>,
    record_reads: bool,
}

impl<D: BlockDevice> RecordingDevice<D> {
    /// Wraps `inner`, recording both reads and writes.
    pub fn new(inner: D) -> Self {
        RecordingDevice {
            inner,
            log: Vec::new(),
            record_reads: true,
        }
    }

    /// Wraps `inner`, recording writes only.
    pub fn writes_only(inner: D) -> Self {
        RecordingDevice {
            inner,
            log: Vec::new(),
            record_reads: false,
        }
    }

    /// The recorded access log, in issue order.
    pub fn log(&self) -> &[AccessRecord] {
        &self.log
    }

    /// Takes the access log, leaving an empty one behind.
    pub fn take_log(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.log)
    }

    /// A shared view of the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// A mutable view of the wrapped device (accesses made through it are
    /// not recorded).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps into the inner device, discarding the log.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for RecordingDevice<D> {
    fn num_sectors(&self) -> u64 {
        self.inner.num_sectors()
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        self.inner.read(lba, buf)?;
        if self.record_reads {
            self.log.push(AccessRecord {
                kind: AccessKind::Read,
                lba,
                sectors: (buf.len() / SECTOR_SIZE) as u64,
                data: Vec::new(),
            });
        }
        Ok(())
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        self.inner.write(lba, data)?;
        self.log.push(AccessRecord {
            kind: AccessKind::Write,
            lba,
            sectors: (data.len() / SECTOR_SIZE) as u64,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    #[test]
    fn records_reads_and_writes_in_order() {
        let mut d = RecordingDevice::new(MemDisk::new(64));
        d.write(3, &[9u8; SECTOR_SIZE]).unwrap();
        let mut buf = [0u8; SECTOR_SIZE];
        d.read(3, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        let log = d.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].kind, AccessKind::Write);
        assert_eq!(log[0].lba, 3);
        assert_eq!(log[0].data[0], 9);
        assert_eq!(log[0].len_bytes(), SECTOR_SIZE);
        assert_eq!(log[1].kind, AccessKind::Read);
        assert!(log[1].data.is_empty());
    }

    #[test]
    fn failed_accesses_are_not_recorded() {
        let mut d = RecordingDevice::new(MemDisk::new(4));
        assert!(d.write(100, &[0u8; SECTOR_SIZE]).is_err());
        assert!(d.log().is_empty());
    }

    #[test]
    fn writes_only_mode_skips_reads() {
        let mut d = RecordingDevice::writes_only(MemDisk::new(4));
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        let mut buf = [0u8; SECTOR_SIZE];
        d.read(0, &mut buf).unwrap();
        assert_eq!(d.log().len(), 1);
    }

    #[test]
    fn take_log_resets() {
        let mut d = RecordingDevice::new(MemDisk::new(4));
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        let log = d.take_log();
        assert_eq!(log.len(), 1);
        assert!(d.log().is_empty());
        let _ = d.into_inner();
    }
}

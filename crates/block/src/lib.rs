//! Block storage substrate: devices, volumes and volume groups.
//!
//! The paper's prototype uses OpenStack Cinder backed by LVM volume groups
//! on a SATA disk. This crate provides the equivalent building blocks:
//!
//! * [`BlockDevice`] — the sector-addressed device trait everything above
//!   (iSCSI targets, the ext filesystem, services) is written against.
//! * [`MemDisk`] — a sparse in-memory disk; terabyte-sized volumes cost only
//!   the sectors actually touched.
//! * [`RecordingDevice`] — wraps a device and logs every access; used to
//!   replay a VM's block stream through the simulated fabric.
//! * [`VolumeGroup`] / [`Volume`] — LVM-style extent allocation, the Cinder
//!   backend model.
//!
//! # Example
//!
//! ```
//! use storm_block::{BlockDevice, MemDisk};
//!
//! # fn main() -> Result<(), storm_block::BlockError> {
//! let mut disk = MemDisk::with_capacity_bytes(1 << 20);
//! disk.write(0, &[0xAB; 512])?;
//! let mut buf = [0u8; 512];
//! disk.read(0, &mut buf)?;
//! assert_eq!(buf[0], 0xAB);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cow;
mod device;
mod mem;
mod recording;
mod volume;

pub use cow::CowExtentMap;
pub use device::{BlockDevice, BlockError, SECTOR_SIZE};
pub use mem::MemDisk;
pub use recording::{AccessKind, AccessRecord, RecordingDevice};
pub use volume::{SharedVolume, Volume, VolumeGroup, VolumeId};

//! LVM-style volume groups and logical volumes (the Cinder backend model).
//!
//! The paper's testbed creates "multiple volume groups ... from the physical
//! volume through OpenStack's Cinder service". [`VolumeGroup`] allocates
//! fixed-size extents from a backing physical disk; [`Volume`] is a logical
//! device stitched from those extents.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use storm_sim::{FaultAction, FaultHook, FaultSite, SimTime};

use crate::device::{check_access, BlockDevice, BlockError, SECTOR_SIZE};
use crate::MemDisk;

/// Sectors per allocation extent (4 MiB, LVM's default extent size).
pub const EXTENT_SECTORS: u64 = 8192;

/// Identifier of a logical volume within its volume group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VolumeId(pub u32);

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol-{}", self.0)
    }
}

/// An LVM-style volume group: an extent allocator over one physical disk.
#[derive(Debug)]
pub struct VolumeGroup {
    backing: Arc<Mutex<MemDisk>>,
    extent_used: Vec<bool>,
    volumes: HashMap<VolumeId, Vec<u64>>,
    next_id: u32,
}

impl VolumeGroup {
    /// Creates a volume group over a fresh physical disk of `bytes` bytes.
    pub fn new(bytes: u64) -> Self {
        let disk = MemDisk::with_capacity_bytes(bytes);
        let extents = disk.num_sectors() / EXTENT_SECTORS;
        VolumeGroup {
            backing: Arc::new(Mutex::new(disk)),
            extent_used: vec![false; extents as usize],
            volumes: HashMap::new(),
            next_id: 1,
        }
    }

    /// Free capacity in bytes.
    pub fn free_bytes(&self) -> u64 {
        let free = self.extent_used.iter().filter(|u| !**u).count() as u64;
        free * EXTENT_SECTORS * SECTOR_SIZE as u64
    }

    /// Allocates a logical volume of at least `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::OutOfRange`] if the group lacks free extents.
    pub fn create_volume(&mut self, bytes: u64) -> Result<Volume, BlockError> {
        let sectors = bytes.div_ceil(SECTOR_SIZE as u64);
        let needed = sectors.div_ceil(EXTENT_SECTORS).max(1);
        let free: Vec<u64> = self
            .extent_used
            .iter()
            .enumerate()
            .filter(|(_, used)| !**used)
            .map(|(i, _)| i as u64)
            .take(needed as usize)
            .collect();
        if (free.len() as u64) < needed {
            return Err(BlockError::OutOfRange {
                lba: 0,
                sectors,
                capacity: self.free_bytes() / SECTOR_SIZE as u64,
            });
        }
        for &e in &free {
            self.extent_used[e as usize] = true;
        }
        let id = VolumeId(self.next_id);
        self.next_id += 1;
        self.volumes.insert(id, free.clone());
        Ok(Volume {
            id,
            extents: free,
            num_sectors: needed * EXTENT_SECTORS,
            backing: Arc::clone(&self.backing),
            failed: false,
            fault: FaultHook::none(),
        })
    }

    /// Frees the extents of volume `id`.
    ///
    /// Deleting an unknown volume is a no-op (idempotent delete, matching
    /// Cinder semantics).
    pub fn delete_volume(&mut self, id: VolumeId) {
        if let Some(extents) = self.volumes.remove(&id) {
            for e in extents {
                self.extent_used[e as usize] = false;
            }
        }
    }

    /// Number of live volumes.
    pub fn volume_count(&self) -> usize {
        self.volumes.len()
    }
}

/// A logical volume: a sector-addressed view stitched from extents of its
/// volume group's physical disk.
#[derive(Debug, Clone)]
pub struct Volume {
    id: VolumeId,
    extents: Vec<u64>,
    num_sectors: u64,
    backing: Arc<Mutex<MemDisk>>,
    failed: bool,
    fault: FaultHook,
}

impl Volume {
    /// This volume's identifier.
    pub fn id(&self) -> VolumeId {
        self.id
    }

    /// Marks this volume handle failed (fault injection); I/O returns
    /// [`BlockError::Unavailable`].
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Clears an injected failure.
    pub fn recover(&mut self) {
        self.failed = false;
    }

    /// Arms the volume's fault hook (site [`FaultSite::VolumeIo`]).
    ///
    /// The block layer has no simulation clock, so the hook is consulted
    /// with [`SimTime::ZERO`]; only time-independent decisions (medium
    /// errors) make sense here.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault = hook;
    }

    fn check_fault(&self, lba: u64, write: bool) -> Result<(), BlockError> {
        let site = FaultSite::VolumeIo {
            volume: self.id.0,
            lba,
            write,
        };
        match self.fault.decide(SimTime::ZERO, site) {
            FaultAction::Proceed | FaultAction::Delay(_) => Ok(()),
            FaultAction::Fail => Err(BlockError::Medium { lba }),
            FaultAction::Drop => Err(BlockError::Unavailable),
        }
    }

    fn physical(&self, lba: u64) -> u64 {
        let extent = self.extents[(lba / EXTENT_SECTORS) as usize];
        extent * EXTENT_SECTORS + lba % EXTENT_SECTORS
    }

    /// Splits `[lba, lba+sectors)` into physically contiguous runs.
    fn runs(&self, lba: u64, sectors: u64) -> Vec<(u64, u64, u64)> {
        // (logical_offset_bytes_index, physical_lba, run_sectors)
        let mut out = Vec::new();
        let mut off = 0;
        while off < sectors {
            let l = lba + off;
            let within = EXTENT_SECTORS - l % EXTENT_SECTORS;
            let run = within.min(sectors - off);
            out.push((off, self.physical(l), run));
            off += run;
        }
        out
    }
}

impl BlockDevice for Volume {
    fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        if self.failed {
            return Err(BlockError::Unavailable);
        }
        self.check_fault(lba, false)?;
        let sectors = check_access(self.num_sectors, lba, buf.len())?;
        let mut disk = self.backing.lock();
        for (off, plba, run) in self.runs(lba, sectors) {
            let b = off as usize * SECTOR_SIZE;
            disk.read(plba, &mut buf[b..b + run as usize * SECTOR_SIZE])?;
        }
        Ok(())
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        if self.failed {
            return Err(BlockError::Unavailable);
        }
        self.check_fault(lba, true)?;
        let sectors = check_access(self.num_sectors, lba, data.len())?;
        let mut disk = self.backing.lock();
        for (off, plba, run) in self.runs(lba, sectors) {
            let b = off as usize * SECTOR_SIZE;
            disk.write(plba, &data[b..b + run as usize * SECTOR_SIZE])?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        self.backing.lock().flush()
    }
}

/// A cloneable, shared handle to a [`Volume`] usable as a [`BlockDevice`].
///
/// Targets, the StorM platform (which reads the volume at attach time for
/// semantics reconstruction) and tests can all hold handles to the same
/// volume.
#[derive(Debug, Clone)]
pub struct SharedVolume(Arc<Mutex<Volume>>);

impl SharedVolume {
    /// Wraps a volume in a shared handle.
    pub fn new(volume: Volume) -> Self {
        SharedVolume(Arc::new(Mutex::new(volume)))
    }

    /// The wrapped volume's identifier.
    pub fn id(&self) -> VolumeId {
        self.0.lock().id()
    }

    /// Injects a failure on the shared volume.
    pub fn fail(&self) {
        self.0.lock().fail();
    }

    /// Clears an injected failure.
    pub fn recover(&self) {
        self.0.lock().recover();
    }

    /// Arms the wrapped volume's fault hook.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        self.0.lock().set_fault_hook(hook);
    }
}

impl BlockDevice for SharedVolume {
    fn num_sectors(&self) -> u64 {
        self.0.lock().num_sectors()
    }
    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        self.0.lock().read(lba, buf)
    }
    fn write(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        self.0.lock().write(lba, data)
    }
    fn flush(&mut self) -> Result<(), BlockError> {
        self.0.lock().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volumes_are_isolated() {
        let mut vg = VolumeGroup::new(64 << 20);
        let mut a = vg.create_volume(8 << 20).unwrap();
        let mut b = vg.create_volume(8 << 20).unwrap();
        assert_ne!(a.id(), b.id());
        a.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        b.write(0, &[2u8; SECTOR_SIZE]).unwrap();
        let mut buf = [0u8; SECTOR_SIZE];
        a.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        b.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn io_across_extent_boundary() {
        let mut vg = VolumeGroup::new(64 << 20);
        let mut v = vg
            .create_volume(2 * EXTENT_SECTORS * SECTOR_SIZE as u64)
            .unwrap();
        let data: Vec<u8> = (0..4 * SECTOR_SIZE).map(|i| (i % 13) as u8).collect();
        let lba = EXTENT_SECTORS - 2;
        v.write(lba, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        v.read(lba, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn allocation_exhaustion_and_reuse() {
        let mut vg = VolumeGroup::new(8 << 20); // two 4 MiB extents
        let v1 = vg.create_volume(4 << 20).unwrap();
        let _v2 = vg.create_volume(4 << 20).unwrap();
        assert_eq!(vg.free_bytes(), 0);
        assert!(vg.create_volume(1).is_err());
        vg.delete_volume(v1.id());
        assert_eq!(vg.free_bytes(), 4 << 20);
        assert!(vg.create_volume(4 << 20).is_ok());
        // Idempotent delete of unknown volume.
        vg.delete_volume(VolumeId(999));
        assert_eq!(vg.volume_count(), 2);
    }

    #[test]
    fn shared_volume_handles_alias() {
        let mut vg = VolumeGroup::new(16 << 20);
        let v = vg.create_volume(4 << 20).unwrap();
        let mut h1 = SharedVolume::new(v);
        let mut h2 = h1.clone();
        h1.write(5, &[42u8; SECTOR_SIZE]).unwrap();
        let mut buf = [0u8; SECTOR_SIZE];
        h2.read(5, &mut buf).unwrap();
        assert_eq!(buf[0], 42);
        h2.fail();
        assert_eq!(h1.read(5, &mut buf), Err(BlockError::Unavailable));
        h1.recover();
        assert!(h1.flush().is_ok());
    }

    #[test]
    fn volume_bounds_enforced() {
        let mut vg = VolumeGroup::new(16 << 20);
        let mut v = vg.create_volume(4 << 20).unwrap();
        let end = v.num_sectors();
        assert!(v.write(end, &[0u8; SECTOR_SIZE]).is_err());
        assert!(v.write(end - 1, &[0u8; SECTOR_SIZE]).is_ok());
    }
}

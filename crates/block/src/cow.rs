//! Copy-on-write extent map: instant block-level snapshots.
//!
//! A [`CowExtentMap`] tracks, per snapshot epoch, the pre-write image of
//! every extent first written after that snapshot was taken. Taking a
//! snapshot is O(1) — it just opens a new epoch; the cost is paid lazily
//! by whoever performs the first write to each extent (the relay's
//! snapshot service reads the old data and calls [`CowExtentMap::preserve`]
//! before letting the write through). [`CowExtentMap::materialize`] then
//! reconstructs the volume image as of any retained snapshot onto a fresh
//! device — the backup/clone path.

use std::collections::BTreeMap;

use crate::device::{BlockDevice, BlockError, SECTOR_SIZE};

/// Per-epoch preserved pre-write extent images.
///
/// Keys are ordered `(extent, epoch)` so the image of extent `x` at
/// snapshot `e` is the first preserved entry at or after `(x, e)` — the
/// earliest epoch `>= e` in which `x` was overwritten still holds the
/// bytes `x` had when snapshot `e` was taken.
#[derive(Debug, Clone)]
pub struct CowExtentMap {
    extent_sectors: u64,
    epoch: u64,
    preserved: BTreeMap<(u64, u64), Vec<u8>>,
    preserved_bytes: u64,
}

impl CowExtentMap {
    /// Creates a map with `extent_sectors`-sector CoW granularity.
    pub fn new(extent_sectors: u64) -> Self {
        CowExtentMap {
            extent_sectors: extent_sectors.max(1),
            epoch: 0,
            preserved: BTreeMap::new(),
            preserved_bytes: 0,
        }
    }

    /// CoW granularity in sectors.
    pub fn extent_sectors(&self) -> u64 {
        self.extent_sectors
    }

    /// The current epoch; 0 means no snapshot has been taken and writes
    /// need no preservation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Takes an instant snapshot and returns its id (the new epoch).
    pub fn take_snapshot(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Extents overlapped by the sector range `[lba, lba + sectors)`.
    pub fn extents_of(&self, lba: u64, sectors: u64) -> std::ops::Range<u64> {
        let first = lba / self.extent_sectors;
        let last = (lba + sectors.max(1) - 1) / self.extent_sectors;
        first..last + 1
    }

    /// Whether a write touching `extent` must preserve its pre-image
    /// first (a snapshot is active and this extent has not been copied
    /// in the current epoch yet).
    pub fn needs_preserve(&self, extent: u64) -> bool {
        self.epoch > 0 && !self.preserved.contains_key(&(extent, self.epoch))
    }

    /// Records the pre-write image of `extent` for the current epoch.
    /// A no-op when no snapshot is active or the extent is already
    /// preserved (first write wins — later writes see a copied extent).
    pub fn preserve(&mut self, extent: u64, data: Vec<u8>) {
        if self.epoch == 0 || self.preserved.contains_key(&(extent, self.epoch)) {
            return;
        }
        self.preserved_bytes += data.len() as u64;
        self.preserved.insert((extent, self.epoch), data);
    }

    /// Number of preserved extent images across all epochs.
    pub fn preserved_extents(&self) -> usize {
        self.preserved.len()
    }

    /// Total preserved pre-image bytes across all epochs.
    pub fn preserved_bytes(&self) -> u64 {
        self.preserved_bytes
    }

    /// The preserved image of `extent` as of snapshot `snapshot`, if the
    /// extent was overwritten after that snapshot; `None` means the live
    /// volume still holds the snapshot-time bytes.
    pub fn image_at(&self, snapshot: u64, extent: u64) -> Option<&[u8]> {
        self.preserved
            .range((extent, snapshot)..(extent + 1, 0))
            .next()
            .map(|(_, data)| data.as_slice())
    }

    /// Reconstructs the volume image as of snapshot `snapshot` onto
    /// `out`: live data from `base` except where a preserved pre-image
    /// supersedes it. `out` must be at least as large as `base`.
    ///
    /// # Errors
    ///
    /// Propagates device errors from either side.
    pub fn materialize(
        &self,
        snapshot: u64,
        base: &mut dyn BlockDevice,
        out: &mut dyn BlockDevice,
    ) -> Result<(), BlockError> {
        let total = base.num_sectors();
        let mut buf = vec![0u8; self.extent_sectors as usize * SECTOR_SIZE];
        let mut lba = 0;
        let mut extent = 0;
        while lba < total {
            let run = self.extent_sectors.min(total - lba);
            let len = run as usize * SECTOR_SIZE;
            match self.image_at(snapshot, extent) {
                Some(img) => {
                    let n = img.len().min(len);
                    buf[..n].copy_from_slice(&img[..n]);
                    if n < len {
                        base.read(lba + (n / SECTOR_SIZE) as u64, &mut buf[n..len])?;
                    }
                }
                None => base.read(lba, &mut buf[..len])?,
            }
            out.write(lba, &buf[..len])?;
            lba += run;
            extent += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn fill(disk: &mut MemDisk, lba: u64, sectors: u64, byte: u8) {
        let data = vec![byte; sectors as usize * SECTOR_SIZE];
        disk.write(lba, &data).unwrap();
    }

    fn sector_byte(disk: &mut MemDisk, lba: u64) -> u8 {
        let mut buf = [0u8; SECTOR_SIZE];
        disk.read(lba, &mut buf).unwrap();
        buf[0]
    }

    #[test]
    fn no_snapshot_needs_no_preserve() {
        let map = CowExtentMap::new(8);
        assert_eq!(map.epoch(), 0);
        assert!(!map.needs_preserve(0));
    }

    #[test]
    fn extent_ranges_cover_partial_overlap() {
        let map = CowExtentMap::new(8);
        assert_eq!(map.extents_of(0, 8), 0..1);
        assert_eq!(map.extents_of(7, 2), 0..2);
        assert_eq!(map.extents_of(16, 1), 2..3);
    }

    #[test]
    fn first_write_wins_within_an_epoch() {
        let mut map = CowExtentMap::new(8);
        map.take_snapshot();
        assert!(map.needs_preserve(3));
        map.preserve(3, vec![1u8; 8 * SECTOR_SIZE]);
        assert!(!map.needs_preserve(3));
        // A later preserve of the same extent must not replace the image.
        map.preserve(3, vec![2u8; 8 * SECTOR_SIZE]);
        assert_eq!(map.image_at(1, 3).unwrap()[0], 1);
        assert_eq!(map.preserved_extents(), 1);
    }

    #[test]
    fn image_resolves_to_earliest_epoch_at_or_after_snapshot() {
        let mut map = CowExtentMap::new(8);
        let s1 = map.take_snapshot();
        map.preserve(0, vec![10u8; 8 * SECTOR_SIZE]); // overwritten during epoch 1
        let s2 = map.take_snapshot();
        map.preserve(0, vec![20u8; 8 * SECTOR_SIZE]); // overwritten again during epoch 2
        map.preserve(1, vec![30u8; 8 * SECTOR_SIZE]); // first touched during epoch 2
                                                      // Snapshot 1 sees extent 0 as it was before the epoch-1 write.
        assert_eq!(map.image_at(s1, 0).unwrap()[0], 10);
        // Snapshot 2 sees the pre-image of the epoch-2 write.
        assert_eq!(map.image_at(s2, 0).unwrap()[0], 20);
        // Extent 1 was untouched during epoch 1, so snapshot 1 resolves to
        // the epoch-2 pre-image (its bytes were unchanged in between).
        assert_eq!(map.image_at(s1, 1).unwrap()[0], 30);
        // Never-written extents read from the live volume.
        assert!(map.image_at(s1, 2).is_none());
    }

    #[test]
    fn materialize_reconstructs_snapshot_state() {
        let mut base = MemDisk::with_capacity_bytes(24 * SECTOR_SIZE as u64);
        let mut map = CowExtentMap::new(8);
        fill(&mut base, 0, 8, 0xA);
        fill(&mut base, 8, 8, 0xB);
        fill(&mut base, 16, 8, 0xC);
        let snap = map.take_snapshot();
        // Overwrite extent 1, preserving its pre-image first (what the
        // snapshot service does).
        map.preserve(1, vec![0xB; 8 * SECTOR_SIZE]);
        fill(&mut base, 8, 8, 0xEE);
        let mut clone = MemDisk::with_capacity_bytes(24 * SECTOR_SIZE as u64);
        map.materialize(snap, &mut base, &mut clone).unwrap();
        assert_eq!(sector_byte(&mut clone, 0), 0xA);
        assert_eq!(sector_byte(&mut clone, 8), 0xB); // snapshot-time bytes
        assert_eq!(sector_byte(&mut clone, 16), 0xC);
        // The live volume diverged.
        assert_eq!(sector_byte(&mut base, 8), 0xEE);
    }
}

//! Sparse in-memory disk.

use std::collections::HashMap;

use crate::device::{check_access, BlockDevice, BlockError, SECTOR_SIZE};

/// Sectors per allocation chunk (32 KiB chunks).
const CHUNK_SECTORS: u64 = 64;
const CHUNK_BYTES: usize = CHUNK_SECTORS as usize * SECTOR_SIZE;

/// A sparse, in-memory block device.
///
/// Memory is allocated in 32 KiB chunks on first write, so a "1 TB volume"
/// costs only what is actually touched — this is how the repo hosts the
/// paper's 20 GB test volumes. Unwritten sectors read as zeroes, matching a
/// freshly created Cinder volume.
#[derive(Debug, Clone, Default)]
pub struct MemDisk {
    num_sectors: u64,
    chunks: HashMap<u64, Box<[u8]>>,
    failed: bool,
}

impl MemDisk {
    /// Creates a disk with the given capacity in sectors.
    pub fn new(num_sectors: u64) -> Self {
        MemDisk {
            num_sectors,
            chunks: HashMap::new(),
            failed: false,
        }
    }

    /// Creates a disk with the given capacity in bytes (rounded down to a
    /// whole number of sectors).
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new(bytes / SECTOR_SIZE as u64)
    }

    /// Marks the device as failed; all subsequent operations return
    /// [`BlockError::Unavailable`]. Used for fault injection in the
    /// replication experiments.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Clears a previously injected failure.
    pub fn recover(&mut self) {
        self.failed = false;
    }

    /// Whether the device is currently failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Number of bytes actually allocated (sparse footprint).
    pub fn allocated_bytes(&self) -> usize {
        self.chunks.len() * CHUNK_BYTES
    }

    fn for_each_sector<F>(&mut self, lba: u64, sectors: u64, mut f: F)
    where
        F: FnMut(&mut [u8], usize),
    {
        for i in 0..sectors {
            let sector = lba + i;
            let chunk_idx = sector / CHUNK_SECTORS;
            let offset = (sector % CHUNK_SECTORS) as usize * SECTOR_SIZE;
            let chunk = self
                .chunks
                .entry(chunk_idx)
                .or_insert_with(|| vec![0u8; CHUNK_BYTES].into_boxed_slice());
            f(
                &mut chunk[offset..offset + SECTOR_SIZE],
                i as usize * SECTOR_SIZE,
            );
        }
    }
}

impl BlockDevice for MemDisk {
    fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        if self.failed {
            return Err(BlockError::Unavailable);
        }
        let sectors = check_access(self.num_sectors, lba, buf.len())?;
        // Read without allocating: absent chunks are zero.
        for i in 0..sectors {
            let sector = lba + i;
            let chunk_idx = sector / CHUNK_SECTORS;
            let offset = (sector % CHUNK_SECTORS) as usize * SECTOR_SIZE;
            let dst = &mut buf[i as usize * SECTOR_SIZE..][..SECTOR_SIZE];
            match self.chunks.get(&chunk_idx) {
                Some(chunk) => dst.copy_from_slice(&chunk[offset..offset + SECTOR_SIZE]),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        if self.failed {
            return Err(BlockError::Unavailable);
        }
        let sectors = check_access(self.num_sectors, lba, data.len())?;
        self.for_each_sector(lba, sectors, |sector_buf, data_off| {
            sector_buf.copy_from_slice(&data[data_off..data_off + SECTOR_SIZE]);
        });
        Ok(())
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        if self.failed {
            return Err(BlockError::Unavailable);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_across_chunk_boundary() {
        let mut d = MemDisk::new(1024);
        let data: Vec<u8> = (0..4 * SECTOR_SIZE).map(|i| (i % 251) as u8).collect();
        // Write straddles the 64-sector chunk boundary.
        d.write(62, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        d.read(62, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unwritten_sectors_read_zero() {
        let mut d = MemDisk::new(1024);
        let mut buf = vec![0xFFu8; SECTOR_SIZE];
        d.read(1000, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // Reads never allocate.
        assert_eq!(d.allocated_bytes(), 0);
    }

    #[test]
    fn sparse_footprint_is_small() {
        let mut d = MemDisk::with_capacity_bytes(1 << 40); // "1 TB"
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        d.write(1 << 30, &[2u8; SECTOR_SIZE]).unwrap();
        assert_eq!(d.allocated_bytes(), 2 * CHUNK_BYTES);
        assert_eq!(d.capacity_bytes(), 1 << 40);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut d = MemDisk::new(8);
        assert!(d.write(8, &[0u8; SECTOR_SIZE]).is_err());
        assert!(d.write(7, &[0u8; 2 * SECTOR_SIZE]).is_err());
        let mut buf = [0u8; SECTOR_SIZE];
        assert!(d.read(8, &mut buf).is_err());
        assert!(d.read(0, &mut [0u8; 100]).is_err());
    }

    #[test]
    fn failure_injection() {
        let mut d = MemDisk::new(8);
        d.write(0, &[7u8; SECTOR_SIZE]).unwrap();
        d.fail();
        assert!(d.is_failed());
        assert_eq!(
            d.write(0, &[0u8; SECTOR_SIZE]),
            Err(BlockError::Unavailable)
        );
        let mut buf = [0u8; SECTOR_SIZE];
        assert_eq!(d.read(0, &mut buf), Err(BlockError::Unavailable));
        assert_eq!(d.flush(), Err(BlockError::Unavailable));
        d.recover();
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
    }
}

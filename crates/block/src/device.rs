//! The sector-addressed block device abstraction.

use std::error::Error;
use std::fmt;

/// Size of one device sector in bytes (the SCSI standard 512).
pub const SECTOR_SIZE: usize = 512;

/// Errors returned by block device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// The access touches sectors past the end of the device.
    OutOfRange {
        /// First sector of the access.
        lba: u64,
        /// Number of sectors in the access.
        sectors: u64,
        /// Device capacity in sectors.
        capacity: u64,
    },
    /// The buffer length is not a whole number of sectors.
    Misaligned {
        /// Offending buffer length in bytes.
        len: usize,
    },
    /// The device has failed or been detached (fault injection).
    Unavailable,
    /// A medium error at a specific sector (fault injection): the rest of
    /// the device stays readable, like a real grown defect.
    Medium {
        /// First sector of the failed access.
        lba: u64,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange {
                lba,
                sectors,
                capacity,
            } => write!(
                f,
                "access of {sectors} sectors at lba {lba} exceeds capacity {capacity}"
            ),
            BlockError::Misaligned { len } => {
                write!(f, "buffer of {len} bytes is not sector aligned")
            }
            BlockError::Unavailable => write!(f, "device unavailable"),
            BlockError::Medium { lba } => write!(f, "medium error at lba {lba}"),
        }
    }
}

impl Error for BlockError {}

/// A random-access, sector-addressed block device.
///
/// All offsets are logical block addresses (LBAs) in units of
/// [`SECTOR_SIZE`]-byte sectors. Buffers must be whole multiples of the
/// sector size.
pub trait BlockDevice {
    /// Device capacity in sectors.
    fn num_sectors(&self) -> u64;

    /// Reads `buf.len() / SECTOR_SIZE` sectors starting at `lba`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::Misaligned`] for non-sector-sized buffers and
    /// [`BlockError::OutOfRange`] for accesses past the device end.
    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError>;

    /// Writes `data.len() / SECTOR_SIZE` sectors starting at `lba`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockDevice::read`].
    fn write(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError>;

    /// Flushes any buffered writes to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::Unavailable`] if the device has failed.
    fn flush(&mut self) -> Result<(), BlockError> {
        Ok(())
    }

    /// Device capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.num_sectors() * SECTOR_SIZE as u64
    }
}

/// Validates an access and returns the sector count.
pub(crate) fn check_access(capacity: u64, lba: u64, len: usize) -> Result<u64, BlockError> {
    if len == 0 || !len.is_multiple_of(SECTOR_SIZE) {
        return Err(BlockError::Misaligned { len });
    }
    let sectors = (len / SECTOR_SIZE) as u64;
    if lba.checked_add(sectors).is_none_or(|end| end > capacity) {
        return Err(BlockError::OutOfRange {
            lba,
            sectors,
            capacity,
        });
    }
    Ok(sectors)
}

impl<D: BlockDevice + ?Sized> BlockDevice for &mut D {
    fn num_sectors(&self) -> u64 {
        (**self).num_sectors()
    }
    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        (**self).read(lba, buf)
    }
    fn write(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        (**self).write(lba, data)
    }
    fn flush(&mut self) -> Result<(), BlockError> {
        (**self).flush()
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for Box<D> {
    fn num_sectors(&self) -> u64 {
        (**self).num_sectors()
    }
    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        (**self).read(lba, buf)
    }
    fn write(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        (**self).write(lba, data)
    }
    fn flush(&mut self) -> Result<(), BlockError> {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_access_accepts_aligned_in_range() {
        assert_eq!(check_access(100, 0, 512), Ok(1));
        assert_eq!(check_access(100, 92, 8 * 512), Ok(8));
    }

    #[test]
    fn check_access_rejects_misaligned() {
        assert_eq!(
            check_access(100, 0, 100),
            Err(BlockError::Misaligned { len: 100 })
        );
        assert_eq!(
            check_access(100, 0, 0),
            Err(BlockError::Misaligned { len: 0 })
        );
    }

    #[test]
    fn check_access_rejects_out_of_range() {
        assert!(matches!(
            check_access(100, 93, 8 * 512),
            Err(BlockError::OutOfRange {
                lba: 93,
                sectors: 8,
                capacity: 100
            })
        ));
        // Overflow of lba + sectors must not wrap.
        assert!(matches!(
            check_access(100, u64::MAX, 512),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = BlockError::OutOfRange {
            lba: 5,
            sectors: 2,
            capacity: 6,
        };
        assert!(e.to_string().contains("lba 5"));
        assert!(BlockError::Misaligned { len: 7 }.to_string().contains('7'));
        assert!(!BlockError::Unavailable.to_string().is_empty());
    }
}

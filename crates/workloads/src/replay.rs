//! Trace replay: grouped block accesses issued synchronously.
//!
//! File-level scenarios (PostMark, the malware case study) run a real
//! [`storm_extfs::ExtFs`] over a [`storm_block::RecordingDevice`] at build
//! time; the recorded block accesses — grouped per file operation — are
//! then replayed over the wire. Order and contents are preserved exactly,
//! which is what the semantics-reconstruction experiments require.

use bytes::Bytes;

use storm_block::{AccessKind, AccessRecord};
use storm_cloud::{IoCtx, IoKind, IoResult, ReqId, Workload};
use storm_sim::metrics::Meter;
use storm_sim::{SimDuration, SimTime};

/// Classification of a file-level operation (Figure 11's components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Whole-file read.
    Read,
    /// Append to an existing file.
    Append,
    /// File creation.
    Create,
    /// File deletion.
    Delete,
    /// Anything else (mkdir, rename, symlink…).
    Other,
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpClass::Read => write!(f, "read"),
            OpClass::Append => write!(f, "append"),
            OpClass::Create => write!(f, "creation"),
            OpClass::Delete => write!(f, "deletion"),
            OpClass::Other => write!(f, "other"),
        }
    }
}

/// One file-level operation and the block accesses it generated.
#[derive(Debug, Clone)]
pub struct OpGroup {
    /// Operation class.
    pub class: OpClass,
    /// Human-readable description (e.g. the Table III steps).
    pub label: String,
    /// The block accesses, in issue order.
    pub accesses: Vec<AccessRecord>,
}

/// Per-class completion counters.
#[derive(Debug, Default)]
pub struct ClassStats {
    /// Operations completed.
    pub ops: Meter,
    /// Bytes read within the class.
    pub bytes_read: u64,
    /// Bytes written within the class.
    pub bytes_written: u64,
}

/// Replays [`OpGroup`]s one block access at a time (synchronous file
/// semantics), collecting per-class throughput.
pub struct TraceWorkload {
    groups: Vec<OpGroup>,
    group_idx: usize,
    access_idx: usize,
    /// In-VM (dm-crypt style) cipher cost per byte: charged to the VM's
    /// CPU *and* blocking the issuing thread, as the paper observed
    /// ("dm-crypt may hold application threads on spinlocks ... while
    /// encrypting/flushing writes blocks to disk").
    pub vm_cipher_per_byte: SimDuration,
    /// Fixed per-bio dm-crypt overhead (kcryptd queueing, context
    /// switches, spinlock contention) blocking each access.
    pub vm_cipher_per_access: SimDuration,
    cipher_delayed: bool,
    /// Optional think time between groups.
    pub think: SimDuration,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    /// Per-class stats (indexed by [`OpClass`] discriminants via
    /// [`TraceWorkload::class_stats`]).
    stats: Vec<(OpClass, ClassStats)>,
    /// Completed groups.
    pub groups_done: u64,
}

impl TraceWorkload {
    /// Creates a replay of `groups`.
    pub fn new(groups: Vec<OpGroup>) -> Self {
        let stats = [
            OpClass::Read,
            OpClass::Append,
            OpClass::Create,
            OpClass::Delete,
            OpClass::Other,
        ]
        .into_iter()
        .map(|c| (c, ClassStats::default()))
        .collect();
        TraceWorkload {
            groups,
            group_idx: 0,
            access_idx: 0,
            vm_cipher_per_byte: SimDuration::ZERO,
            vm_cipher_per_access: SimDuration::ZERO,
            cipher_delayed: false,
            think: SimDuration::ZERO,
            started: None,
            finished: None,
            stats,
            groups_done: 0,
        }
    }

    /// Enables in-VM encryption modelling (tenant-side comparison):
    /// `per_byte` cipher work plus a fixed `per_access` dm-crypt bio
    /// overhead, both blocking the issuing thread.
    pub fn with_vm_cipher(mut self, per_byte: SimDuration, per_access: SimDuration) -> Self {
        self.vm_cipher_per_byte = per_byte;
        self.vm_cipher_per_access = per_access;
        self
    }

    /// Stats for one class.
    pub fn class_stats(&self, class: OpClass) -> &ClassStats {
        &self
            .stats
            .iter()
            .find(|(c, _)| *c == class)
            .expect("all classes present")
            .1
    }

    /// Wall-clock of the replay (start to last completion), if finished.
    pub fn elapsed(&self) -> Option<SimDuration> {
        Some(self.finished?.since(self.started?))
    }

    /// Whether every group completed.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    fn issue_next(&mut self, io: &mut IoCtx<'_>) {
        loop {
            if self.group_idx >= self.groups.len() {
                self.finished = Some(io.now);
                io.stop();
                return;
            }
            let group = &self.groups[self.group_idx];
            if self.access_idx >= group.accesses.len() {
                // Group complete.
                let class = group.class;
                let entry = &mut self
                    .stats
                    .iter_mut()
                    .find(|(c, _)| *c == class)
                    .expect("all classes present")
                    .1;
                entry.ops.record(0);
                self.groups_done += 1;
                self.group_idx += 1;
                self.access_idx = 0;
                if self.think > SimDuration::ZERO {
                    io.set_timer(self.think, 0);
                    return;
                }
                continue;
            }
            // In-VM cipher: block the issuing thread for the access's
            // cipher time before it reaches the block layer.
            let cipher_on = self.vm_cipher_per_byte > SimDuration::ZERO
                || self.vm_cipher_per_access > SimDuration::ZERO;
            if cipher_on && !self.cipher_delayed {
                let rec = &group.accesses[self.access_idx];
                let cost =
                    self.vm_cipher_per_byte * rec.len_bytes() as u64 + self.vm_cipher_per_access;
                io.charge_vm_cpu(cost);
                io.set_timer(cost, 1);
                self.cipher_delayed = true;
                return;
            }
            self.cipher_delayed = false;
            let rec = &group.accesses[self.access_idx];
            self.access_idx += 1;
            let class = group.class;
            let entry = &mut self
                .stats
                .iter_mut()
                .find(|(c, _)| *c == class)
                .expect("all classes present")
                .1;
            match rec.kind {
                AccessKind::Read => {
                    entry.bytes_read += rec.len_bytes() as u64;
                    io.read(rec.lba, rec.sectors as u32);
                }
                AccessKind::Write => {
                    entry.bytes_written += rec.len_bytes() as u64;
                    io.write(rec.lba, Bytes::from(rec.data.clone()));
                }
            }
            return;
        }
    }
}

impl Workload for TraceWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.started = Some(io.now);
        self.issue_next(io);
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, _req: ReqId, _kind: IoKind, result: IoResult) {
        debug_assert!(result.ok, "trace replay hit an I/O error");
        self.issue_next(io);
    }

    fn timer(&mut self, io: &mut IoCtx<'_>, _token: u64) {
        self.issue_next(io);
    }
}

impl std::fmt::Debug for TraceWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWorkload")
            .field("groups", &self.groups.len())
            .field("done", &self.groups_done)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_block::{MemDisk, RecordingDevice};
    use storm_cloud::{Cloud, CloudConfig};
    use storm_extfs::ExtFs;
    use storm_sim::SimTime;

    /// Builds a tiny trace: create + write + read of one file.
    fn tiny_trace() -> Vec<OpGroup> {
        let dev = RecordingDevice::new(MemDisk::with_capacity_bytes(64 << 20));
        let mut fs = ExtFs::mkfs(dev).unwrap();
        fs.device_mut().take_log();
        fs.create("/f").unwrap();
        fs.write_file("/f", 0, &vec![7u8; 8192]).unwrap();
        fs.sync().unwrap();
        let create = fs.device_mut().take_log();
        let _ = fs.read_file_to_end("/f").unwrap();
        let read = fs.device_mut().take_log();
        vec![
            OpGroup {
                class: OpClass::Create,
                label: "create /f".into(),
                accesses: create,
            },
            OpGroup {
                class: OpClass::Read,
                label: "read /f".into(),
                accesses: read,
            },
        ]
    }

    #[test]
    fn replays_and_counts_classes() {
        let groups = tiny_trace();
        let total_accesses: usize = groups.iter().map(|g| g.accesses.len()).sum();
        assert!(total_accesses > 3);
        let mut cloud = Cloud::build(CloudConfig::default());
        let vol = cloud.create_volume(64 << 20, 0);
        let app = cloud.attach_volume(
            0,
            "vm:replay",
            &vol,
            Box::new(TraceWorkload::new(groups)),
            3,
            false,
        );
        cloud.net.run_until(SimTime::from_nanos(5_000_000_000));
        let client = cloud.client_mut(0, app);
        assert_eq!(client.stats.errors, 0);
        let w = client
            .workload_ref()
            .expect("workload present")
            .downcast_ref::<TraceWorkload>()
            .unwrap();
        assert!(w.is_finished(), "replay must finish");
        assert_eq!(w.groups_done, 2);
        assert_eq!(w.class_stats(OpClass::Create).ops.count(), 1);
        assert_eq!(w.class_stats(OpClass::Read).ops.count(), 1);
        assert!(w.class_stats(OpClass::Read).bytes_read >= 8192);
        assert!(w.elapsed().unwrap() > SimDuration::ZERO);
    }
}

//! A Sysbench-style OLTP client (the Figure 13 database workload).
//!
//! Each client VM runs `threads` request threads in "complex mode": a
//! transaction is a handful of 16 KiB page reads, an 8 KiB redo-log write
//! and a 16 KiB page write against the MySQL server's volume. Completed
//! transactions land in a per-second timeline — the series Figure 13
//! plots before and after a replica failure.

use bytes::Bytes;

use storm_cloud::{IoCtx, IoKind, IoResult, ReqId, Workload};
use storm_sim::metrics::Timeline;
use storm_sim::{SimDuration, SimTime};

/// OLTP client parameters.
#[derive(Debug, Clone)]
pub struct OltpConfig {
    /// Concurrent request threads (the paper uses six per VM).
    pub threads: usize,
    /// Page reads per transaction.
    pub reads_per_txn: usize,
    /// Database area in sectors.
    pub area_sectors: u64,
    /// Stop issuing after this long.
    pub duration: SimDuration,
}

impl Default for OltpConfig {
    fn default() -> Self {
        OltpConfig {
            threads: 6,
            reads_per_txn: 3,
            area_sectors: 40 << 11, // 40 MiB of pages
            duration: SimDuration::from_secs(120),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// A page read is in flight; `remaining` reads follow it.
    ReadInFlight { remaining: usize },
    /// The redo-log write is in flight.
    LogInFlight,
    /// The page write is in flight (transaction completes with it).
    PageInFlight,
    /// Thread retired (deadline reached).
    Idle,
}

#[derive(Debug)]
struct Thread {
    phase: Phase,
    pending: Option<ReqId>,
}

/// The OLTP workload.
#[derive(Debug)]
pub struct OltpWorkload {
    cfg: OltpConfig,
    threads: Vec<Thread>,
    log_pos: u64,
    started: Option<SimTime>,
    /// Completed transactions.
    pub transactions: u64,
    /// Per-second transaction completions (Figure 13's series).
    pub tps: Timeline,
}

impl OltpWorkload {
    /// Creates the workload.
    pub fn new(cfg: OltpConfig) -> Self {
        let threads = (0..cfg.threads)
            .map(|_| Thread {
                phase: Phase::Idle,
                pending: None,
            })
            .collect();
        OltpWorkload {
            cfg,
            threads,
            log_pos: 0,
            started: None,
            transactions: 0,
            tps: Timeline::new(SimDuration::from_secs(1)),
        }
    }

    /// Mean TPS over seconds `[lo, hi)`.
    pub fn mean_tps(&self, lo: usize, hi: usize) -> f64 {
        self.tps.mean_over(lo, hi)
    }

    fn random_page(&self, io: &mut IoCtx<'_>) -> u64 {
        // 16 KiB-aligned page (32 sectors).
        let pages = (self.cfg.area_sectors / 32).max(1);
        io.rng().below(pages) * 32
    }

    fn begin_txn(&mut self, io: &mut IoCtx<'_>, t: usize) {
        let deadline = self.started.map(|s| s + self.cfg.duration);
        if deadline.is_some_and(|d| io.now >= d) {
            self.threads[t].phase = Phase::Idle;
            self.threads[t].pending = None;
            if self.threads.iter().all(|th| th.phase == Phase::Idle) {
                io.stop();
            }
            return;
        }
        let page = self.random_page(io);
        let req = io.read(page, 32);
        self.threads[t].phase = Phase::ReadInFlight {
            remaining: self.cfg.reads_per_txn - 1,
        };
        self.threads[t].pending = Some(req);
    }

    fn thread_of(&self, req: ReqId) -> Option<usize> {
        self.threads.iter().position(|t| t.pending == Some(req))
    }
}

impl Workload for OltpWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.started = Some(io.now);
        for t in 0..self.threads.len() {
            self.begin_txn(io, t);
        }
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, _kind: IoKind, _result: IoResult) {
        let Some(t) = self.thread_of(req) else {
            return;
        };
        match self.threads[t].phase {
            Phase::ReadInFlight { remaining } if remaining > 0 => {
                let page = self.random_page(io);
                let req = io.read(page, 32);
                self.threads[t].phase = Phase::ReadInFlight {
                    remaining: remaining - 1,
                };
                self.threads[t].pending = Some(req);
            }
            Phase::ReadInFlight { .. } => {
                // Sequential 8 KiB redo-log append in a dedicated region.
                let lba = self.cfg.area_sectors + (self.log_pos % 2048) * 16;
                self.log_pos += 1;
                let req = io.write(lba, Bytes::from(vec![0x10u8; 8192]));
                self.threads[t].phase = Phase::LogInFlight;
                self.threads[t].pending = Some(req);
            }
            Phase::LogInFlight => {
                let page = self.random_page(io);
                let req = io.write(page, Bytes::from(vec![0x20u8; 16384]));
                self.threads[t].phase = Phase::PageInFlight;
                self.threads[t].pending = Some(req);
            }
            Phase::PageInFlight => {
                self.transactions += 1;
                self.tps.record(io.now);
                self.begin_txn(io, t);
            }
            Phase::Idle => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_cloud::{Cloud, CloudConfig};

    #[test]
    fn transactions_flow_and_timeline_fills() {
        let mut cloud = Cloud::build(CloudConfig::default());
        let vol = cloud.create_volume(256 << 20, 0);
        let cfg = OltpConfig {
            duration: SimDuration::from_secs(5),
            ..OltpConfig::default()
        };
        let app = cloud.attach_volume(
            0,
            "vm:oltp",
            &vol,
            Box::new(OltpWorkload::new(cfg)),
            21,
            false,
        );
        cloud.net.run_until(SimTime::from_nanos(7_000_000_000));
        let client = cloud.client_mut(0, app);
        assert_eq!(client.stats.errors, 0);
        let w = client
            .workload_ref()
            .unwrap()
            .downcast_ref::<OltpWorkload>()
            .unwrap();
        assert!(w.transactions > 50, "got {} transactions", w.transactions);
        // The per-second series must cover the run and be non-trivial.
        assert!(w.tps.series().len() >= 4);
        assert!(w.mean_tps(1, 4) > 5.0, "series: {:?}", w.tps.series());
    }

    #[test]
    fn more_threads_more_tps() {
        let tps_for = |threads: usize| {
            let mut cloud = Cloud::build(CloudConfig::default());
            let vol = cloud.create_volume(256 << 20, 0);
            let cfg = OltpConfig {
                threads,
                duration: SimDuration::from_secs(4),
                ..OltpConfig::default()
            };
            let app = cloud.attach_volume(
                0,
                "vm:oltp",
                &vol,
                Box::new(OltpWorkload::new(cfg)),
                22,
                false,
            );
            cloud.net.run_until(SimTime::from_nanos(6_000_000_000));
            let client = cloud.client_mut(0, app);
            client
                .workload_ref()
                .unwrap()
                .downcast_ref::<OltpWorkload>()
                .unwrap()
                .transactions
        };
        let one = tps_for(1);
        let six = tps_for(6);
        assert!(six > one * 2, "{one} vs {six}");
    }
}

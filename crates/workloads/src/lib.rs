//! Workload generators for the StorM evaluation.
//!
//! Each generator implements [`storm_cloud::Workload`] and reproduces one
//! of the paper's load sources:
//!
//! * [`FioWorkload`] — the Fio micro-benchmark: configurable request size
//!   (4 KiB–256 KiB), read/write mix and parallelism (Figures 4–9).
//! * [`TraceWorkload`] — replays a recorded block-access trace as
//!   synchronous grouped operations; built by running a real filesystem
//!   over a [`storm_block::RecordingDevice`].
//! * [`postmark`] — a PostMark-like small-file mix (create/read/append/
//!   delete on a file pool), measured per component as in Figure 11.
//! * [`OltpWorkload`] — a Sysbench-style OLTP client: multi-threaded
//!   transactions of page reads, log writes and page writes against a
//!   database volume (Figure 13).
//! * [`FtpWorkload`] — bulk sequential transfer, the FTP up/download of
//!   the CPU-utilization experiment (Figure 10).
//! * [`malware`] — a scripted re-enactment of the
//!   `HEUR:Backdoor.Linux.Ganiw.a` installation (Table III).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fio;
mod ftp;
pub mod malware;
mod oltp;
pub mod postmark;
mod replay;

pub use fio::{FioJob, FioWorkload};
pub use ftp::{FtpDirection, FtpWorkload};
pub use oltp::{OltpConfig, OltpWorkload};
pub use replay::{OpClass, OpGroup, TraceWorkload};

//! Bulk sequential transfer (the FTP case of Figure 10).

use std::collections::HashMap;

use bytes::Bytes;

use storm_cloud::{IoCtx, IoKind, IoResult, ReqId, Workload};
use storm_sim::{SimDuration, SimTime};

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtpDirection {
    /// Download: sequential reads from the volume.
    Download,
    /// Upload: sequential writes to the volume.
    Upload,
}

/// Sequential bulk transfer of `total_bytes` in fixed-size chunks,
/// `depth` chunks in flight (an FTP server streaming a large file).
#[derive(Debug)]
pub struct FtpWorkload {
    direction: FtpDirection,
    total_bytes: u64,
    chunk_bytes: usize,
    depth: usize,
    next_offset: u64,
    /// Application + guest TCP stack CPU per byte (the FTP server's own
    /// work), charged to the VM label.
    pub app_cpu_per_byte: SimDuration,
    /// In-VM cipher CPU per byte (tenant-side dm-crypt); charged to the
    /// VM label (dm-crypt worker threads run it concurrently, so it does
    /// not gate a deep pipeline's throughput — but it burns the VM's
    /// cores, which is exactly what Figure 10 measures).
    pub vm_cipher_per_byte: SimDuration,
    sizes: HashMap<ReqId, usize>,
    /// Bytes completed.
    pub done_bytes: u64,
    started: Option<SimTime>,
    finished: Option<SimTime>,
}

impl FtpWorkload {
    /// Creates a transfer (256 KiB chunks, four in flight).
    pub fn new(direction: FtpDirection, total_bytes: u64) -> Self {
        FtpWorkload {
            direction,
            total_bytes,
            chunk_bytes: 256 * 1024,
            depth: 4,
            next_offset: 0,
            app_cpu_per_byte: SimDuration::from_nanos(7),
            vm_cipher_per_byte: SimDuration::ZERO,
            sizes: HashMap::new(),
            done_bytes: 0,
            started: None,
            finished: None,
        }
    }

    /// Enables tenant-side encryption modelling.
    pub fn with_vm_cipher(mut self, per_byte: SimDuration) -> Self {
        self.vm_cipher_per_byte = per_byte;
        self
    }

    /// Achieved throughput in MB/s, if finished.
    pub fn throughput_mbps(&self) -> Option<f64> {
        let elapsed = self.finished?.since(self.started?);
        Some(self.done_bytes as f64 / 1e6 / elapsed.as_secs_f64())
    }

    /// Transfer duration, if finished.
    pub fn elapsed(&self) -> Option<SimDuration> {
        Some(self.finished?.since(self.started?))
    }

    fn issue(&mut self, io: &mut IoCtx<'_>) -> bool {
        if self.next_offset >= self.total_bytes {
            return false;
        }
        let n = self
            .chunk_bytes
            .min((self.total_bytes - self.next_offset) as usize);
        // Round to whole sectors.
        let n = (n / 512).max(1) * 512;
        let lba = self.next_offset / 512;
        let per_byte = self.app_cpu_per_byte + self.vm_cipher_per_byte;
        if per_byte > SimDuration::ZERO {
            io.charge_vm_cpu(per_byte * n as u64);
        }
        let req = match self.direction {
            FtpDirection::Download => io.read(lba, (n / 512) as u32),
            FtpDirection::Upload => io.write(lba, Bytes::from(vec![0x5Au8; n])),
        };
        self.sizes.insert(req, n);
        self.next_offset += n as u64;
        true
    }
}

impl Workload for FtpWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.started = Some(io.now);
        for _ in 0..self.depth {
            if !self.issue(io) {
                break;
            }
        }
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, _kind: IoKind, result: IoResult) {
        debug_assert!(result.ok);
        if let Some(n) = self.sizes.remove(&req) {
            self.done_bytes += n as u64;
        }
        if !self.issue(io) && io.in_flight <= 1 {
            self.finished = Some(io.now);
            io.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_cloud::{Cloud, CloudConfig};

    fn run(direction: FtpDirection, bytes: u64) -> (u64, f64) {
        let mut cloud = Cloud::build(CloudConfig::default());
        let vol = cloud.create_volume(256 << 20, 0);
        let app = cloud.attach_volume(
            0,
            "vm:ftp",
            &vol,
            Box::new(FtpWorkload::new(direction, bytes)),
            5,
            false,
        );
        cloud.net.run_until(SimTime::from_nanos(20_000_000_000));
        let client = cloud.client_mut(0, app);
        assert_eq!(client.stats.errors, 0);
        let w = client
            .workload_ref()
            .unwrap()
            .downcast_ref::<FtpWorkload>()
            .unwrap();
        (
            w.done_bytes,
            w.throughput_mbps().expect("transfer finished"),
        )
    }

    #[test]
    fn upload_completes_at_plausible_throughput() {
        let (done, mbps) = run(FtpDirection::Upload, 64 << 20);
        assert_eq!(done, 64 << 20);
        // 1 GbE tops out ~117 MB/s; expect something in (20, 120).
        assert!(mbps > 20.0 && mbps < 125.0, "got {mbps} MB/s");
    }

    #[test]
    fn download_completes() {
        let (done, mbps) = run(FtpDirection::Download, 32 << 20);
        assert_eq!(done, 32 << 20);
        assert!(mbps > 20.0, "got {mbps} MB/s");
    }
}

//! The Fio-like block micro-benchmark.

use bytes::Bytes;

use storm_cloud::{IoCtx, IoKind, IoResult, ReqId, Workload};
use storm_sim::SimDuration;

/// A Fio job description (the knobs the paper sweeps).
#[derive(Debug, Clone)]
pub struct FioJob {
    /// Request size in bytes (4 KiB – 256 KiB in the paper).
    pub block_bytes: usize,
    /// Percentage of reads (50 = the paper's mixed random pattern).
    pub read_pct: u8,
    /// Outstanding requests ("the number of threads issuing I/O requests
    /// simultaneously").
    pub threads: usize,
    /// Measurement duration; issuing stops afterwards.
    pub duration: SimDuration,
    /// Addressable area in sectors (the 20 GB test volume).
    pub area_sectors: u64,
    /// Random (true) or sequential access.
    pub random: bool,
}

impl FioJob {
    /// The paper's default: 50/50 random mix, one thread.
    pub fn randrw(block_bytes: usize, duration: SimDuration, area_sectors: u64) -> Self {
        FioJob {
            block_bytes,
            read_pct: 50,
            threads: 1,
            duration,
            area_sectors,
            random: true,
        }
    }

    /// Sets the thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    fn sectors_per_req(&self) -> u64 {
        (self.block_bytes / 512) as u64
    }
}

/// The Fio workload: keeps `threads` requests in flight for `duration`.
#[derive(Debug)]
pub struct FioWorkload {
    job: FioJob,
    started_at: Option<storm_sim::SimTime>,
    seq_pos: u64,
    issued: u64,
    /// Completed request count (reads + writes).
    pub completed: u64,
    stopping: bool,
}

impl FioWorkload {
    /// Creates the workload.
    pub fn new(job: FioJob) -> Self {
        FioWorkload {
            job,
            started_at: None,
            seq_pos: 0,
            issued: 0,
            completed: 0,
            stopping: false,
        }
    }

    fn issue_one(&mut self, io: &mut IoCtx<'_>) {
        let sectors = self.job.sectors_per_req();
        let max_start = self.job.area_sectors.saturating_sub(sectors).max(1);
        let lba = if self.job.random {
            // Sector-size aligned random offset.
            let slots = max_start / sectors;
            io.rng().below(slots.max(1)) * sectors
        } else {
            let lba = self.seq_pos;
            self.seq_pos = (self.seq_pos + sectors) % max_start;
            lba
        };
        let read = io.rng().below(100) < self.job.read_pct as u64;
        if read {
            io.read(lba, sectors as u32);
        } else {
            io.write(lba, Bytes::from(vec![0xA5u8; self.job.block_bytes]));
        }
        self.issued += 1;
    }
}

impl Workload for FioWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.started_at = Some(io.now);
        for _ in 0..self.job.threads {
            self.issue_one(io);
        }
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, _req: ReqId, _kind: IoKind, _result: IoResult) {
        self.completed += 1;
        let deadline = self.started_at.map(|t| t + self.job.duration);
        if !self.stopping && deadline.is_some_and(|d| io.now < d) {
            self.issue_one(io);
        } else {
            self.stopping = true;
            if io.in_flight <= 1 {
                io.stop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_cloud::{Cloud, CloudConfig};
    use storm_sim::SimTime;

    fn run_fio(job: FioJob) -> (u64, f64) {
        let mut cloud = Cloud::build(CloudConfig::default());
        let vol = cloud.create_volume(256 << 20, 0);
        let app = cloud.attach_volume(
            0,
            "vm:fio",
            &vol,
            Box::new(FioWorkload::new(job.clone())),
            11,
            false,
        );
        cloud.net.run_until(SimTime::from_nanos(
            (job.duration + SimDuration::from_secs(1)).as_nanos(),
        ));
        let client = cloud.client_mut(0, app);
        let ops = client.stats.ops();
        let iops = client.stats.iops(job.duration);
        assert_eq!(client.stats.errors, 0);
        (ops, iops)
    }

    #[test]
    fn single_thread_sustains_io() {
        let job = FioJob::randrw(4096, SimDuration::from_secs(2), 400_000);
        let (ops, iops) = run_fio(job);
        assert!(ops > 100, "got {ops} ops");
        assert!(iops > 50.0, "got {iops} IOPS");
    }

    #[test]
    fn more_threads_more_iops() {
        // 4 KiB requests so 8 outstanding fit inside the 64 KiB TCP
        // receive window (one iSCSI session = one TCP connection; beyond
        // the window, parallelism is deliberately throttled — that very
        // effect drives the paper's Figure 6 crossover). A small area so
        // the target's page cache warms quickly: a cold single spindle
        // serializes random reads no matter the parallelism.
        let base = FioJob::randrw(4096, SimDuration::from_secs(2), 16_384);
        let (ops1, _) = run_fio(base.clone());
        let (ops8, _) = run_fio(base.threads(8));
        assert!(
            ops8 as f64 > ops1 as f64 * 2.0,
            "parallelism should raise throughput: {ops1} vs {ops8}"
        );
    }

    #[test]
    fn bigger_requests_fewer_iops_more_bandwidth() {
        let small = FioJob::randrw(4096, SimDuration::from_secs(2), 400_000);
        let big = FioJob::randrw(256 * 1024, SimDuration::from_secs(2), 400_000);
        let (ops_small, _) = run_fio(small);
        let (ops_big, _) = run_fio(big);
        assert!(ops_small > ops_big, "{ops_small} vs {ops_big}");
    }
}

//! Telemetry for the StorM stack: sim-time tracing, a metrics registry
//! and a latency-attribution analyzer.
//!
//! The simulator layers (`storm-net`, `storm-cloud`, `storm-core`) report
//! span events through the [`storm_sim::trace::TraceHook`] they were armed
//! with; this crate supplies the other half:
//!
//! * [`Recorder`] — a [`TraceSink`](storm_sim::trace::TraceSink) that
//!   collects events in arrival order and exports them as JSONL. The
//!   simulator is single-threaded and free of wall-clock time, so equal
//!   seeds produce **byte-identical** trace files.
//! * [`MetricsRegistry`] — named counters, gauges and log-bucketed
//!   histograms with a deterministic text report.
//! * [`analyze`] — parses a trace back and computes the per-hop latency
//!   attribution of Figure 10: what fraction of end-to-end request time
//!   was spent in virtio, forwarding, the relay framework, each tenant
//!   service, the target and the disk, with the unexplained remainder
//!   attributed to the network.
//!
//! The `storm-trace` binary wraps [`analyze`] for trace files on disk.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use storm_sim::trace::{req_token, Hop, TraceEvent};
//! use storm_sim::{SimDuration, SimTime};
//! use storm_telemetry::Recorder;
//!
//! let rec = Arc::new(Recorder::new());
//! let hook = Recorder::hook(&rec);
//! let req = req_token(40_000, 1);
//! hook.emit(SimTime::ZERO, TraceEvent::Issue { req, kind: 0, bytes: 4096 });
//! hook.emit(
//!     SimTime::from_nanos(10),
//!     TraceEvent::Stage { req, hop: Hop::Disk, id: 0, dur: SimDuration::from_nanos(7) },
//! );
//! hook.emit(SimTime::from_nanos(10), TraceEvent::Complete { req, ok: true });
//! let jsonl = rec.to_jsonl();
//! let report = storm_telemetry::analyze::attribute(&rec.events());
//! assert_eq!(report.requests, 1);
//! assert_eq!(jsonl.lines().count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod jsonl;
pub mod names;
mod recorder;
mod registry;

pub use jsonl::{parse_jsonl, parse_line};
pub use recorder::Recorder;
pub use registry::MetricsRegistry;

//! The trace recorder: an armable [`TraceSink`] with JSONL export.

use std::sync::Arc;

use parking_lot::Mutex;
use storm_sim::trace::{TraceEvent, TraceHook, TraceSink};
use storm_sim::SimTime;

use crate::jsonl;

/// Collects trace events in arrival order.
///
/// The simulator is single-threaded, so arrival order is deterministic;
/// two runs with equal seeds yield equal event sequences and therefore
/// byte-identical [`to_jsonl`](Recorder::to_jsonl) exports. The interior
/// mutex exists only to satisfy the `Send + Sync` sink contract.
#[derive(Default)]
pub struct Recorder {
    events: Mutex<Vec<(SimTime, TraceEvent)>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An armed [`TraceHook`] delivering into this recorder. Pass the
    /// result to `Cloud::set_trace_hook` (and friends) before running.
    pub fn hook(this: &Arc<Self>) -> TraceHook {
        TraceHook::armed(this.clone())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all recorded events, in arrival order.
    pub fn events(&self) -> Vec<(SimTime, TraceEvent)> {
        self.events.lock().clone()
    }

    /// Serializes the whole trace as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 64);
        for (t, ev) in events.iter() {
            jsonl::write_event(&mut out, *t, ev);
        }
        out
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl TraceSink for Recorder {
    fn record(&self, now: SimTime, ev: &TraceEvent) {
        // storm-lint: allow(no-blocking-in-shard): uncontended in-process
        // trace mutex with a bounded append critical section — not a
        // scheduling block for the shard executor.
        self.events.lock().push((now, ev.clone()));
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_sim::trace::req_token;

    #[test]
    fn records_through_hook_and_exports() {
        let rec = Arc::new(Recorder::new());
        let hook = Recorder::hook(&rec);
        assert!(rec.is_empty());
        let req = req_token(40_000, 3);
        hook.emit(
            SimTime::from_nanos(1),
            TraceEvent::Issue {
                req,
                kind: 0,
                bytes: 512,
            },
        );
        hook.emit(
            SimTime::from_nanos(9),
            TraceEvent::Complete { req, ok: true },
        );
        assert_eq!(rec.len(), 2);
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        let parsed = crate::parse_jsonl(&jsonl).expect("round trip");
        assert_eq!(parsed, rec.events());
        rec.clear();
        assert!(rec.is_empty());
    }
}

//! The JSONL trace codec: one event per line, fixed key order.
//!
//! Hand-rolled on purpose — the build environment vendors no JSON crate,
//! and a fixed writer is what makes the byte-identical-trace guarantee
//! auditable. The parser accepts exactly the flat objects the writer
//! emits (numbers, strings, booleans; no nesting).

use storm_sim::trace::{Hop, TraceEvent};
use storm_sim::SimTime;

/// Appends one event to `out` as a single JSON line (with trailing `\n`).
///
/// Key order is fixed per event kind so equal event sequences serialize to
/// byte-identical files.
pub(crate) fn write_event(out: &mut String, now: SimTime, ev: &TraceEvent) {
    use std::fmt::Write as _;
    let t = now.as_nanos();
    match ev {
        TraceEvent::Issue { req, kind, bytes } => {
            let _ = writeln!(
                out,
                "{{\"t\":{t},\"ev\":\"issue\",\"req\":{req},\"kind\":{kind},\"bytes\":{bytes}}}"
            );
        }
        TraceEvent::Complete { req, ok } => {
            let _ = writeln!(
                out,
                "{{\"t\":{t},\"ev\":\"complete\",\"req\":{req},\"ok\":{ok}}}"
            );
        }
        TraceEvent::Stage { req, hop, id, dur } => {
            let _ = writeln!(
                out,
                "{{\"t\":{t},\"ev\":\"stage\",\"req\":{req},\"hop\":\"{}\",\"id\":{id},\"dur\":{}}}",
                hop.label(),
                dur.as_nanos()
            );
        }
        TraceEvent::Mark { req, hop, id } => {
            let _ = writeln!(
                out,
                "{{\"t\":{t},\"ev\":\"mark\",\"req\":{req},\"hop\":\"{}\",\"id\":{id}}}",
                hop.label()
            );
        }
        TraceEvent::Meta { hop, id, name } => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"ev\":\"meta\",\"hop\":\"{}\",\"id\":{id},\"name\":\"",
                hop.label()
            );
            escape_into(out, name);
            out.push_str("\"}\n");
        }
        TraceEvent::ReplicaEvict { mb, replica } => {
            let _ = writeln!(
                out,
                "{{\"t\":{t},\"ev\":\"evict\",\"mb\":{mb},\"replica\":{replica}}}"
            );
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A field value in a flat trace object.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Str(String),
    Bool(bool),
}

/// Parses one JSONL trace line back into `(timestamp, event)`.
///
/// Returns `None` on anything the writer would not have produced.
pub fn parse_line(line: &str) -> Option<(SimTime, TraceEvent)> {
    let mut fields: Vec<(String, Val)> = Vec::with_capacity(6);
    let b = line.trim();
    let inner = b.strip_prefix('{')?.strip_suffix('}')?;
    let mut chars = inner.char_indices().peekable();
    // Flat scan: `"key":value` pairs separated by commas.
    loop {
        // Key.
        let (key, rest_at) = parse_string_at(inner, &mut chars)?;
        skip_char(&mut chars, ':')?;
        // Value.
        let val = match chars.peek().map(|&(_, c)| c)? {
            '"' => {
                let (s, _) = parse_string_at(inner, &mut chars)?;
                Val::Str(s)
            }
            't' => {
                eat_lit(inner, &mut chars, "true")?;
                Val::Bool(true)
            }
            'f' => {
                eat_lit(inner, &mut chars, "false")?;
                Val::Bool(false)
            }
            _ => {
                let mut n: u64 = 0;
                let mut any = false;
                while let Some(&(_, c)) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n.checked_mul(10)?.checked_add(d as u64)?;
                        any = true;
                        chars.next();
                    } else {
                        break;
                    }
                }
                if !any {
                    return None;
                }
                Val::Num(n)
            }
        };
        let _ = rest_at;
        fields.push((key, val));
        match chars.next() {
            Some((_, ',')) => continue,
            None => break,
            Some(_) => return None,
        }
    }
    build_event(&fields)
}

/// Parses a whole JSONL document, skipping blank lines; `None` if any
/// non-blank line fails to parse.
pub fn parse_jsonl(doc: &str) -> Option<Vec<(SimTime, TraceEvent)>> {
    let mut out = Vec::new();
    for line in doc.lines() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line)?);
    }
    Some(out)
}

type CharIter<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_char(chars: &mut CharIter<'_>, want: char) -> Option<()> {
    match chars.next() {
        Some((_, c)) if c == want => Some(()),
        _ => None,
    }
}

fn eat_lit(src: &str, chars: &mut CharIter<'_>, lit: &str) -> Option<()> {
    let start = chars.peek()?.0;
    if src[start..].starts_with(lit) {
        for _ in 0..lit.chars().count() {
            chars.next();
        }
        Some(())
    } else {
        None
    }
}

fn parse_string_at(_src: &str, chars: &mut CharIter<'_>) -> Option<(String, usize)> {
    skip_char(chars, '"')?;
    let mut s = String::new();
    loop {
        let (i, c) = chars.next()?;
        match c {
            '"' => return Some((s, i)),
            '\\' => {
                let (_, e) = chars.next()?;
                match e {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next()?;
                            code = code * 16 + h.to_digit(16)?;
                        }
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => s.push(c),
        }
    }
}

fn get_num(fields: &[(String, Val)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        Val::Num(n) if k == key => Some(*n),
        _ => None,
    })
}

fn get_str<'a>(fields: &'a [(String, Val)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        Val::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

fn get_bool(fields: &[(String, Val)], key: &str) -> Option<bool> {
    fields.iter().find_map(|(k, v)| match v {
        Val::Bool(b) if k == key => Some(*b),
        _ => None,
    })
}

fn build_event(fields: &[(String, Val)]) -> Option<(SimTime, TraceEvent)> {
    use storm_sim::SimDuration;
    let t = SimTime::from_nanos(get_num(fields, "t")?);
    let ev = match get_str(fields, "ev")? {
        "issue" => TraceEvent::Issue {
            req: get_num(fields, "req")?,
            kind: get_num(fields, "kind")? as u8,
            bytes: get_num(fields, "bytes")? as u32,
        },
        "complete" => TraceEvent::Complete {
            req: get_num(fields, "req")?,
            ok: get_bool(fields, "ok")?,
        },
        "stage" => TraceEvent::Stage {
            req: get_num(fields, "req")?,
            hop: Hop::parse(get_str(fields, "hop")?)?,
            id: get_num(fields, "id")? as u32,
            dur: SimDuration::from_nanos(get_num(fields, "dur")?),
        },
        "mark" => TraceEvent::Mark {
            req: get_num(fields, "req")?,
            hop: Hop::parse(get_str(fields, "hop")?)?,
            id: get_num(fields, "id")? as u32,
        },
        "meta" => TraceEvent::Meta {
            hop: Hop::parse(get_str(fields, "hop")?)?,
            id: get_num(fields, "id")? as u32,
            name: get_str(fields, "name")?.to_string(),
        },
        "evict" => TraceEvent::ReplicaEvict {
            mb: get_num(fields, "mb")? as u32,
            replica: get_num(fields, "replica")? as u32,
        },
        _ => return None,
    };
    Some((t, ev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_sim::trace::req_token;
    use storm_sim::SimDuration;

    fn round_trip(now: SimTime, ev: TraceEvent) {
        let mut s = String::new();
        write_event(&mut s, now, &ev);
        assert!(s.ends_with('\n'));
        let (t2, ev2) = parse_line(s.trim_end()).expect("parse back");
        assert_eq!(t2, now);
        assert_eq!(ev2, ev);
    }

    #[test]
    fn all_event_kinds_round_trip() {
        let req = req_token(40_001, 9);
        round_trip(
            SimTime::from_nanos(5),
            TraceEvent::Issue {
                req,
                kind: 1,
                bytes: 4096,
            },
        );
        round_trip(
            SimTime::from_nanos(6),
            TraceEvent::Complete { req, ok: false },
        );
        round_trip(
            SimTime::from_nanos(7),
            TraceEvent::Stage {
                req,
                hop: Hop::Service,
                id: 2,
                dur: SimDuration::from_nanos(123),
            },
        );
        round_trip(
            SimTime::ZERO,
            TraceEvent::Mark {
                req,
                hop: Hop::Buffer,
                id: 0,
            },
        );
        round_trip(
            SimTime::ZERO,
            TraceEvent::Meta {
                hop: Hop::Service,
                id: 0,
                name: "enc \"aes\"\\x".into(),
            },
        );
        round_trip(
            SimTime::from_nanos(1 << 40),
            TraceEvent::ReplicaEvict { mb: 1, replica: 2 },
        );
    }

    #[test]
    fn writer_emits_fixed_key_order() {
        let mut s = String::new();
        write_event(
            &mut s,
            SimTime::from_nanos(42),
            &TraceEvent::Stage {
                req: req_token(40_000, 1),
                hop: Hop::Disk,
                id: 0,
                dur: SimDuration::from_nanos(10),
            },
        );
        assert_eq!(
            s,
            format!(
                "{{\"t\":42,\"ev\":\"stage\",\"req\":{},\"hop\":\"disk\",\"id\":0,\"dur\":10}}\n",
                req_token(40_000, 1)
            )
        );
    }

    #[test]
    fn garbage_lines_are_rejected() {
        assert!(parse_line("").is_none());
        assert!(parse_line("{}").is_none());
        assert!(parse_line("{\"t\":1,\"ev\":\"nope\"}").is_none());
        assert!(parse_line("not json").is_none());
        assert!(parse_jsonl("{\"t\":1,\"ev\":\"complete\",\"req\":1,\"ok\":true}\nbad").is_none());
    }
}

//! A named-metric registry: counters, gauges and latency histograms.

use std::collections::BTreeMap;

use storm_sim::{Histogram, SimDuration};

/// Deterministic registry of named metrics.
///
/// Names are free-form dotted paths (`"client.vm0.reads"`). Storage is a
/// `BTreeMap`, so [`report`](MetricsRegistry::report) iterates in a stable
/// order regardless of registration order — registry output is part of the
/// reproducibility contract, like trace files.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `d` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.hists.entry(name.to_string()).or_default().record(d);
    }

    /// Merges `other` histogram into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, other: &Histogram) {
        self.hists.entry(name.to_string()).or_default().merge(other);
    }

    /// Current value of counter `name`, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Renders every metric as stable, diff-friendly text: one line per
    /// metric, sorted by name; histograms report count/mean/p50/p99/max.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                "hist {name} count={} mean={} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.max()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.inc("io.reads", 1);
        r.inc("io.reads", 2);
        r.set_gauge("queue.depth", 7);
        for i in 1..=10 {
            r.observe("lat", SimDuration::from_micros(i * 100));
        }
        assert_eq!(r.counter("io.reads"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("queue.depth"), Some(7));
        assert_eq!(r.gauge("missing"), None);
        let h = r.histogram("lat").expect("present");
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), SimDuration::from_micros(1000));
    }

    #[test]
    fn report_is_sorted_and_stable() {
        let mut a = MetricsRegistry::new();
        a.inc("z.last", 1);
        a.inc("a.first", 2);
        a.set_gauge("m.mid", -3);
        a.observe("lat", SimDuration::from_millis(5));
        let mut b = MetricsRegistry::new();
        b.observe("lat", SimDuration::from_millis(5));
        b.set_gauge("m.mid", -3);
        b.inc("a.first", 2);
        b.inc("z.last", 1);
        assert_eq!(a.report(), b.report());
        assert_eq!(a.report().lines().count(), 4);
        assert!(a.report().starts_with("counter a.first 2\n"));
    }

    #[test]
    fn merge_histogram_accumulates() {
        let mut ext = Histogram::new();
        ext.record(SimDuration::from_micros(10));
        ext.record(SimDuration::from_micros(20));
        let mut r = MetricsRegistry::new();
        r.observe("lat", SimDuration::from_micros(30));
        r.merge_histogram("lat", &ext);
        assert_eq!(r.histogram("lat").unwrap().count(), 3);
    }
}

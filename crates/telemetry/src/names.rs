//! Canonical metric names shared by producers and dashboards.
//!
//! `storm-core` sits below this crate in the dependency graph, so the
//! relay exports raw counters (e.g. `ActiveRelayMb::copy_stats` in
//! `storm-core`) and harnesses publish them into a
//! [`MetricsRegistry`](crate::MetricsRegistry) under these names. Keeping
//! the strings here — rather than scattered across benches and tests —
//! makes registry reports and `BENCH_results.json` extras greppable from
//! one place.

/// Data-segment bytes memcpy'd on the relay datapath (reassembly plus
/// small-segment batching on encode). A passthrough chain must report 0.
pub const RELAY_BYTES_COPIED: &str = "relay.bytes_copied";

/// Fixed-size 48-byte header copies on the relay datapath — the allowed
/// decode-scratch copies, reported separately from data bytes.
pub const RELAY_HEADER_BYTES_COPIED: &str = "relay.header_bytes_copied";

/// PDUs forwarded through the relay on the verbatim fast path (original
/// wire bytes, no re-encode).
pub const RELAY_VERBATIM_FORWARDS: &str = "relay.verbatim_forwards";

/// Total PDUs forwarded through the relay's service chain.
pub const RELAY_PDUS_FORWARDED: &str = "relay.pdus_forwarded";

/// High-water mark of commands simultaneously in a session's submission
/// ring (gauge; 0 for transports without rings).
pub const TRANSPORT_SQ_PEAK: &str = "transport.sq_peak";

/// Doorbell frames the initiator sent (counter). Together with
/// [`TRANSPORT_DOORBELL_SQES`] this yields the submission batching
/// factor — SQEs flushed per doorbell write.
pub const TRANSPORT_DOORBELL_FRAMES: &str = "transport.doorbell_frames";

/// SQEs carried by all doorbell frames (counter).
pub const TRANSPORT_DOORBELL_SQES: &str = "transport.doorbell_sqes";

/// Completion frames the initiator received (counter). Together with
/// [`TRANSPORT_CQ_CQES`] this yields the realized interrupt-moderation
/// coalescing factor — CQEs per completion interrupt.
pub const TRANSPORT_CQ_FRAMES: &str = "transport.cq_frames";

/// CQEs carried by all completion frames (counter).
pub const TRANSPORT_CQ_CQES: &str = "transport.cq_cqes";

/// Commands the target admitted per dispatch tick, published as a gauge
/// in hundredths (250 = 2.5 commands per batch drain).
pub const TARGET_DISPATCH_BATCH_X100: &str = "target.dispatch_batch_x100";

/// Operations delayed by a tenant's token-bucket rate limiter (counter).
pub const QOS_THROTTLED_OPS: &str = "qos.throttled_ops";

/// Total shaping delay imposed by rate limiting (histogram of per-op
/// delays).
pub const QOS_THROTTLE_DELAY: &str = "qos.throttle_delay";

/// Admission-controller decisions at volume create, suffixed by outcome
/// (`qos.admission.accepted` / `.degraded` / `.rejected`).
pub const QOS_ADMISSION: &str = "qos.admission";

/// Completed backing-disk tier migrations (counter).
pub const QOS_MIGRATIONS: &str = "qos.migrations";

/// Fraction of sampled requests meeting their volume's p99 ceiling,
/// published as a gauge in basis points (10_000 = 100%).
pub const QOS_SLO_ATTAINMENT_BP: &str = "qos.slo_attainment_bp";

/// Write-back cache read hit rate, gauge in basis points.
pub const SVC_CACHE_HIT_BP: &str = "svc.cache.hit_bp";

/// Writes absorbed by the write-back cache (counter).
pub const SVC_CACHE_ABSORBED_WRITES: &str = "svc.cache.absorbed_writes";

/// Dirty sectors flushed to the primary volume (counter of bytes).
pub const SVC_CACHE_FLUSHED_BYTES: &str = "svc.cache.flushed_bytes";

/// Dedup data-reduction ratio, gauge in basis points (15_000 = 1.5x).
pub const SVC_DEDUP_RATIO_BP: &str = "svc.dedup.ratio_bp";

/// Duplicate chunks detected by dedup (counter).
pub const SVC_DEDUP_DUP_CHUNKS: &str = "svc.dedup.duplicate_chunks";

/// Compression space-saving ratio, gauge in basis points.
pub const SVC_COMPRESS_RATIO_BP: &str = "svc.compress.ratio_bp";

/// Extents stored raw because compression did not shrink them (counter).
pub const SVC_COMPRESS_SKIPPED: &str = "svc.compress.skipped_extents";

/// Copy-on-first-write pre-image copies performed (counter).
pub const SVC_SNAP_COW_COPIES: &str = "svc.snap.cow_copies";

/// Pre-image bytes preserved across all snapshot epochs (gauge).
pub const SVC_SNAP_PRESERVED_BYTES: &str = "svc.snap.preserved_bytes";

/// Scopes a metric name to one tenant: `tenant.<id>.<name>`.
///
/// Producers used to format per-tenant keys ad hoc (`vm.web-1.reads`,
/// `mb0.alerts`), which made reports impossible to grep by tenant. All
/// per-tenant registry keys go through this helper so the prefix stays
/// uniform.
pub fn tenant_scoped(name: &str, tenant_id: u32) -> String {
    format!("tenant.{tenant_id}.{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_scoped_is_uniform() {
        assert_eq!(tenant_scoped("reads", 0), "tenant.0.reads");
        assert_eq!(
            tenant_scoped(QOS_THROTTLED_OPS, 7),
            "tenant.7.qos.throttled_ops"
        );
    }
}

//! Canonical metric names shared by producers and dashboards.
//!
//! `storm-core` sits below this crate in the dependency graph, so the
//! relay exports raw counters (e.g. `ActiveRelayMb::copy_stats` in
//! `storm-core`) and harnesses publish them into a
//! [`MetricsRegistry`](crate::MetricsRegistry) under these names. Keeping
//! the strings here — rather than scattered across benches and tests —
//! makes registry reports and `BENCH_results.json` extras greppable from
//! one place.

/// Data-segment bytes memcpy'd on the relay datapath (reassembly plus
/// small-segment batching on encode). A passthrough chain must report 0.
pub const RELAY_BYTES_COPIED: &str = "relay.bytes_copied";

/// Fixed-size 48-byte header copies on the relay datapath — the allowed
/// decode-scratch copies, reported separately from data bytes.
pub const RELAY_HEADER_BYTES_COPIED: &str = "relay.header_bytes_copied";

/// PDUs forwarded through the relay on the verbatim fast path (original
/// wire bytes, no re-encode).
pub const RELAY_VERBATIM_FORWARDS: &str = "relay.verbatim_forwards";

/// Total PDUs forwarded through the relay's service chain.
pub const RELAY_PDUS_FORWARDED: &str = "relay.pdus_forwarded";

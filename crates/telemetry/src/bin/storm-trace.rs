//! `storm-trace`: offline latency-attribution analyzer for JSONL traces.
//!
//! Usage: `storm-trace <trace.jsonl>` (or `-` for stdin). Prints the
//! per-hop attribution table — the software analogue of Figure 10 — and
//! any replica evictions found in the trace.

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let path = match args.as_slice() {
        [_, p] => p.clone(),
        _ => {
            eprintln!("usage: storm-trace <trace.jsonl | ->");
            return ExitCode::from(2);
        }
    };
    let doc = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("storm-trace: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("storm-trace: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let Some(events) = storm_telemetry::parse_jsonl(&doc) else {
        eprintln!("storm-trace: {path}: malformed trace line");
        return ExitCode::FAILURE;
    };
    let report = storm_telemetry::analyze::attribute(&events);
    println!("events: {}", events.len());
    print!("{}", report.table());
    ExitCode::SUCCESS
}

//! Latency attribution: the software analogue of the paper's Figure 10.
//!
//! Given a trace, [`attribute`] computes how much of the end-to-end
//! request time was spent at each hop of the I/O path. Per-request
//! [`Stage`](TraceEvent::Stage) events are summed directly; flow-scoped
//! stages (token with a zero ITT — per-packet forwarding and tap work)
//! are charged to the flow they belong to and split evenly across that
//! flow's completed requests. Whatever remains of the measured wall time
//! after all stage charges is attributed to the network (propagation,
//! serialization and queueing on links), so the reported shares always
//! sum to ~100%.

use std::collections::BTreeMap;

use storm_sim::trace::{Hop, ReqToken, TraceEvent};
use storm_sim::{SimDuration, SimTime};

/// Initiator-side source port of a token (its flow).
fn port_of(req: ReqToken) -> u16 {
    (req >> 32) as u16
}

/// Whether the token is flow-scoped (ITT half zero).
fn is_flow(req: ReqToken) -> bool {
    req & 0xFFFF_FFFF == 0
}

/// One attribution row: a cost center and its aggregate time.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrRow {
    /// Display label: the hop name, or `service:<name>` when a
    /// [`TraceEvent::Meta`] named the service, or `network` for the
    /// residual.
    pub label: String,
    /// Total time attributed to this row across all completed requests.
    pub total: SimDuration,
    /// Fraction of end-to-end time, in percent.
    pub share: f64,
}

/// The attribution report over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Rows sorted by descending share (ties broken by label).
    pub rows: Vec<AttrRow>,
    /// Requests that completed (have both issue and complete events).
    pub requests: u64,
    /// Requests that were issued but never completed.
    pub incomplete: u64,
    /// Summed end-to-end latency of completed requests.
    pub wall: SimDuration,
    /// Mean end-to-end latency of completed requests.
    pub mean_latency: SimDuration,
    /// The dominant row's label (empty when the trace has no requests).
    pub dominant: String,
    /// Replica evictions seen in the trace, as `(time, mb, replica)`.
    pub evictions: Vec<(SimTime, u32, u32)>,
}

impl Attribution {
    /// Renders the report as a fixed-width table, dominant hop flagged.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "requests: {} completed, {} incomplete; mean latency {}",
            self.requests, self.incomplete, self.mean_latency
        );
        let _ = writeln!(out, "{:<24} {:>14} {:>8}", "hop", "total", "share");
        for row in &self.rows {
            let flag = if row.label == self.dominant {
                "  <- dominant"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<24} {:>14} {:>7.1}%{}",
                row.label,
                row.total.to_string(),
                row.share,
                flag
            );
        }
        for (t, mb, replica) in &self.evictions {
            let _ = writeln!(out, "replica eviction: mb {mb} replica {replica} at {t}");
        }
        out
    }
}

/// Computes the per-hop latency attribution of a trace.
pub fn attribute(events: &[(SimTime, TraceEvent)]) -> Attribution {
    // (hop, id) -> display name from Meta events.
    let mut names: BTreeMap<(Hop, u32), String> = BTreeMap::new();
    // Completed-request bookkeeping.
    let mut issued: BTreeMap<ReqToken, SimTime> = BTreeMap::new();
    let mut wall = SimDuration::ZERO;
    let mut requests = 0u64;
    // Direct (request-scoped) charges per row key.
    let mut direct: BTreeMap<(Hop, u32), SimDuration> = BTreeMap::new();
    // Flow-scoped charges per (port, row key).
    let mut flow: BTreeMap<(u16, Hop, u32), SimDuration> = BTreeMap::new();
    // Completed requests per flow port (to apportion flow charges).
    let mut flow_requests: BTreeMap<u16, u64> = BTreeMap::new();
    let mut evictions = Vec::new();

    for (t, ev) in events {
        match ev {
            TraceEvent::Meta { hop, id, name } => {
                names.insert((*hop, *id), name.clone());
            }
            TraceEvent::Issue { req, .. } => {
                issued.insert(*req, *t);
            }
            TraceEvent::Complete { req, .. } => {
                if let Some(at) = issued.remove(req) {
                    wall += *t - at;
                    requests += 1;
                    *flow_requests.entry(port_of(*req)).or_insert(0) += 1;
                }
            }
            TraceEvent::Stage { req, hop, id, dur } => {
                if is_flow(*req) {
                    *flow
                        .entry((port_of(*req), *hop, *id))
                        .or_insert(SimDuration::ZERO) += *dur;
                } else {
                    *direct.entry((*hop, *id)).or_insert(SimDuration::ZERO) += *dur;
                }
            }
            TraceEvent::Mark { .. } => {}
            TraceEvent::ReplicaEvict { mb, replica } => {
                evictions.push((*t, *mb, *replica));
            }
        }
    }

    // Fold flow-scoped work into the per-hop totals. A flow's per-packet
    // work belongs to its own requests; flows with no completed request
    // (e.g. login-only traffic) still contribute — their time is real CPU
    // spent on the path — so they are folded in unconditionally.
    let mut totals: BTreeMap<(Hop, u32), SimDuration> = direct;
    for ((_, hop, id), d) in flow {
        *totals.entry((hop, id)).or_insert(SimDuration::ZERO) += d;
    }

    // Label rows; same-label rows merge (e.g. forwarding on many hosts).
    let mut by_label: BTreeMap<String, SimDuration> = BTreeMap::new();
    for ((hop, id), d) in totals {
        let label = match hop {
            Hop::Service => match names.get(&(hop, id)) {
                Some(n) => format!("service:{n}"),
                None => format!("service:{id}"),
            },
            _ => hop.label().to_string(),
        };
        *by_label.entry(label).or_insert(SimDuration::ZERO) += d;
    }

    let explained: SimDuration = by_label.values().fold(SimDuration::ZERO, |a, &d| a + d);
    // Residual end-to-end time is network (links, queueing). When stage
    // charges exceed the measured wall time (overlapping pipelined work),
    // shares are computed against the larger sum instead so they still
    // total 100%.
    let residual = if wall > explained {
        wall - explained
    } else {
        SimDuration::ZERO
    };
    if requests > 0 && residual > SimDuration::ZERO {
        *by_label
            .entry("network".to_string())
            .or_insert(SimDuration::ZERO) += residual;
    }
    let denom = if wall > explained { wall } else { explained };
    let denom_ns = denom.as_nanos().max(1) as f64;

    let mut rows: Vec<AttrRow> = by_label
        .into_iter()
        .map(|(label, total)| AttrRow {
            share: total.as_nanos() as f64 / denom_ns * 100.0,
            label,
            total,
        })
        .collect();
    rows.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.label.cmp(&b.label)));
    let dominant = rows.first().map(|r| r.label.clone()).unwrap_or_default();
    let mean_latency = wall
        .as_nanos()
        .checked_div(requests)
        .map(SimDuration::from_nanos)
        .unwrap_or(SimDuration::ZERO);

    Attribution {
        rows,
        requests,
        incomplete: issued.len() as u64,
        wall,
        mean_latency,
        dominant,
        evictions,
    }
}

/// Fraction of `hist`'s samples at or below `ceiling` — the SLO
/// attainment of a latency population against its p99 ceiling.
///
/// Returns 1.0 for an empty histogram (no requests, nothing violated)
/// and for a zero ceiling (no SLO to miss).
pub fn slo_attainment(hist: &storm_sim::Histogram, ceiling: SimDuration) -> f64 {
    if hist.count() == 0 || ceiling == SimDuration::ZERO {
        return 1.0;
    }
    hist.count_at_or_below(ceiling) as f64 / hist.count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_sim::trace::{flow_token, req_token};
    use storm_sim::Histogram;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn shares_sum_to_one_hundred() {
        let req = req_token(40_000, 1);
        let events = vec![
            (
                SimTime::ZERO,
                TraceEvent::Issue {
                    req,
                    kind: 0,
                    bytes: 4096,
                },
            ),
            (
                SimTime::from_nanos(10),
                TraceEvent::Stage {
                    req,
                    hop: Hop::Virtio,
                    id: 0,
                    dur: ns(100),
                },
            ),
            (
                SimTime::from_nanos(20),
                TraceEvent::Stage {
                    req,
                    hop: Hop::Disk,
                    id: 0,
                    dur: ns(500),
                },
            ),
            (
                SimTime::from_nanos(1_000),
                TraceEvent::Complete { req, ok: true },
            ),
        ];
        let a = attribute(&events);
        assert_eq!(a.requests, 1);
        assert_eq!(a.wall, ns(1_000));
        let sum: f64 = a.rows.iter().map(|r| r.share).sum();
        assert!((sum - 100.0).abs() < 1e-6, "shares sum to {sum}");
        // Residual 400ns -> network row, disk dominant.
        assert_eq!(a.dominant, "disk");
        let net = a
            .rows
            .iter()
            .find(|r| r.label == "network")
            .expect("residual");
        assert_eq!(net.total, ns(400));
    }

    #[test]
    fn flow_scoped_stages_fold_into_totals() {
        let req = req_token(40_000, 1);
        let flow = flow_token(40_000);
        let events = vec![
            (
                SimTime::ZERO,
                TraceEvent::Issue {
                    req,
                    kind: 1,
                    bytes: 512,
                },
            ),
            (
                SimTime::from_nanos(5),
                TraceEvent::Stage {
                    req: flow,
                    hop: Hop::Forward,
                    id: 7,
                    dur: ns(300),
                },
            ),
            (
                SimTime::from_nanos(9),
                TraceEvent::Stage {
                    req: flow,
                    hop: Hop::Forward,
                    id: 8,
                    dur: ns(300),
                },
            ),
            (
                SimTime::from_nanos(600),
                TraceEvent::Complete { req, ok: true },
            ),
        ];
        let a = attribute(&events);
        let fwd = a.rows.iter().find(|r| r.label == "forward").expect("row");
        assert_eq!(fwd.total, ns(600));
        // Stages equal wall time: no network row, shares still 100%.
        let sum: f64 = a.rows.iter().map(|r| r.share).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn meta_names_service_rows_and_evictions_surface() {
        let req = req_token(40_000, 2);
        let events = vec![
            (
                SimTime::ZERO,
                TraceEvent::Meta {
                    hop: Hop::Service,
                    id: 0,
                    name: "encryption".into(),
                },
            ),
            (
                SimTime::ZERO,
                TraceEvent::Issue {
                    req,
                    kind: 1,
                    bytes: 4096,
                },
            ),
            (
                SimTime::from_nanos(3),
                TraceEvent::Stage {
                    req,
                    hop: Hop::Service,
                    id: 0,
                    dur: ns(50),
                },
            ),
            (
                SimTime::from_nanos(100),
                TraceEvent::Complete { req, ok: true },
            ),
            (
                SimTime::from_nanos(200),
                TraceEvent::ReplicaEvict { mb: 0, replica: 1 },
            ),
        ];
        let a = attribute(&events);
        assert!(a.rows.iter().any(|r| r.label == "service:encryption"));
        assert_eq!(a.evictions, vec![(SimTime::from_nanos(200), 0, 1)]);
        let table = a.table();
        assert!(table.contains("service:encryption"));
        assert!(table.contains("<- dominant"));
        assert!(table.contains("replica eviction: mb 0 replica 1"));
    }

    #[test]
    fn incomplete_requests_are_counted_not_charged() {
        let done = req_token(40_000, 1);
        let hung = req_token(40_000, 2);
        let events = vec![
            (
                SimTime::ZERO,
                TraceEvent::Issue {
                    req: done,
                    kind: 0,
                    bytes: 512,
                },
            ),
            (
                SimTime::from_nanos(1),
                TraceEvent::Issue {
                    req: hung,
                    kind: 0,
                    bytes: 512,
                },
            ),
            (
                SimTime::from_nanos(50),
                TraceEvent::Complete {
                    req: done,
                    ok: true,
                },
            ),
        ];
        let a = attribute(&events);
        assert_eq!(a.requests, 1);
        assert_eq!(a.incomplete, 1);
        assert_eq!(a.wall, ns(50));
    }

    #[test]
    fn slo_attainment_counts_ceiling_misses() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(SimDuration::from_micros(i * 10));
        }
        // Ceiling at the max: everything attains.
        assert_eq!(slo_attainment(&h, SimDuration::from_micros(1000)), 1.0);
        // Ceiling at ~half the range: about half attain (bucket midpoint
        // rounding allows a small tolerance).
        let half = slo_attainment(&h, SimDuration::from_micros(500));
        assert!((half - 0.5).abs() < 0.05, "attainment {half}");
        // Degenerate inputs default to full attainment.
        assert_eq!(
            slo_attainment(&Histogram::new(), SimDuration::from_micros(1)),
            1.0
        );
        assert_eq!(slo_attainment(&h, SimDuration::ZERO), 1.0);
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let a = attribute(&[]);
        assert_eq!(a.requests, 0);
        assert!(a.rows.is_empty());
        assert!(a.dominant.is_empty());
        assert_eq!(a.mean_latency, SimDuration::ZERO);
    }
}

//! SLO admission control: accept, degrade, or reject new volumes.

use std::collections::BTreeMap;

use crate::slo::{DiskTier, VolumeSlo};

/// The admission controller's ruling on a requested SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The requested SLO fits on its requested tier.
    Accepted(VolumeSlo),
    /// The requested tier is full; the SLO was downgraded (slower tier,
    /// ceiling dropped) rather than turned away.
    Degraded(VolumeSlo),
    /// No tier can cover the IOPS floor — the volume must not be created
    /// with this SLO.
    Rejected,
}

impl AdmissionDecision {
    /// Stable label for metrics and trace output.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionDecision::Accepted(_) => "accepted",
            AdmissionDecision::Degraded(_) => "degraded",
            AdmissionDecision::Rejected => "rejected",
        }
    }

    /// The SLO to actually provision, if any.
    pub fn slo(&self) -> Option<VolumeSlo> {
        match self {
            AdmissionDecision::Accepted(s) | AdmissionDecision::Degraded(s) => Some(*s),
            AdmissionDecision::Rejected => None,
        }
    }
}

/// Tracks committed IOPS floors per tier against fixed tier capacities
/// and rules on new SLO requests.
///
/// Capacity accounting is intentionally simple — the sum of admitted
/// `iops_floor`s may not exceed the tier's provisioned IOPS — which is
/// exactly the overbooking guard IOArbiter applies at volume create.
#[derive(Debug)]
pub struct AdmissionController {
    /// Provisioned IOPS capacity per tier.
    capacity: BTreeMap<DiskTier, u64>,
    /// Sum of admitted floors per tier.
    committed: BTreeMap<DiskTier, u64>,
    /// Decision counts per label, for `qos.admission.*` metrics.
    decisions: BTreeMap<&'static str, u64>,
}

impl AdmissionController {
    /// Creates a controller with the given per-tier IOPS capacities.
    pub fn new(fast_capacity: u64, slow_capacity: u64) -> Self {
        let mut capacity = BTreeMap::new();
        capacity.insert(DiskTier::Fast, fast_capacity);
        capacity.insert(DiskTier::Slow, slow_capacity);
        AdmissionController {
            capacity,
            committed: BTreeMap::new(),
            decisions: BTreeMap::new(),
        }
    }

    fn headroom(&self, tier: DiskTier) -> u64 {
        let cap = self.capacity.get(&tier).copied().unwrap_or(0);
        let used = self.committed.get(&tier).copied().unwrap_or(0);
        cap.saturating_sub(used)
    }

    /// Rules on `requested`, committing capacity on accept/degrade.
    ///
    /// Best-effort requests (floor 0) are always accepted. A floored
    /// request is accepted on its requested tier when headroom covers
    /// the floor; otherwise it is degraded to the other tier (with the
    /// p99 ceiling dropped, since the slower tier can't honor it); if
    /// neither tier has headroom it is rejected.
    pub fn admit(&mut self, requested: VolumeSlo) -> AdmissionDecision {
        let decision = self.decide(requested);
        if let Some(slo) = decision.slo() {
            *self.committed.entry(slo.tier).or_insert(0) += slo.iops_floor;
        }
        *self.decisions.entry(decision.label()).or_insert(0) += 1;
        decision
    }

    fn decide(&self, requested: VolumeSlo) -> AdmissionDecision {
        if requested.iops_floor == 0 {
            return AdmissionDecision::Accepted(requested);
        }
        if self.headroom(requested.tier) >= requested.iops_floor {
            return AdmissionDecision::Accepted(requested);
        }
        let other = match requested.tier {
            DiskTier::Fast => DiskTier::Slow,
            DiskTier::Slow => DiskTier::Fast,
        };
        if self.headroom(other) >= requested.iops_floor {
            let degraded = VolumeSlo {
                tier: other,
                // A forced downgrade can't promise the original latency
                // ceiling; an upgrade keeps it.
                p99_ceiling_us: if other == DiskTier::Slow {
                    0
                } else {
                    requested.p99_ceiling_us
                },
                ..requested
            };
            return AdmissionDecision::Degraded(degraded);
        }
        AdmissionDecision::Rejected
    }

    /// Releases a previously admitted floor (volume deleted or migrated
    /// off the tier).
    pub fn release(&mut self, tier: DiskTier, iops_floor: u64) {
        if let Some(used) = self.committed.get_mut(&tier) {
            *used = used.saturating_sub(iops_floor);
        }
    }

    /// Moves a committed floor between tiers (live migration).
    pub fn transfer(&mut self, from: DiskTier, to: DiskTier, iops_floor: u64) {
        self.release(from, iops_floor);
        *self.committed.entry(to).or_insert(0) += iops_floor;
    }

    /// Decision counts per label (`accepted`/`degraded`/`rejected`).
    pub fn decision_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.decisions
    }

    /// Committed floor on `tier`.
    pub fn committed(&self, tier: DiskTier) -> u64 {
        self.committed.get(&tier).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_capacity_then_degrades_then_rejects() {
        let mut ac = AdmissionController::new(1000, 500);
        let req = VolumeSlo::latency(600, 800);
        assert_eq!(ac.admit(req), AdmissionDecision::Accepted(req));
        // Fast tier has only 400 left: degrade to slow, ceiling dropped.
        match ac.admit(VolumeSlo::latency(500, 800)) {
            AdmissionDecision::Degraded(s) => {
                assert_eq!(s.tier, DiskTier::Slow);
                assert_eq!(s.p99_ceiling_us, 0);
                assert_eq!(s.iops_floor, 500);
            }
            other => panic!("expected degrade, got {other:?}"),
        }
        // Both tiers now full for a 500-floor request.
        assert_eq!(
            ac.admit(VolumeSlo::latency(500, 800)),
            AdmissionDecision::Rejected
        );
        assert_eq!(ac.decision_counts().get("accepted"), Some(&1));
        assert_eq!(ac.decision_counts().get("degraded"), Some(&1));
        assert_eq!(ac.decision_counts().get("rejected"), Some(&1));
    }

    #[test]
    fn best_effort_always_admitted() {
        let mut ac = AdmissionController::new(0, 0);
        assert_eq!(
            ac.admit(VolumeSlo::BEST_EFFORT),
            AdmissionDecision::Accepted(VolumeSlo::BEST_EFFORT)
        );
    }

    #[test]
    fn release_and_transfer_return_headroom() {
        let mut ac = AdmissionController::new(1000, 1000);
        let req = VolumeSlo::latency(1000, 500);
        assert!(matches!(ac.admit(req), AdmissionDecision::Accepted(_)));
        assert_eq!(ac.committed(DiskTier::Fast), 1000);
        ac.transfer(DiskTier::Fast, DiskTier::Slow, 1000);
        assert_eq!(ac.committed(DiskTier::Fast), 0);
        assert_eq!(ac.committed(DiskTier::Slow), 1000);
        ac.release(DiskTier::Slow, 1000);
        assert_eq!(ac.committed(DiskTier::Slow), 0);
        // Headroom is back: the same request is accepted again.
        assert!(matches!(ac.admit(req), AdmissionDecision::Accepted(_)));
    }
}

//! SLO-tagged volumes and disk tiers.

/// The backing-disk tier a volume lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiskTier {
    /// Low-latency tier (SSD-class: short seek, high bandwidth).
    Fast,
    /// Capacity tier (spindle-class: long seek, modest bandwidth).
    Slow,
}

impl DiskTier {
    /// Stable label for metrics and trace output.
    pub fn label(self) -> &'static str {
        match self {
            DiskTier::Fast => "fast",
            DiskTier::Slow => "slow",
        }
    }
}

/// The service-level objective attached to a volume at create time.
///
/// Mirrors IOArbiter's SLO-tagged provisioning: a floor on sustainable
/// IOPS, a ceiling on read p99, and the tier the placement engine chose
/// to satisfy them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeSlo {
    /// Minimum IOPS the tenant must be able to sustain.
    pub iops_floor: u64,
    /// p99 completion-latency ceiling in microseconds (0 = no ceiling).
    pub p99_ceiling_us: u64,
    /// Tier the volume is (currently) placed on.
    pub tier: DiskTier,
}

impl VolumeSlo {
    /// A best-effort SLO: no floors, no ceilings, capacity tier.
    pub const BEST_EFFORT: VolumeSlo = VolumeSlo {
        iops_floor: 0,
        p99_ceiling_us: 0,
        tier: DiskTier::Slow,
    };

    /// A latency-sensitive SLO that asks for the fast tier.
    pub fn latency(iops_floor: u64, p99_ceiling_us: u64) -> Self {
        VolumeSlo {
            iops_floor,
            p99_ceiling_us,
            tier: DiskTier::Fast,
        }
    }

    /// Whether an observed p99 (in microseconds) violates the ceiling.
    pub fn violated_by(&self, p99_us: u64) -> bool {
        self.p99_ceiling_us > 0 && p99_us > self.p99_ceiling_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_zero_never_violates() {
        let slo = VolumeSlo::BEST_EFFORT;
        assert!(!slo.violated_by(u64::MAX));
    }

    #[test]
    fn ceiling_is_exclusive_bound() {
        let slo = VolumeSlo::latency(1000, 500);
        assert!(!slo.violated_by(500));
        assert!(slo.violated_by(501));
    }

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(DiskTier::Fast.label(), "fast");
        assert_eq!(DiskTier::Slow.label(), "slow");
    }
}

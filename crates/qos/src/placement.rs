//! IOArbiter-style placement engine: SLO-aware tier selection and
//! violation-driven migration planning.

use std::collections::BTreeMap;

use storm_sim::SimTime;

use crate::slo::{DiskTier, VolumeSlo};

/// A planned backing-disk migration for one volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Volume (by the caller's numeric id) to move.
    pub volume: u64,
    /// Tier the volume currently sits on.
    pub from: DiskTier,
    /// Tier the volume should move to.
    pub to: DiskTier,
    /// Instant the violating observation was made.
    pub decided_at: SimTime,
}

/// Per-volume placement state.
#[derive(Debug, Clone, Copy)]
struct Record {
    slo: VolumeSlo,
    /// Consecutive violating p99 observations.
    strikes: u32,
    /// Set once a migration for this volume has been planned or done —
    /// the engine migrates each volume at most once per direction to
    /// avoid tier ping-pong.
    migrated: bool,
}

/// Watches per-volume p99 observations against SLO ceilings and plans
/// tier migrations for persistent violators.
///
/// The engine is deliberately conservative: a single bad sample never
/// triggers a move; `strike_threshold` consecutive violations do. State
/// lives in [`BTreeMap`]s so scan order is deterministic.
#[derive(Debug)]
pub struct PlacementEngine {
    volumes: BTreeMap<u64, Record>,
    strike_threshold: u32,
}

impl PlacementEngine {
    /// Creates an engine that migrates after `strike_threshold`
    /// consecutive violating observations (clamped to ≥ 1).
    pub fn new(strike_threshold: u32) -> Self {
        PlacementEngine {
            volumes: BTreeMap::new(),
            strike_threshold: strike_threshold.max(1),
        }
    }

    /// Registers a volume with its admitted SLO.
    pub fn register(&mut self, volume: u64, slo: VolumeSlo) {
        self.volumes.insert(
            volume,
            Record {
                slo,
                strikes: 0,
                migrated: false,
            },
        );
    }

    /// The SLO currently recorded for `volume`.
    pub fn slo(&self, volume: u64) -> Option<VolumeSlo> {
        self.volumes.get(&volume).map(|r| r.slo)
    }

    /// Feeds one p99 observation (microseconds) for `volume` at `now`.
    /// Returns a migration plan when the volume has violated its ceiling
    /// `strike_threshold` times in a row and a faster tier exists.
    pub fn observe_p99(&mut self, now: SimTime, volume: u64, p99_us: u64) -> Option<MigrationPlan> {
        let rec = self.volumes.get_mut(&volume)?;
        if !rec.slo.violated_by(p99_us) {
            rec.strikes = 0;
            return None;
        }
        rec.strikes += 1;
        if rec.migrated || rec.strikes < self.strike_threshold {
            return None;
        }
        // Only one escalation exists: Slow → Fast. A volume already on
        // the fast tier has nowhere better to go.
        if rec.slo.tier != DiskTier::Slow {
            return None;
        }
        rec.migrated = true;
        rec.strikes = 0;
        Some(MigrationPlan {
            volume,
            from: DiskTier::Slow,
            to: DiskTier::Fast,
            decided_at: now,
        })
    }

    /// Commits a completed migration: the volume's recorded tier flips.
    pub fn complete_migration(&mut self, plan: &MigrationPlan) {
        if let Some(rec) = self.volumes.get_mut(&plan.volume) {
            rec.slo.tier = plan.to;
        }
    }

    /// `(volume, slo)` pairs in deterministic id order.
    pub fn volumes(&self) -> impl Iterator<Item = (u64, VolumeSlo)> + '_ {
        self.volumes.iter().map(|(id, r)| (*id, r.slo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrates_after_consecutive_strikes_only() {
        let mut pe = PlacementEngine::new(3);
        let slo = VolumeSlo {
            iops_floor: 100,
            p99_ceiling_us: 1000,
            tier: DiskTier::Slow,
        };
        pe.register(7, slo);
        let t = SimTime::from_millis(1);
        assert!(pe.observe_p99(t, 7, 2000).is_none());
        assert!(pe.observe_p99(t, 7, 2000).is_none());
        // A good sample resets the streak.
        assert!(pe.observe_p99(t, 7, 500).is_none());
        assert!(pe.observe_p99(t, 7, 2000).is_none());
        assert!(pe.observe_p99(t, 7, 2000).is_none());
        let plan = pe.observe_p99(t, 7, 2000).expect("third strike migrates");
        assert_eq!(plan.volume, 7);
        assert_eq!(plan.from, DiskTier::Slow);
        assert_eq!(plan.to, DiskTier::Fast);
        // At most one migration per volume.
        assert!(pe.observe_p99(t, 7, 2000).is_none());
        pe.complete_migration(&plan);
        assert_eq!(pe.slo(7).unwrap().tier, DiskTier::Fast);
    }

    #[test]
    fn fast_tier_violator_has_nowhere_to_go() {
        let mut pe = PlacementEngine::new(1);
        pe.register(1, VolumeSlo::latency(100, 10));
        assert!(pe.observe_p99(SimTime::ZERO, 1, 99_999).is_none());
    }

    #[test]
    fn unknown_volume_is_ignored() {
        let mut pe = PlacementEngine::new(1);
        assert!(pe.observe_p99(SimTime::ZERO, 42, 1_000_000).is_none());
    }
}

//! Deterministic token-bucket shapers driven by the simulation clock.

use storm_sim::{SimDuration, SimTime};

/// Nanoseconds per second — the fixed-point scale of the bucket level.
const NS: u128 = 1_000_000_000;

/// A token bucket over the virtual clock.
///
/// The level is tracked in *token-nanoseconds* (tokens × 10⁹), so a refill
/// of `rate` tokens/second adds exactly `rate × Δns` scaled units per
/// elapsed nanosecond — pure integer arithmetic, no drift, no float. The
/// level may go negative (debt): a take that overdraws returns the delay
/// until the debt is repaid, which is how sustained overload turns into
/// back-to-back spacing at exactly the configured rate.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in tokens per second (0 = unlimited).
    rate: u64,
    /// Bucket capacity in tokens (burst credit).
    burst: u64,
    /// Current level in token-nanoseconds; negative = debt.
    level: i128,
    /// Last refill instant.
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate` tokens/second with `burst`
    /// tokens of credit, initially full. `rate == 0` disables limiting.
    pub fn new(rate: u64, burst: u64) -> Self {
        TokenBucket {
            rate,
            burst,
            level: burst as i128 * NS as i128,
            last: SimTime::ZERO,
        }
    }

    /// The configured rate in tokens/second (0 = unlimited).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// The configured burst capacity in tokens.
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Whole tokens currently available at `now` (clamped at zero while
    /// in debt).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        if self.level <= 0 {
            0
        } else {
            (self.level / NS as i128) as u64
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let dt = (now - self.last).as_nanos() as u128;
        self.last = now;
        if self.rate == 0 {
            return;
        }
        let cap = self.burst as i128 * NS as i128;
        self.level = (self.level + (self.rate as u128 * dt) as i128).min(cap);
    }

    /// Takes `n` tokens at `now` and returns how long the caller must
    /// delay before the tokens are actually covered by refill.
    ///
    /// [`SimDuration::ZERO`] is the uncontended fast path: the request is
    /// under its limit and proceeds untouched. A positive delay means the
    /// bucket went into debt; callers should hold the work for that long.
    pub fn take(&mut self, now: SimTime, n: u64) -> SimDuration {
        if self.rate == 0 {
            return SimDuration::ZERO;
        }
        self.refill(now);
        self.level -= n as i128 * NS as i128;
        if self.level >= 0 {
            return SimDuration::ZERO;
        }
        // Delay until the debt is repaid: ceil(-level / rate) nanoseconds.
        let debt = (-self.level) as u128;
        SimDuration::from_nanos(debt.div_ceil(self.rate as u128) as u64)
    }
}

/// Per-tenant rate limits: an IOPS bucket and a bandwidth bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitSpec {
    /// Operations per second (0 = unlimited).
    pub iops: u64,
    /// Burst credit in operations.
    pub iops_burst: u64,
    /// Bytes per second (0 = unlimited).
    pub bytes_per_sec: u64,
    /// Burst credit in bytes.
    pub bytes_burst: u64,
}

impl RateLimitSpec {
    /// No limiting at all — every admit is the zero-delay fast path.
    pub const UNLIMITED: RateLimitSpec = RateLimitSpec {
        iops: 0,
        iops_burst: 0,
        bytes_per_sec: 0,
        bytes_burst: 0,
    };

    /// An IOPS-only limit with `burst` operations of credit.
    pub fn iops_limit(iops: u64, burst: u64) -> Self {
        RateLimitSpec {
            iops,
            iops_burst: burst,
            bytes_per_sec: 0,
            bytes_burst: 0,
        }
    }
}

/// The dual token-bucket limiter enforcing a [`RateLimitSpec`].
#[derive(Debug, Clone)]
pub struct RateLimiter {
    ops: TokenBucket,
    bytes: TokenBucket,
    /// Operations that were delayed (left the fast path).
    throttled: u64,
    /// Total shaping delay imposed.
    throttle_total: SimDuration,
}

impl RateLimiter {
    /// Creates a limiter from a spec.
    pub fn new(spec: RateLimitSpec) -> Self {
        RateLimiter {
            ops: TokenBucket::new(spec.iops, spec.iops_burst),
            bytes: TokenBucket::new(spec.bytes_per_sec, spec.bytes_burst),
            throttled: 0,
            throttle_total: SimDuration::ZERO,
        }
    }

    /// Admits one operation of `bytes` payload at `now`; the result is
    /// the shaping delay (ZERO = under both limits, the fast path).
    pub fn admit(&mut self, now: SimTime, bytes: u64) -> SimDuration {
        let d_ops = self.ops.take(now, 1);
        let d_bytes = self.bytes.take(now, bytes);
        let d = d_ops.max(d_bytes);
        if d > SimDuration::ZERO {
            self.throttled += 1;
            self.throttle_total += d;
        }
        d
    }

    /// `(throttled operation count, summed shaping delay)` so far.
    pub fn throttle_stats(&self) -> (u64, SimDuration) {
        (self.throttled, self.throttle_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    /// Burst credit drains instantly, then sustained load is spaced at
    /// exactly the configured rate — and the refill boundary has no
    /// off-by-one: the token that becomes available at instant T is
    /// usable at T, not T±1ns.
    #[test]
    fn burst_then_sustained_rate_no_refill_off_by_one() {
        // 1000 ops/s (one token per millisecond), 4 tokens of burst.
        let mut b = TokenBucket::new(1000, 4);
        // The burst passes with zero delay.
        for _ in 0..4 {
            assert_eq!(b.take(SimTime::ZERO, 1), SimDuration::ZERO);
        }
        // The 5th op at t=0 owes exactly one full refill interval.
        assert_eq!(b.take(SimTime::ZERO, 1), SimDuration::from_millis(1));
        // The 6th owes two, and so on: sustained load spaces at the rate.
        assert_eq!(b.take(SimTime::ZERO, 1), SimDuration::from_millis(2));
        // At exactly t = 3ms the debt from both delayed ops is repaid
        // (level back to 1 token): a take at the boundary is free again.
        let t = SimTime::from_millis(3);
        assert_eq!(b.take(t, 1), SimDuration::ZERO);
        // ... and the very next one at the same instant owes exactly one
        // interval again — the boundary credited one token, not two.
        assert_eq!(b.take(t, 1), SimDuration::from_millis(1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000, 8);
        for _ in 0..8 {
            assert_eq!(b.take(at(0), 1), SimDuration::ZERO);
        }
        // A long idle period refills to the cap, not beyond.
        assert_eq!(b.available(SimTime::from_secs(10)), 8);
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = TokenBucket::new(0, 0);
        for i in 0..1000 {
            assert_eq!(b.take(at(i), 1_000_000), SimDuration::ZERO);
        }
    }

    #[test]
    fn fractional_refill_accumulates_exactly() {
        // 3 ops/s: one token every 333,333,333.33... ns. Integer
        // token-nanosecond accounting must not lose the fraction.
        let mut b = TokenBucket::new(3, 1);
        assert_eq!(b.take(SimTime::ZERO, 1), SimDuration::ZERO);
        // Ten seconds of refill at 3/s = exactly 30 tokens earned; with
        // burst 1 the bucket caps, but debt repayment is exact: take 31
        // tokens at t=10s leaves 30 tokens of debt = 10s of delay.
        let t = SimTime::from_secs(10);
        assert_eq!(b.take(t, 31), SimDuration::from_secs(10));
    }

    #[test]
    fn limiter_combines_ops_and_bytes() {
        let mut l = RateLimiter::new(RateLimitSpec {
            iops: 1000,
            iops_burst: 1000,
            bytes_per_sec: 1_000_000,
            bytes_burst: 64 * 1024,
        });
        // Under both limits: fast path.
        assert_eq!(l.admit(SimTime::ZERO, 4096), SimDuration::ZERO);
        // A huge write exhausts the byte bucket long before the op bucket.
        let d = l.admit(SimTime::ZERO, 10_000_000);
        assert!(d > SimDuration::from_secs(9), "byte bucket dominates: {d}");
        let (n, total) = l.throttle_stats();
        assert_eq!(n, 1);
        assert_eq!(total, d);
    }

    #[test]
    fn unlimited_spec_never_throttles() {
        let mut l = RateLimiter::new(RateLimitSpec::UNLIMITED);
        for i in 0..100 {
            assert_eq!(l.admit(at(i), u64::MAX / 2), SimDuration::ZERO);
        }
        assert_eq!(l.throttle_stats().0, 0);
    }
}

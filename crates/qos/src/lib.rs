//! Per-tenant quality of service for the StorM fleet.
//!
//! StorM's datapath treats every tenant identically; at fleet scale that
//! means noisy neighbors. This crate supplies the four mechanisms that
//! turn the shared platform into an isolated one, in the style of
//! IOArbiter's SLO-tagged provisioning:
//!
//! - [`TokenBucket`] / [`RateLimiter`] — deterministic, sim-clock-driven
//!   IOPS + bandwidth shaping with burst credit. A tenant under its
//!   limit stays on the zero-delay fast path and its datapath behavior
//!   is byte-identical to an unlimited run.
//! - [`WeightedFairQueue`] — virtual-finish-time WFQ for the target
//!   dispatch queue: under contention, service shares converge to the
//!   configured weight ratio.
//! - [`VolumeSlo`] / [`AdmissionController`] — SLO-tagged volume create
//!   with overbooking guards: accept, degrade, or reject.
//! - [`PlacementEngine`] — watches per-volume p99 against the SLO
//!   ceiling and plans copy-then-cutover tier migrations for persistent
//!   violators.
//!
//! Everything here is pure mechanism over the virtual clock: no wall
//! time, no ambient randomness, `BTreeMap` iteration only — the same
//! determinism contract storm-lint enforces on the rest of the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod bucket;
mod placement;
mod slo;
mod wfq;

pub use admission::{AdmissionController, AdmissionDecision};
pub use bucket::{RateLimitSpec, RateLimiter, TokenBucket};
pub use placement::{MigrationPlan, PlacementEngine};
pub use slo::{DiskTier, VolumeSlo};
pub use wfq::WeightedFairQueue;

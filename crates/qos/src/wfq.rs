//! Virtual-time weighted fair queueing.

use std::collections::BTreeMap;

/// A weighted fair queue over opaque work items.
///
/// Classic virtual-finish-time WFQ: each tenant carries a weight, each
/// enqueued item a cost, and the scheduler always pops the item with the
/// smallest finish tag `max(vtime, last_finish[tenant]) + cost/weight`.
/// Over any long window, tenant service shares converge to the weight
/// ratio regardless of arrival patterns.
///
/// Everything is integer arithmetic over [`BTreeMap`]s; ties break on
/// `(finish_tag, tenant, seq)`, so iteration and pop order are fully
/// deterministic — a hard requirement for the equal-seed trace property.
#[derive(Debug)]
pub struct WeightedFairQueue<T> {
    /// Per-tenant weight (share of service under contention).
    weights: BTreeMap<u32, u64>,
    /// Per-tenant finish tag of the most recently enqueued item.
    last_finish: BTreeMap<u32, u128>,
    /// Queued items keyed by (finish tag, tenant, seq) for deterministic
    /// smallest-tag-first pop.
    queue: BTreeMap<(u128, u32, u64), T>,
    /// Global virtual time: finish tag of the last popped item.
    vtime: u128,
    /// Monotone enqueue counter for tie-breaking.
    seq: u64,
    /// Cumulative cost served per tenant (for fairness accounting).
    served: BTreeMap<u32, u64>,
}

/// Scale factor applied to costs so integer division by the weight keeps
/// sub-unit precision.
const COST_SCALE: u128 = 1 << 20;

impl<T> WeightedFairQueue<T> {
    /// Creates an empty queue. Tenants default to weight 1 until
    /// [`set_weight`](Self::set_weight) is called.
    pub fn new() -> Self {
        WeightedFairQueue {
            weights: BTreeMap::new(),
            last_finish: BTreeMap::new(),
            queue: BTreeMap::new(),
            vtime: 0,
            seq: 0,
            served: BTreeMap::new(),
        }
    }

    /// Sets `tenant`'s weight. A weight of 0 is clamped to 1.
    pub fn set_weight(&mut self, tenant: u32, weight: u64) {
        self.weights.insert(tenant, weight.max(1));
    }

    /// The configured weight for `tenant` (default 1).
    pub fn weight(&self, tenant: u32) -> u64 {
        self.weights.get(&tenant).copied().unwrap_or(1)
    }

    /// Enqueues `item` for `tenant` with the given service `cost`
    /// (arbitrary units — e.g. estimated service nanoseconds or bytes).
    pub fn push(&mut self, tenant: u32, cost: u64, item: T) {
        let start = self
            .last_finish
            .get(&tenant)
            .copied()
            .unwrap_or(0)
            .max(self.vtime);
        let w = self.weight(tenant) as u128;
        let finish = start + (cost.max(1) as u128 * COST_SCALE) / w;
        self.last_finish.insert(tenant, finish);
        let seq = self.seq;
        self.seq += 1;
        self.queue.insert((finish, tenant, seq), item);
    }

    /// Pops the item with the smallest virtual finish tag, advancing the
    /// virtual clock. Returns `(tenant, item)`.
    pub fn pop(&mut self) -> Option<(u32, T)> {
        let key = *self.queue.keys().next()?;
        let item = self.queue.remove(&key).expect("key just observed");
        let (finish, tenant, _) = key;
        self.vtime = self.vtime.max(finish);
        Some((tenant, item))
    }

    /// Records `cost` units of completed service for `tenant`.
    pub fn record_served(&mut self, tenant: u32, cost: u64) {
        *self.served.entry(tenant).or_insert(0) += cost;
    }

    /// Cumulative service recorded for `tenant`.
    pub fn served(&self, tenant: u32) -> u64 {
        self.served.get(&tenant).copied().unwrap_or(0)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued items belonging to `tenant`.
    pub fn backlog(&self, tenant: u32) -> usize {
        self.queue.keys().filter(|(_, t, _)| *t == tenant).count()
    }
}

impl<T> Default for WeightedFairQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With weights 2:1 and both tenants continuously backlogged, the
    /// long-run service shares land within 5% of 2/3 and 1/3.
    #[test]
    fn weighted_shares_converge_2_to_1() {
        let mut q: WeightedFairQueue<u64> = WeightedFairQueue::new();
        q.set_weight(1, 2);
        q.set_weight(2, 1);
        // Keep both backlogs non-empty: top up as items are served.
        let cost = 100u64;
        for _ in 0..8 {
            q.push(1, cost, cost);
            q.push(2, cost, cost);
        }
        let rounds = 3000;
        for i in 0..rounds {
            let (tenant, served) = q.pop().expect("backlogged");
            q.record_served(tenant, served);
            // Replenish the popped tenant so both stay backlogged.
            q.push(tenant, cost, cost);
            let _ = i;
        }
        let total = (q.served(1) + q.served(2)) as f64;
        let share1 = q.served(1) as f64 / total;
        let share2 = q.served(2) as f64 / total;
        assert!(
            (share1 - 2.0 / 3.0).abs() < 0.05,
            "tenant 1 share {share1:.3} not within 5% of 2/3"
        );
        assert!(
            (share2 - 1.0 / 3.0).abs() < 0.05,
            "tenant 2 share {share2:.3} not within 5% of 1/3"
        );
    }

    /// Equal weights with unequal costs still split service evenly:
    /// fairness is in cost units, not op counts.
    #[test]
    fn equal_weights_split_cost_evenly() {
        let mut q: WeightedFairQueue<u64> = WeightedFairQueue::new();
        for _ in 0..4 {
            q.push(1, 400, 400); // few large ops
            for _ in 0..4 {
                q.push(2, 100, 100); // many small ops
            }
        }
        while let Some((tenant, served)) = q.pop() {
            q.record_served(tenant, served);
        }
        assert_eq!(q.served(1), q.served(2));
    }

    /// Pop order is fully deterministic, including ties.
    #[test]
    fn deterministic_tie_break() {
        let run = || {
            let mut q: WeightedFairQueue<u32> = WeightedFairQueue::new();
            for i in 0..20 {
                q.push(i % 4, 50, i);
            }
            let mut order = Vec::new();
            while let Some((_, item)) = q.pop() {
                order.push(item);
            }
            order
        };
        assert_eq!(run(), run());
    }

    /// An idle tenant doesn't bank credit: after idling, its next item
    /// starts at the current virtual time, not its stale finish tag.
    #[test]
    fn no_credit_for_idle_time() {
        let mut q: WeightedFairQueue<&'static str> = WeightedFairQueue::new();
        q.set_weight(1, 1);
        q.set_weight(2, 1);
        for _ in 0..10 {
            q.push(1, 100, "busy");
        }
        for _ in 0..5 {
            q.pop();
        }
        // Tenant 2 arrives late; it must interleave from now on, not
        // preempt everything tenant 1 already queued.
        q.push(2, 100, "late");
        let mut popped = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        // The late arrival lands somewhere in the middle, not first.
        assert_ne!(popped[0], 2, "late arrival must not jump the queue");
        assert!(popped.contains(&2));
    }

    #[test]
    fn backlog_counts_per_tenant() {
        let mut q: WeightedFairQueue<u8> = WeightedFairQueue::new();
        q.push(7, 10, 0);
        q.push(7, 10, 1);
        q.push(9, 10, 2);
        assert_eq!(q.backlog(7), 2);
        assert_eq!(q.backlog(9), 1);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
    }
}

//! Fixture-based self-tests: every rule catches its `bad.rs`, passes its
//! `good.rs`, and honors the inline allow in `allowed.rs`; the JSON
//! output is locked by a snapshot.

use std::fs;
use std::path::PathBuf;

use storm_lint::{analyze_source, render_json, Config, FileClass, Finding};

/// Each rule with the file class that puts it in scope.
const CASES: [(&str, &str); 6] = [
    ("no-wall-clock", "crates/net/src/fixture.rs"),
    ("no-ambient-rand", "crates/net/src/fixture.rs"),
    ("no-hash-iter", "crates/net/src/fixture.rs"),
    ("no-hot-path-copy", "crates/net/src/tcp.rs"),
    ("no-panic", "crates/net/src/tcp.rs"),
    ("forbid-unsafe", "crates/net/src/lib.rs"),
];

fn fixture_path(rule: &str, name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(name)
}

fn fixture(rule: &str, name: &str) -> String {
    let path = fixture_path(rule, name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn run(rule: &str, class_path: &str, name: &str) -> Vec<Finding> {
    let class = FileClass::from_rel_path(class_path);
    analyze_source(&class, &fixture(rule, name), &Config::default())
}

#[test]
fn bad_fixtures_are_caught() {
    for (rule, class_path) in CASES {
        let findings = run(rule, class_path, "bad.rs");
        assert!(!findings.is_empty(), "{rule}: bad.rs produced no findings");
        assert!(
            findings.iter().all(|f| f.rule == rule),
            "{rule}: bad.rs tripped other rules: {findings:?}"
        );
        for f in &findings {
            assert!(f.line >= 1 && f.col >= 1, "{rule}: zero span in {f:?}");
            assert!(!f.suggestion.is_empty(), "{rule}: missing suggestion");
        }
    }
}

#[test]
fn good_fixtures_pass() {
    for (rule, class_path) in CASES {
        let findings = run(rule, class_path, "good.rs");
        assert!(findings.is_empty(), "{rule}: good.rs flagged: {findings:?}");
    }
}

#[test]
fn inline_allow_is_honored() {
    for (rule, class_path) in CASES {
        let findings = run(rule, class_path, "allowed.rs");
        assert!(
            findings.is_empty(),
            "{rule}: allowed.rs still flagged: {findings:?}"
        );
    }
}

/// Regression (lexer line-map): an allow stays in force across a
/// multi-line block comment sitting between it and the code line.
#[test]
fn allow_covers_through_block_comment() {
    let findings = run(
        "no-wall-clock",
        "crates/net/src/fixture.rs",
        "allowed_block_comment.rs",
    );
    assert!(
        findings.is_empty(),
        "allow did not survive the block comment: {findings:?}"
    );
}

#[test]
fn test_code_is_exempt() {
    let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v: Vec<u8> = Vec::new();\n        v.first().unwrap();\n        let w = v.to_vec();\n        assert!(w.is_empty());\n    }\n}\n";
    let class = FileClass::from_rel_path("crates/net/src/tcp.rs");
    let findings = analyze_source(&class, src, &Config::default());
    assert!(findings.is_empty(), "test module flagged: {findings:?}");
}

#[test]
fn config_path_allowlist_suppresses() {
    let mut cfg = Config::default();
    cfg.allow_paths
        .push((storm_lint::Rule::NoPanic, "net/src/tcp.rs".to_string()));
    let class = FileClass::from_rel_path("crates/net/src/tcp.rs");
    let findings = analyze_source(&class, "fn f(v: &[u8]) { v.first().unwrap(); }\n", &cfg);
    assert!(
        findings.is_empty(),
        "allowlisted file flagged: {findings:?}"
    );
}

/// Locks the machine-readable output byte-for-byte. Regenerate with
/// `STORM_LINT_BLESS=1 cargo test -p storm-lint --test fixtures`.
#[test]
fn json_snapshot() {
    let class = FileClass::from_rel_path("crates/net/src/fixture.rs");
    let input = fixture("snapshot", "input.rs");
    let findings = analyze_source(&class, &input, &Config::default());
    assert!(!findings.is_empty(), "snapshot input must produce findings");
    let doc = render_json(&findings, 1);
    let path = fixture_path("snapshot", "expected.json");
    if std::env::var_os("STORM_LINT_BLESS").is_some() {
        fs::write(&path, &doc).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless first)", path.display()));
    assert_eq!(doc, expected, "JSON output drifted; re-bless if intended");
}

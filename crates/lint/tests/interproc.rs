//! Workspace-mode tests over the mini-workspace in
//! `fixtures/interproc/`: chains, conservative resolution, allow
//! escapes, stale allows, the metric registry, and the summary cache.
//! JSON and SARIF output are locked by snapshots; regenerate with
//! `STORM_LINT_BLESS=1 cargo test -p storm-lint --test interproc`.

use std::fs;
use std::path::{Path, PathBuf};

use storm_lint::{analyze_workspace_opts, render_json, render_sarif, Config, Finding, ScanOptions};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("interproc")
}

fn scan() -> (Vec<Finding>, usize) {
    let (findings, stats) = analyze_workspace_opts(
        &fixture_root(),
        &Config::default(),
        ScanOptions { cache: false },
    )
    .expect("fixture workspace scans");
    (findings, stats.files_scanned)
}

fn chain_names(f: &Finding) -> Vec<&str> {
    f.chain.iter().map(|fr| fr.fn_name.as_str()).collect()
}

/// The acceptance-criterion test: a transitive finding whose diagnostic
/// carries the full call chain from the scoped caller to the source.
#[test]
fn transitive_chain_is_reported_in_full() {
    let (findings, _) = scan();
    let f = findings
        .iter()
        .find(|f| {
            f.rule == "no-transitive-nondeterminism" && chain_names(f).first() == Some(&"tick")
        })
        .expect("tick chain reported");
    assert_eq!(f.file, "crates/sim/src/lib.rs");
    assert_eq!(
        chain_names(&f.clone()),
        ["tick", "sample", "leaf", "`Instant`"]
    );
    assert_eq!(
        f.chain.last().unwrap().file,
        "crates/workloads/src/probe.rs"
    );
    assert!(f.message.contains("reads-wall-clock"), "{}", f.message);
}

#[test]
fn trait_method_dispatch_is_linked() {
    let (findings, _) = scan();
    let f = findings
        .iter()
        .find(|f| {
            f.rule == "no-transitive-nondeterminism" && chain_names(f).first() == Some(&"observe")
        })
        .expect("trait dispatch chain reported");
    assert!(chain_names(f).contains(&"read"), "{:?}", f.chain);
    assert_eq!(chain_names(f).last(), Some(&"`SystemTime`"));
}

#[test]
fn ambiguous_resolution_is_conservative() {
    let (findings, _) = scan();
    let f = findings
        .iter()
        .find(|f| {
            f.rule == "no-transitive-nondeterminism" && chain_names(f).first() == Some(&"audit")
        })
        .expect("ambiguous plain call still reported");
    assert!(chain_names(f).contains(&"latency"), "{:?}", f.chain);
}

#[test]
fn no_cascade_and_no_scoped_source_duplicates() {
    let (findings, _) = scan();
    // Exactly the three boundary findings; unscoped intermediates and
    // the allowed `setup` chain produce nothing.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "no-transitive-nondeterminism")
            .count(),
        3,
        "{findings:#?}"
    );
}

#[test]
fn allow_on_intermediate_frame_escapes_and_is_used() {
    let (findings, _) = scan();
    assert!(
        !findings
            .iter()
            .any(|f| chain_names(f).contains(&"cold_init")),
        "allowed chain still reported: {findings:#?}"
    );
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == "stale-allow" && f.file.contains("probe.rs")),
        "used chain allow reported stale: {findings:#?}"
    );
}

#[test]
fn stale_allow_is_reported() {
    let (findings, _) = scan();
    let stale: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "stale-allow")
        .collect();
    assert_eq!(stale.len(), 1, "{findings:#?}");
    assert_eq!(stale[0].file, "crates/sim/src/lib.rs");
    assert!(stale[0].message.contains("no-hash-iter"));
}

#[test]
fn metric_typo_is_caught_registered_names_pass() {
    let (findings, _) = scan();
    let metric: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "metric-name-registry")
        .collect();
    assert_eq!(metric.len(), 1, "{findings:#?}");
    assert!(metric[0].message.contains("storm_relay_pdus_totl"));
    assert_eq!(metric[0].file, "crates/telemetry/src/lib.rs");
}

#[test]
fn alloc_on_datapath_direct_and_transitive() {
    let (findings, _) = scan();
    let alloc: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "no-alloc-on-datapath")
        .collect();
    assert_eq!(alloc.len(), 2, "{findings:#?}");
    assert!(alloc.iter().all(|f| f.file == "crates/net/src/tcp.rs"));
    assert!(alloc.iter().any(|f| f.message.contains("`vec!`")));
    assert!(alloc.iter().any(|f| f.message.contains("via `log_drop`")));
}

#[test]
fn blocking_in_shard_via_helper() {
    let (findings, _) = scan();
    let f = findings
        .iter()
        .find(|f| f.rule == "no-blocking-in-shard")
        .expect("blocking chain reported");
    assert_eq!(f.file, "crates/bench/src/fleet.rs");
    assert_eq!(chain_names(f).first(), Some(&"deliver"));
    assert!(f.message.contains("`.lock()`"), "{}", f.message);
}

fn snapshot(name: &str, rendered: &str) {
    let path = fixture_root().join(name);
    if std::env::var_os("STORM_LINT_BLESS").is_some() {
        fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless first)", path.display()));
    assert_eq!(rendered, expected, "{name} drifted; re-bless if intended");
}

#[test]
fn json_and_sarif_snapshots() {
    let (findings, scanned) = scan();
    snapshot("expected.json", &render_json(&findings, scanned));
    snapshot("expected.sarif", &render_sarif(&findings));
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// Warm scans must hit the cache for every file and produce identical
/// findings; a corrupted cache must fall back to a cold scan silently.
#[test]
fn cache_warm_run_identical_and_corruption_falls_back() {
    let tmp = std::env::temp_dir().join(format!("storm-lint-cache-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&tmp);
    copy_tree(&fixture_root(), &tmp);
    // Snapshots in the fixture root are not .rs files; the walker only
    // picks up sources, so the copy scans exactly like the original.
    let cfg = Config::default();
    let opts = ScanOptions { cache: true };
    let (cold, cold_stats) = analyze_workspace_opts(&tmp, &cfg, opts).unwrap();
    assert_eq!(cold_stats.cache_hits, 0);
    let (warm, warm_stats) = analyze_workspace_opts(&tmp, &cfg, opts).unwrap();
    assert_eq!(warm_stats.cache_hits, warm_stats.files_scanned);
    assert_eq!(cold, warm, "warm scan diverged from cold scan");

    let cache_file = tmp
        .join("target")
        .join("storm-lint-cache")
        .join("summaries.v1.txt");
    fs::write(&cache_file, "storm-lint-cache 1\ngarbage\n").unwrap();
    let (after, after_stats) = analyze_workspace_opts(&tmp, &cfg, opts).unwrap();
    assert_eq!(after_stats.cache_hits, 0, "corrupt cache must not hit");
    assert_eq!(cold, after, "corrupt cache changed findings");
    let _ = fs::remove_dir_all(&tmp);
}

//! Findings and their three output formats (human, JSON, SARIF).
//!
//! The JSON form is hand-rolled with a fixed key order (the same policy
//! as `storm-telemetry`'s JSONL export): byte-identical output for
//! identical input is part of the reproducibility contract, and CI diffs
//! depend on it. The SARIF form follows the same determinism rules so
//! uploaded scans diff cleanly between runs.

use std::fmt::Write as _;

/// One frame of a taint chain: the function through which a source
/// property reached the reported call site. The final frame describes
/// the source itself (e.g. `` `Instant` ``) instead of a function name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Function name, or the backticked source description for the
    /// final frame.
    pub fn_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name (`no-hash-iter`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub suggestion: &'static str,
    /// For interprocedural findings: the call chain from the reported
    /// site down to the source. Empty for lexical findings.
    pub chain: Vec<Frame>,
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a chain as `a (file:1) -> b (file:2) -> `src` (file:3)`.
fn chain_text(chain: &[Frame]) -> String {
    chain
        .iter()
        .map(|fr| format!("{} ({}:{})", fr.fn_name, fr.file, fr.line))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Renders findings as a deterministic JSON document. Keys are emitted
/// in a fixed order; findings must already be sorted by the caller.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": 2,");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"finding_count\": {},", findings.len());
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let mut chain = String::from("[");
        for (j, fr) in f.chain.iter().enumerate() {
            let _ = write!(
                chain,
                "{}{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                if j == 0 { "" } else { ", " },
                json_escape(&fr.fn_name),
                json_escape(&fr.file),
                fr.line,
            );
        }
        chain.push(']');
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"suggestion\": \"{}\", \"chain\": {chain}}}{comma}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(f.suggestion),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as compiler-style human diagnostics.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "error[{}]: {}\n  --> {}:{}:{}",
            f.rule, f.message, f.file, f.line, f.col
        );
        if !f.chain.is_empty() {
            let _ = writeln!(out, "  = chain: {}", chain_text(&f.chain));
        }
        let _ = writeln!(out, "  = help: {}", f.suggestion);
    }
    if findings.is_empty() {
        let _ = writeln!(out, "storm-lint: clean ({files_scanned} files scanned)");
    } else {
        let _ = writeln!(
            out,
            "storm-lint: {} finding(s) across {} file(s) ({} files scanned)",
            findings.len(),
            findings
                .iter()
                .map(|f| f.file.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            files_scanned
        );
    }
    out
}

/// Renders findings as a SARIF 2.1.0 document (hand-rolled, fixed key
/// order, deterministic). Chain frames become `relatedLocations` so
/// code-scanning UIs show the path to the source.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\n");
    out.push_str("      \"name\": \"storm-lint\",\n");
    out.push_str("      \"informationUri\": \"https://github.com/storm/storm\",\n");
    out.push_str("      \"rules\": [\n");
    let rules = crate::rules::ALL_RULES;
    for (i, r) in rules.iter().enumerate() {
        let comma = if i + 1 == rules.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{comma}",
            r.name(),
            json_escape(r.suggestion()),
        );
    }
    out.push_str("      ]\n");
    out.push_str("    }},\n");
    out.push_str("    \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let mut related = String::new();
        if !f.chain.is_empty() {
            related.push_str(", \"relatedLocations\": [");
            for (j, fr) in f.chain.iter().enumerate() {
                let _ = write!(
                    related,
                    "{}{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                     \"region\": {{\"startLine\": {}}}}}, \"message\": {{\"text\": \"{}\"}}}}",
                    if j == 0 { "" } else { ", " },
                    json_escape(&fr.file),
                    fr.line,
                    json_escape(&fr.fn_name),
                );
            }
            related.push(']');
        }
        let message = if f.chain.is_empty() {
            f.message.clone()
        } else {
            format!("{} (chain: {})", f.message, chain_text(&f.chain))
        };
        let _ = writeln!(
            out,
            "      {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": \
             {}}}}}}}]{related}}}{comma}",
            json_escape(f.rule),
            json_escape(&message),
            json_escape(&f.file),
            f.line,
            f.col,
        );
    }
    out.push_str("    ]\n");
    out.push_str("  }]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "no-panic",
            file: "crates/net/src/tcp.rs".to_string(),
            line: 3,
            col: 7,
            message: "`.unwrap()` can abort the datapath".to_string(),
            suggestion: "return a typed error",
            chain: Vec::new(),
        }
    }

    fn chained() -> Finding {
        Finding {
            rule: "no-transitive-nondeterminism",
            file: "crates/sim/src/lib.rs".to_string(),
            line: 4,
            col: 9,
            message: "call reaches wall-clock source".to_string(),
            suggestion: "thread the simulated clock",
            chain: vec![
                Frame {
                    fn_name: "tick".to_string(),
                    file: "crates/sim/src/lib.rs".to_string(),
                    line: 4,
                },
                Frame {
                    fn_name: "helper".to_string(),
                    file: "crates/util/src/lib.rs".to_string(),
                    line: 2,
                },
                Frame {
                    fn_name: "`Instant`".to_string(),
                    file: "crates/util/src/lib.rs".to_string(),
                    line: 3,
                },
            ],
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut f = sample();
        f.message = "quote \" backslash \\ newline \n".to_string();
        let doc = render_json(&[f], 1);
        assert!(doc.contains("\\\""));
        assert!(doc.contains("\\\\"));
        assert!(doc.contains("\\n"));
        assert!(doc.starts_with("{\n  \"version\": 2,"));
        assert!(doc.contains("\"chain\": []"));
        assert!(doc.ends_with("]\n}\n"));
    }

    #[test]
    fn json_chain_has_fixed_keys() {
        let doc = render_json(&[chained()], 2);
        assert!(doc.contains(
            "\"chain\": [{\"fn\": \"tick\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 4}, "
        ));
        assert!(doc.contains(
            "{\"fn\": \"`Instant`\", \"file\": \"crates/util/src/lib.rs\", \"line\": 3}]"
        ));
    }

    #[test]
    fn human_output_mentions_location() {
        let text = render_human(&[sample()], 4);
        assert!(text.contains("error[no-panic]"));
        assert!(text.contains("crates/net/src/tcp.rs:3:7"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn human_output_shows_chain() {
        let text = render_human(&[chained()], 4);
        assert!(text.contains(
            "= chain: tick (crates/sim/src/lib.rs:4) -> helper (crates/util/src/lib.rs:2) -> \
             `Instant` (crates/util/src/lib.rs:3)"
        ));
    }

    #[test]
    fn clean_output() {
        let text = render_human(&[], 9);
        assert!(text.contains("clean (9 files scanned)"));
    }

    #[test]
    fn sarif_is_valid_shape_and_deterministic() {
        let doc = render_sarif(&[sample(), chained()]);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"name\": \"storm-lint\""));
        assert!(doc.contains("\"id\": \"no-transitive-nondeterminism\""));
        assert!(doc.contains("\"startLine\": 3, \"startColumn\": 7"));
        assert!(doc.contains("\"relatedLocations\""));
        assert_eq!(doc, render_sarif(&[sample(), chained()]));
        // Empty runs still produce a structurally complete document.
        let empty = render_sarif(&[]);
        assert!(empty.contains("\"results\": [\n    ]"));
    }
}

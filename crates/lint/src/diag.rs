//! Findings and their two output formats.
//!
//! The JSON form is hand-rolled with a fixed key order (the same policy
//! as `storm-telemetry`'s JSONL export): byte-identical output for
//! identical input is part of the reproducibility contract, and CI diffs
//! depend on it.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name (`no-hash-iter`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub suggestion: &'static str,
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a deterministic JSON document. Keys are emitted
/// in a fixed order; findings must already be sorted by the caller.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"finding_count\": {},", findings.len());
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"suggestion\": \"{}\"}}{comma}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(f.suggestion),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as compiler-style human diagnostics.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "error[{}]: {}\n  --> {}:{}:{}\n  = help: {}",
            f.rule, f.message, f.file, f.line, f.col, f.suggestion
        );
    }
    if findings.is_empty() {
        let _ = writeln!(out, "storm-lint: clean ({files_scanned} files scanned)");
    } else {
        let _ = writeln!(
            out,
            "storm-lint: {} finding(s) across {} file(s) ({} files scanned)",
            findings.len(),
            findings
                .iter()
                .map(|f| f.file.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            files_scanned
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "no-panic",
            file: "crates/net/src/tcp.rs".to_string(),
            line: 3,
            col: 7,
            message: "`.unwrap()` can abort the datapath".to_string(),
            suggestion: "return a typed error",
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut f = sample();
        f.message = "quote \" backslash \\ newline \n".to_string();
        let doc = render_json(&[f], 1);
        assert!(doc.contains("\\\""));
        assert!(doc.contains("\\\\"));
        assert!(doc.contains("\\n"));
        assert!(doc.starts_with("{\n  \"version\": 1,"));
        assert!(doc.ends_with("]\n}\n"));
    }

    #[test]
    fn human_output_mentions_location() {
        let text = render_human(&[sample()], 4);
        assert!(text.contains("error[no-panic]"));
        assert!(text.contains("crates/net/src/tcp.rs:3:7"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn clean_output() {
        let text = render_human(&[], 9);
        assert!(text.contains("clean (9 files scanned)"));
    }
}

//! `storm-lint`: static enforcement of StorM's dataplane invariants.
//!
//! The evaluation figures only reproduce because two properties survive
//! every refactor: simulation runs are **bit-for-bit deterministic**
//! (equal seeds produce byte-identical traces) and the active-relay
//! datapath stays **zero-copy** (`bytes_copied_per_pdu = 0`). Runtime
//! tests (`tests/trace_determinism.rs`, `tests/zero_copy_relay.rs`)
//! catch violations late; this crate catches them at the source level in
//! seconds, the way verification-oriented dataplane work (Dobrescu &
//! Argyraki, NSDI'14) checks invariants statically.
//!
//! Because the offline build vendors no parser crates, the scanner is a
//! small hand-rolled token lexer ([`lexer`]) rather than a `syn` AST
//! walk. On top of it, [`symbols`] extracts per-file item summaries
//! (functions, calls, imports, direct taint sources), [`callgraph`]
//! links call sites to definitions workspace-wide, and [`taint`] runs a
//! fixpoint that propagates source properties backward along calls — so
//! a simulation function that reaches `Instant::now()` three crates
//! away is flagged at the boundary call with the full chain.
//!
//! # Rules
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `no-wall-clock` | determinism crates | no `SystemTime`/`Instant`/`std::time` |
//! | `no-ambient-rand` | determinism crates | no `thread_rng`/`OsRng`/`rand::random` |
//! | `no-hash-iter` | determinism crates | no iteration over `HashMap`/`HashSet` |
//! | `no-hot-path-copy` | datapath modules | no `.to_vec()`/`copy_from_slice`/`extend_from_slice` |
//! | `no-panic` | datapath modules | no `unwrap`/`expect`/`panic!` |
//! | `forbid-unsafe` | every crate root | `#![forbid(unsafe_code)]` present |
//! | `no-transitive-nondeterminism` | determinism crates | no call chain reaching clock/rand/hash-order sources |
//! | `no-alloc-on-datapath` | curated hot functions | no reachable allocation (`vec!`, `Box::new`, `.collect()`, ...) |
//! | `no-blocking-in-shard` | `ShardSim` impls | no reachable `sleep`/`.lock()`/`.recv()` |
//! | `metric-name-registry` | whole workspace | metric-name literals must match `storm_telemetry::names` constants |
//! | `stale-allow` | whole workspace | every allow-comment must suppress something |
//!
//! Escape hatches: a per-rule path allowlist in [`Config`], and inline
//! `// storm-lint: allow(<rule>): <why>` comments covering their own
//! line and the next code line (the justification may continue over
//! further comment lines). For chain findings an allow on **any frame**
//! of the chain silences the finding. Test code (`#[cfg(test)]` /
//! `#[test]` items) is exempt from all location rules. Allows that
//! suppress nothing are themselves findings (`stale-allow`).
//!
//! # Invocation
//!
//! ```text
//! cargo run -p storm-lint -- --workspace            # human diagnostics
//! cargo run -p storm-lint -- --workspace --json     # machine-readable
//! cargo run -p storm-lint -- --workspace --sarif    # code-scanning upload
//! cargo run -p storm-lint -- --workspace --no-cache # ignore summary cache
//! ```
//!
//! Workspace scans keep a per-file summary cache under
//! `target/storm-lint-cache/` keyed by content hash (see [`cache`]);
//! `--no-cache` bypasses it.

#![forbid(unsafe_code)]

pub mod cache;
pub mod callgraph;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod walk;

pub use config::{Config, FileClass};
pub use diag::{render_human, render_json, render_sarif, Finding};
pub use rules::{Rule, ALL_RULES};

use std::fs;
use std::io;
use std::path::Path;

/// Analyzes one file's source text under `class`, appending findings.
/// Findings within the file come out in source order. Single-file mode
/// runs only the lexical rules — interprocedural rules need the whole
/// workspace ([`analyze_workspace`]).
pub fn analyze_source(class: &FileClass, source: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let mut out = Vec::new();
    rules::check_file(class, &lexed, cfg, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Knobs for [`analyze_workspace_opts`].
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Use the on-disk summary cache under `target/storm-lint-cache/`.
    pub cache: bool,
}

impl Default for ScanOptions {
    fn default() -> ScanOptions {
        ScanOptions { cache: true }
    }
}

/// What a workspace scan did, for reporting and benchmarking.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanStats {
    /// Files visited.
    pub files_scanned: usize,
    /// Files whose summary came from the cache.
    pub cache_hits: usize,
}

/// Scans the whole workspace rooted at `root`: summarize (or reuse
/// cached summaries), build the call graph, run taint propagation, and
/// evaluate every rule. Findings sorted by `(file, line, col, rule)`.
pub fn analyze_workspace_opts(
    root: &Path,
    cfg: &Config,
    opts: ScanOptions,
) -> io::Result<(Vec<Finding>, ScanStats)> {
    let files = walk::workspace_files(root)?;
    let mut store = if opts.cache {
        cache::Cache::load(root)
    } else {
        cache::Cache::default()
    };
    let mut stats = ScanStats {
        files_scanned: files.len(),
        cache_hits: 0,
    };
    let mut summaries = Vec::with_capacity(files.len());
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let hash = cache::fnv64(source.as_bytes());
        if let Some(s) = store.get(rel, hash) {
            stats.cache_hits += 1;
            summaries.push(s.clone());
        } else {
            let s = symbols::summarize(rel, &source);
            store.put(rel, hash, s.clone());
            summaries.push(s);
        }
    }
    if opts.cache {
        store.retain_files(&files);
        // Best-effort: a read-only checkout still lints fine.
        let _ = store.save(root);
    }
    let ws = callgraph::Workspace::build(summaries);
    let t = taint::propagate(&ws);
    let mut findings = taint::evaluate(&ws, &t, cfg);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok((findings, stats))
}

/// [`analyze_workspace_opts`] with defaults (cache enabled).
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<(Vec<Finding>, usize)> {
    analyze_workspace_opts(root, cfg, ScanOptions::default()).map(|(f, s)| (f, s.files_scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_class(name: &str) -> FileClass {
        FileClass::from_rel_path(&format!("crates/net/src/{name}"))
    }

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n";
        let out = analyze_source(&net_class("clean.rs"), src, &Config::default());
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn findings_sorted_in_source_order() {
        let src = "fn f() {\n    let t = SystemTime::now();\n    let r = thread_rng();\n}\n";
        let out = analyze_source(&net_class("dirty.rs"), src, &Config::default());
        assert_eq!(out.len(), 2);
        assert!(out[0].line < out[1].line);
        assert_eq!(out[0].rule, "no-wall-clock");
        assert_eq!(out[1].rule, "no-ambient-rand");
    }

    #[test]
    fn out_of_scope_crate_is_untouched() {
        let src = "fn f() { let t = SystemTime::now(); }\n";
        let class = FileClass::from_rel_path("crates/workloads/src/x.rs");
        assert!(analyze_source(&class, src, &Config::default()).is_empty());
    }
}

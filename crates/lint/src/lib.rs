//! `storm-lint`: static enforcement of StorM's dataplane invariants.
//!
//! The evaluation figures only reproduce because two properties survive
//! every refactor: simulation runs are **bit-for-bit deterministic**
//! (equal seeds produce byte-identical traces) and the active-relay
//! datapath stays **zero-copy** (`bytes_copied_per_pdu = 0`). Runtime
//! tests (`tests/trace_determinism.rs`, `tests/zero_copy_relay.rs`)
//! catch violations late; this crate catches them at the source level in
//! seconds, the way verification-oriented dataplane work (Dobrescu &
//! Argyraki, NSDI'14) checks invariants statically.
//!
//! Because the offline build vendors no parser crates, the scanner is a
//! small hand-rolled token lexer ([`lexer`]) rather than a `syn` AST
//! walk; every rule matches on identifier/punctuation sequences with
//! strings and comments stripped, which is precise enough for the whole
//! rule set and keeps the tool dependency-free.
//!
//! # Rules
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `no-wall-clock` | determinism crates | no `SystemTime`/`Instant`/`std::time` |
//! | `no-ambient-rand` | determinism crates | no `thread_rng`/`OsRng`/`rand::random` |
//! | `no-hash-iter` | determinism crates | no iteration over `HashMap`/`HashSet` |
//! | `no-hot-path-copy` | datapath modules | no `.to_vec()`/`copy_from_slice`/`extend_from_slice` |
//! | `no-panic` | datapath modules | no `unwrap`/`expect`/`panic!` |
//! | `forbid-unsafe` | every crate root | `#![forbid(unsafe_code)]` present |
//!
//! Escape hatches: a per-rule path allowlist in [`Config`], and inline
//! `// storm-lint: allow(<rule>): <why>` comments covering their own
//! line and the next code line (the justification may continue over
//! further comment lines). Test code (`#[cfg(test)]` / `#[test]` items)
//! is exempt from all location rules.
//!
//! # Invocation
//!
//! ```text
//! cargo run -p storm-lint -- --workspace          # human diagnostics
//! cargo run -p storm-lint -- --workspace --json   # machine-readable
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::{Config, FileClass};
pub use diag::{render_human, render_json, Finding};
pub use rules::{Rule, ALL_RULES};

use std::fs;
use std::io;
use std::path::Path;

/// Analyzes one file's source text under `class`, appending findings.
/// Findings within the file come out in source order.
pub fn analyze_source(class: &FileClass, source: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let mut out = Vec::new();
    rules::check_file(class, &lexed, cfg, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Scans the whole workspace rooted at `root`. Returns `(findings,
/// files_scanned)`, findings sorted by `(file, line, col, rule)`.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<(Vec<Finding>, usize)> {
    let files = walk::workspace_files(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let class = FileClass::from_rel_path(rel);
        let source = fs::read_to_string(root.join(rel))?;
        findings.extend(analyze_source(&class, &source, cfg));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok((findings, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_class(name: &str) -> FileClass {
        FileClass::from_rel_path(&format!("crates/net/src/{name}"))
    }

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n";
        let out = analyze_source(&net_class("clean.rs"), src, &Config::default());
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn findings_sorted_in_source_order() {
        let src = "fn f() {\n    let t = SystemTime::now();\n    let r = thread_rng();\n}\n";
        let out = analyze_source(&net_class("dirty.rs"), src, &Config::default());
        assert_eq!(out.len(), 2);
        assert!(out[0].line < out[1].line);
        assert_eq!(out[0].rule, "no-wall-clock");
        assert_eq!(out[1].rule, "no-ambient-rand");
    }

    #[test]
    fn out_of_scope_crate_is_untouched() {
        let src = "fn f() { let t = SystemTime::now(); }\n";
        let class = FileClass::from_rel_path("crates/workloads/src/x.rs");
        assert!(analyze_source(&class, src, &Config::default()).is_empty());
    }
}

//! Workspace file discovery.
//!
//! Scans the `src/` trees of every non-vendored workspace crate plus the
//! root crate's `src/`. Deliberately excluded:
//!
//! - `vendor/` (offline dependency stand-ins, not held to our bar),
//! - `target/`,
//! - `tests/`, `benches/`, `examples/` (test code is exempt anyway),
//! - any `fixtures/` directory (the lint's own seeded violations).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Returns the workspace-relative paths of every `.rs` file to scan,
/// sorted for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_but_not_vendor_or_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let files = workspace_files(&root).unwrap_or_default();
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.contains("/fixtures/")));
        assert!(!files.iter().any(|f| f.contains("/tests/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order is deterministic");
    }
}

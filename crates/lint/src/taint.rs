//! Backward taint propagation over the call graph, and the workspace
//! evaluation pass that turns taint into findings.
//!
//! # Lattice
//!
//! Each function carries a set of six *source properties* (bitflags in
//! [`crate::symbols`]): `reads-wall-clock`, `ambient-randomness`,
//! `hash-order-iteration`, `may-panic`, `allocates`, `blocks-thread`.
//! Direct sources are attributed during summarization; the fixpoint
//! here unions callee sets into callers (`props[f] |= props[callee]`)
//! until stable, so the set is reachability: "calling `f` may execute
//! one of these". The lattice is a powerset, propagation is monotone,
//! and iteration order is fixed, so the result is deterministic.
//!
//! # Evidence and chains
//!
//! The first acquisition of each property records evidence — either
//! `Direct` (a source site in the body) or `Via` (the call site it
//! arrived through). Following `Via` links reconstructs the call chain
//! shown in diagnostics; links always point at a function that held
//! the bit earlier, so the walk terminates at a `Direct` source.
//!
//! # Emission policy
//!
//! Transitive rules fire only where taint **crosses a scope boundary**
//! (a determinism-scoped caller invoking an unscoped tainted callee,
//! a curated hot-path root reaching an allocation, a `ShardSim` method
//! reaching a blocking call). Cascading reports up the call graph are
//! avoided by skipping callees that are themselves inside the scope —
//! the boundary closest to the source gets the single report, and an
//! inline allow anywhere on the chain silences it.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{FnId, Workspace};
use crate::config::{Config, FileClass};
use crate::diag::{Finding, Frame};
use crate::rules::{self, Rule};
use crate::symbols::{
    prop_name, ALL_PROPS, P_ALLOCATES, P_AMBIENT_RAND, P_BLOCKS_THREAD, P_HASH_ITER, P_WALL_CLOCK,
};

/// How a function acquired a property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// A source site in the function's own body.
    Direct {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
        /// Backticked description (`` `Instant` ``).
        what: String,
    },
    /// Acquired through a call site.
    Via {
        /// Call-site line.
        line: u32,
        /// Call-site column.
        col: u32,
        /// The callee it arrived from.
        callee: FnId,
    },
}

/// The fixpoint result: per-function property sets plus per-property
/// acquisition evidence.
#[derive(Debug, Default)]
pub struct Taint {
    /// Property bits per [`FnId`].
    pub props: Vec<u8>,
    /// Evidence per function per property bit index.
    pub evidence: Vec<[Option<Evidence>; 6]>,
}

fn bit_idx(p: u8) -> usize {
    p.trailing_zeros() as usize
}

/// Runs the fixpoint over the workspace call graph.
pub fn propagate(ws: &Workspace) -> Taint {
    let n = ws.fns.len();
    let mut t = Taint {
        props: vec![0; n],
        evidence: vec![[None, None, None, None, None, None]; n],
    };
    // Seed direct sources (test fns contribute nothing).
    for id in 0..n {
        let f = ws.fn_def(id);
        if f.in_test {
            continue;
        }
        for p in &f.props {
            if t.props[id] & p.prop == 0 {
                t.props[id] |= p.prop;
                t.evidence[id][bit_idx(p.prop)] = Some(Evidence::Direct {
                    line: p.line,
                    col: p.col,
                    what: p.what.clone(),
                });
            }
        }
    }
    // Propagate callee sets into callers until stable. Deterministic:
    // fixed iteration order, first acquisition wins.
    loop {
        let mut changed = false;
        for id in 0..n {
            let f = ws.fn_def(id);
            for (ci, targets) in &ws.edges[id] {
                let call = &f.calls[*ci];
                for &target in targets {
                    let add = t.props[target] & !t.props[id];
                    if add != 0 {
                        t.props[id] |= add;
                        for p in ALL_PROPS {
                            if add & p != 0 {
                                t.evidence[id][bit_idx(p)] = Some(Evidence::Via {
                                    line: call.line,
                                    col: call.col,
                                    callee: target,
                                });
                            }
                        }
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    t
}

/// Reconstructs the chain for property `prop` starting from a call
/// site in `caller` into `callee`: `[caller@call, ...frames..., source]`.
/// The final frame's `fn_name` is the source description.
pub fn chain_from_call(
    ws: &Workspace,
    t: &Taint,
    caller: FnId,
    call_line: u32,
    callee: FnId,
    prop: u8,
) -> Vec<Frame> {
    let mut frames = vec![Frame {
        fn_name: ws.fn_def(caller).name.clone(),
        file: ws.files[ws.file_of(caller)].rel_path.clone(),
        line: call_line,
    }];
    let mut cur = callee;
    let mut seen = BTreeSet::new();
    loop {
        if !seen.insert(cur) {
            break; // cycle guard (should not happen; see module docs)
        }
        let f = ws.fn_def(cur);
        let file = ws.files[ws.file_of(cur)].rel_path.clone();
        match &t.evidence[cur][bit_idx(prop)] {
            Some(Evidence::Via { line, callee, .. }) => {
                frames.push(Frame {
                    fn_name: f.name.clone(),
                    file,
                    line: *line,
                });
                cur = *callee;
            }
            Some(Evidence::Direct { line, what, .. }) => {
                frames.push(Frame {
                    fn_name: f.name.clone(),
                    file: file.clone(),
                    line: f.line,
                });
                frames.push(Frame {
                    fn_name: what.clone(),
                    file,
                    line: *line,
                });
                break;
            }
            None => break,
        }
    }
    frames
}

/// The last `what` of a chain (the source description).
fn chain_source(frames: &[Frame]) -> (String, String) {
    let last = frames.last();
    (
        last.map(|f| f.fn_name.clone()).unwrap_or_default(),
        last.map(|f| f.file.clone()).unwrap_or_default(),
    )
}

/// Tracks which inline allows suppressed something.
struct AllowLedger<'a> {
    ws: &'a Workspace,
    file_by_path: BTreeMap<&'a str, usize>,
    used: BTreeSet<(usize, u32, String)>,
}

impl<'a> AllowLedger<'a> {
    fn new(ws: &'a Workspace) -> AllowLedger<'a> {
        let file_by_path = ws
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.rel_path.as_str(), i))
            .collect();
        AllowLedger {
            ws,
            file_by_path,
            used: BTreeSet::new(),
        }
    }

    /// If an allow for `rule` covers `line` in file `fi`, marks it used
    /// and returns true.
    fn suppresses(&mut self, fi: usize, rule: Rule, line: u32) -> bool {
        let name = rule.name();
        let mut hit = None;
        for a in &self.ws.files[fi].allows {
            if a.line <= line && line <= a.end_line && a.rules.iter().any(|r| r == name) {
                hit = Some(a.line);
                break;
            }
        }
        match hit {
            Some(al) => {
                self.used.insert((fi, al, name.to_string()));
                true
            }
            None => false,
        }
    }

    /// Chain-aware suppression: any frame covered by an allow for
    /// `rule` (in that frame's file) silences the whole finding.
    fn chain_suppresses(&mut self, rule: Rule, frames: &[Frame]) -> bool {
        let mut out = false;
        for fr in frames {
            if let Some(&fi) = self.file_by_path.get(fr.file.as_str()) {
                if self.suppresses(fi, rule, fr.line) {
                    out = true;
                }
            }
        }
        out
    }
}

/// Determinism source properties.
const DET_PROPS: [u8; 3] = [P_WALL_CLOCK, P_AMBIENT_RAND, P_HASH_ITER];

/// Evaluates every workspace rule: re-applies scope/suppression to the
/// cached lexical hits, runs the metric-name check against harvested
/// registry constants, emits the three interprocedural rules from the
/// taint result, and finally reports stale allows. Returns unsorted
/// findings (the caller sorts).
pub fn evaluate(ws: &Workspace, t: &Taint, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut ledger = AllowLedger::new(ws);
    let classes: Vec<FileClass> = ws
        .files
        .iter()
        .map(|f| FileClass::from_rel_path(&f.rel_path))
        .collect();

    // 1. Lexical rules from cached raw hits.
    for (fi, file) in ws.files.iter().enumerate() {
        let class = &classes[fi];
        for hit in &file.lexical {
            let scoped = match hit.rule {
                Rule::NoWallClock | Rule::NoAmbientRand | Rule::NoHashIter => {
                    cfg.is_determinism_scoped(class)
                }
                Rule::NoHotPathCopy | Rule::NoPanic => cfg.is_datapath(class),
                _ => false,
            };
            if !scoped {
                continue;
            }
            if ledger.suppresses(fi, hit.rule, hit.line) {
                continue;
            }
            if cfg.is_path_allowed(hit.rule, class) {
                continue;
            }
            out.push(Finding {
                rule: hit.rule.name(),
                file: file.rel_path.clone(),
                line: hit.line,
                col: hit.col,
                message: hit.message.clone(),
                suggestion: hit.rule.suggestion(),
                chain: Vec::new(),
            });
        }
        if class.is_crate_root && !file.has_forbid_unsafe {
            let rule = Rule::ForbidUnsafe;
            if !ledger.suppresses(fi, rule, 1) && !cfg.is_path_allowed(rule, class) {
                out.push(Finding {
                    rule: rule.name(),
                    file: file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                    suggestion: rule.suggestion(),
                    chain: Vec::new(),
                });
            }
        }
    }

    // 2. Metric-name registry: literals must match a harvested
    // constant (or an explicitly configured extra name).
    let mut names: BTreeSet<String> = cfg.metric_names.iter().cloned().collect();
    for file in &ws.files {
        if cfg.is_metric_name_file(&file.rel_path) {
            names.extend(file.consts.iter().map(|(_, v)| v.clone()));
        }
    }
    if !names.is_empty() {
        for (fi, file) in ws.files.iter().enumerate() {
            let class = &classes[fi];
            for ml in &file.metric_lits {
                if names.contains(&ml.value) {
                    continue;
                }
                let rule = Rule::MetricNameRegistry;
                if ledger.suppresses(fi, rule, ml.line) || cfg.is_path_allowed(rule, class) {
                    continue;
                }
                out.push(Finding {
                    rule: rule.name(),
                    file: file.rel_path.clone(),
                    line: ml.line,
                    col: ml.col,
                    message: rules::metric_message(&ml.method, &ml.value),
                    suggestion: rule.suggestion(),
                    chain: Vec::new(),
                });
            }
        }
    }

    // 3a. no-transitive-nondeterminism: determinism-scoped caller,
    // unscoped tainted callee, source also outside the scoped set
    // (sources inside it are already flagged lexically in place).
    for id in 0..ws.fns.len() {
        let fi = ws.file_of(id);
        let class = &classes[fi];
        let f = ws.fn_def(id);
        if f.in_test || !cfg.is_determinism_scoped(class) {
            continue;
        }
        for (ci, targets) in &ws.edges[id] {
            let call = &f.calls[*ci];
            for prop in DET_PROPS {
                let target = targets.iter().copied().find(|&tg| {
                    t.props[tg] & prop != 0 && !cfg.is_determinism_scoped(&classes[ws.file_of(tg)])
                });
                let Some(tg) = target else { continue };
                let frames = chain_from_call(ws, t, id, call.line, tg, prop);
                let (what, src_file) = chain_source(&frames);
                if cfg.is_determinism_scoped(&FileClass::from_rel_path(&src_file)) {
                    continue;
                }
                let rule = Rule::NoTransitiveNondeterminism;
                if ledger.chain_suppresses(rule, &frames) || cfg.is_path_allowed(rule, class) {
                    continue;
                }
                out.push(Finding {
                    rule: rule.name(),
                    file: ws.files[fi].rel_path.clone(),
                    line: call.line,
                    col: call.col,
                    message: format!(
                        "call into `{}` reaches {} source {} outside the determinism scope",
                        ws.fn_def(tg).name,
                        prop_name(prop),
                        what
                    ),
                    suggestion: rule.suggestion(),
                    chain: frames,
                });
            }
        }
    }

    // 3b. no-alloc-on-datapath: curated hot roots. Direct allocation
    // sites are reported unless the lexical copy rule already covers
    // them; calls are reported when the callee (not itself a root)
    // reaches an allocation.
    let copy_whats = ["`.to_vec()`", "`.to_owned()`", "`.extend_from_slice()`"];
    for id in 0..ws.fns.len() {
        let fi = ws.file_of(id);
        let f = ws.fn_def(id);
        if f.in_test || !cfg.is_alloc_root(&ws.files[fi].rel_path, &f.name) {
            continue;
        }
        let rule = Rule::NoAllocOnDatapath;
        let class = &classes[fi];
        for p in &f.props {
            if p.prop != P_ALLOCATES || copy_whats.contains(&p.what.as_str()) {
                continue;
            }
            let frames = vec![
                Frame {
                    fn_name: f.name.clone(),
                    file: ws.files[fi].rel_path.clone(),
                    line: f.line,
                },
                Frame {
                    fn_name: p.what.clone(),
                    file: ws.files[fi].rel_path.clone(),
                    line: p.line,
                },
            ];
            if ledger.chain_suppresses(rule, &frames) || cfg.is_path_allowed(rule, class) {
                continue;
            }
            out.push(Finding {
                rule: rule.name(),
                file: ws.files[fi].rel_path.clone(),
                line: p.line,
                col: p.col,
                message: format!("allocation {} in hot function `{}`", p.what, f.name),
                suggestion: rule.suggestion(),
                chain: frames,
            });
        }
        for (ci, targets) in &ws.edges[id] {
            let call = &f.calls[*ci];
            let target = targets.iter().copied().find(|&tg| {
                t.props[tg] & P_ALLOCATES != 0 && {
                    let tf = ws.fn_def(tg);
                    !cfg.is_alloc_root(&ws.files[ws.file_of(tg)].rel_path, &tf.name)
                }
            });
            let Some(tg) = target else { continue };
            let frames = chain_from_call(ws, t, id, call.line, tg, P_ALLOCATES);
            let (what, _) = chain_source(&frames);
            if ledger.chain_suppresses(rule, &frames) || cfg.is_path_allowed(rule, class) {
                continue;
            }
            out.push(Finding {
                rule: rule.name(),
                file: ws.files[fi].rel_path.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "hot function `{}` reaches allocation {} via `{}`",
                    f.name,
                    what,
                    ws.fn_def(tg).name
                ),
                suggestion: rule.suggestion(),
                chain: frames,
            });
        }
    }

    // 3c. no-blocking-in-shard: every method of a ShardSim impl.
    for id in 0..ws.fns.len() {
        let fi = ws.file_of(id);
        let f = ws.fn_def(id);
        if f.in_test || !cfg.is_shard_trait(&f.trait_name) {
            continue;
        }
        let rule = Rule::NoBlockingInShard;
        let class = &classes[fi];
        for p in &f.props {
            if p.prop != P_BLOCKS_THREAD {
                continue;
            }
            let frames = vec![
                Frame {
                    fn_name: f.name.clone(),
                    file: ws.files[fi].rel_path.clone(),
                    line: f.line,
                },
                Frame {
                    fn_name: p.what.clone(),
                    file: ws.files[fi].rel_path.clone(),
                    line: p.line,
                },
            ];
            if ledger.chain_suppresses(rule, &frames) || cfg.is_path_allowed(rule, class) {
                continue;
            }
            out.push(Finding {
                rule: rule.name(),
                file: ws.files[fi].rel_path.clone(),
                line: p.line,
                col: p.col,
                message: format!(
                    "blocking call {} in `{}::{}` ({} impl)",
                    p.what, f.impl_type, f.name, f.trait_name
                ),
                suggestion: rule.suggestion(),
                chain: frames,
            });
        }
        for (ci, targets) in &ws.edges[id] {
            let call = &f.calls[*ci];
            let target = targets.iter().copied().find(|&tg| {
                t.props[tg] & P_BLOCKS_THREAD != 0 && !cfg.is_shard_trait(&ws.fn_def(tg).trait_name)
            });
            let Some(tg) = target else { continue };
            let frames = chain_from_call(ws, t, id, call.line, tg, P_BLOCKS_THREAD);
            let (what, _) = chain_source(&frames);
            if ledger.chain_suppresses(rule, &frames) || cfg.is_path_allowed(rule, class) {
                continue;
            }
            out.push(Finding {
                rule: rule.name(),
                file: ws.files[fi].rel_path.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "{} method `{}::{}` reaches blocking {} via `{}`",
                    f.trait_name,
                    f.impl_type,
                    f.name,
                    what,
                    ws.fn_def(tg).name
                ),
                suggestion: rule.suggestion(),
                chain: frames,
            });
        }
    }

    // 4. Stale allows: declared (non-test) allows that suppressed
    // nothing above, plus unknown rule names.
    for (fi, file) in ws.files.iter().enumerate() {
        for a in &file.allows {
            if a.in_test {
                continue;
            }
            for rn in &a.rules {
                let rule = Rule::StaleAllow;
                let (known, used) = match Rule::from_name(rn) {
                    Some(_) => (true, ledger.used.contains(&(fi, a.line, rn.clone()))),
                    None => (false, false),
                };
                if known && used {
                    continue;
                }
                let message = if known {
                    format!("stale allow: `{rn}` does not suppress any finding here")
                } else {
                    format!("unknown rule `{rn}` in allow comment")
                };
                out.push(Finding {
                    rule: rule.name(),
                    file: file.rel_path.clone(),
                    line: a.line,
                    col: 1,
                    message,
                    suggestion: rule.suggestion(),
                    chain: Vec::new(),
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::summarize;

    fn build(files: &[(&str, &str)]) -> (Workspace, Taint) {
        let ws = Workspace::build(files.iter().map(|(p, s)| summarize(p, s)).collect());
        let t = propagate(&ws);
        (ws, t)
    }

    fn props_of(ws: &Workspace, t: &Taint, name: &str) -> u8 {
        let id = (0..ws.fns.len())
            .find(|&id| ws.fn_def(id).name == name)
            .unwrap();
        t.props[id]
    }

    #[test]
    fn taint_propagates_two_hops() {
        let (ws, t) = build(&[
            (
                "crates/sim/src/lib.rs",
                "pub fn tick() { storm_workloads::util::mid(); }\n",
            ),
            (
                "crates/workloads/src/util.rs",
                "pub fn mid() { leaf(); }\npub fn leaf() { let t = Instant::now(); }\n",
            ),
        ]);
        assert_eq!(props_of(&ws, &t, "leaf") & P_WALL_CLOCK, P_WALL_CLOCK);
        assert_eq!(props_of(&ws, &t, "mid") & P_WALL_CLOCK, P_WALL_CLOCK);
        assert_eq!(props_of(&ws, &t, "tick") & P_WALL_CLOCK, P_WALL_CLOCK);
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (ws, t) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\npub fn b() { a(); c(); }\npub fn c() { let v = vec![1]; }\n",
        )]);
        assert_ne!(props_of(&ws, &t, "a") & P_ALLOCATES, 0);
        assert_ne!(props_of(&ws, &t, "b") & P_ALLOCATES, 0);
    }

    #[test]
    fn transitive_finding_carries_full_chain() {
        let (ws, t) = build(&[
            (
                "crates/sim/src/lib.rs",
                "pub fn tick() {\n    storm_workloads::util::mid();\n}\n",
            ),
            (
                "crates/workloads/src/util.rs",
                "pub fn mid() {\n    leaf();\n}\npub fn leaf() {\n    let t = Instant::now();\n}\n",
            ),
        ]);
        let findings = evaluate(&ws, &t, &Config::default());
        let f = findings
            .iter()
            .find(|f| f.rule == "no-transitive-nondeterminism")
            .expect("boundary call flagged");
        assert_eq!(f.file, "crates/sim/src/lib.rs");
        assert_eq!(f.line, 2);
        let names: Vec<&str> = f.chain.iter().map(|fr| fr.fn_name.as_str()).collect();
        assert_eq!(names, ["tick", "mid", "leaf", "`Instant`"]);
        assert_eq!(f.chain.last().unwrap().file, "crates/workloads/src/util.rs");
        // No cascade: the unscoped intermediate fns produce nothing.
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "no-transitive-nondeterminism")
                .count(),
            1
        );
    }

    #[test]
    fn allow_on_intermediate_frame_silences_and_is_used() {
        let (ws, t) = build(&[
            (
                "crates/sim/src/lib.rs",
                "pub fn tick() {\n    storm_workloads::util::mid();\n}\n",
            ),
            (
                "crates/workloads/src/util.rs",
                "pub fn mid() {\n    // storm-lint: allow(no-transitive-nondeterminism): cold init path\n    leaf();\n}\npub fn leaf() {\n    let t = Instant::now();\n}\n",
            ),
        ]);
        let findings = evaluate(&ws, &t, &Config::default());
        assert!(
            !findings
                .iter()
                .any(|f| f.rule == "no-transitive-nondeterminism"),
            "{findings:?}"
        );
        assert!(
            !findings.iter().any(|f| f.rule == "stale-allow"),
            "chain allow counts as used: {findings:?}"
        );
    }

    #[test]
    fn stale_and_unknown_allows_are_reported() {
        let (ws, t) = build(&[(
            "crates/sim/src/lib.rs",
            "// storm-lint: allow(no-wall-clock): nothing here\n// storm-lint: allow(no-such-rule): typo\npub fn quiet() {}\n",
        )]);
        let findings = evaluate(&ws, &t, &Config::default());
        let stale: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "stale-allow")
            .collect();
        assert_eq!(stale.len(), 2, "{findings:?}");
        assert!(stale.iter().any(|f| f.message.contains("no-wall-clock")));
        assert!(stale.iter().any(|f| f.message.contains("unknown rule")));
    }

    #[test]
    fn used_allow_is_not_stale() {
        let (ws, t) = build(&[(
            "crates/sim/src/engine.rs",
            "pub fn f() {\n    // storm-lint: allow(no-wall-clock): deliberate\n    let t = Instant::now();\n}\n",
        )]);
        let findings = evaluate(&ws, &t, &Config::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn shard_impl_blocking_via_helper() {
        let (ws, t) = build(&[(
            "crates/bench/src/fleet.rs",
            "struct FleetShard;\nimpl ShardSim for FleetShard {\n    fn deliver(&mut self) {\n        drain_inbox();\n    }\n}\nfn drain_inbox() {\n    let _ = rx.recv();\n}\n",
        )]);
        let findings = evaluate(&ws, &t, &Config::default());
        let f = findings
            .iter()
            .find(|f| f.rule == "no-blocking-in-shard")
            .expect("blocking reachable from ShardSim impl");
        assert!(f.message.contains("`.recv()`"));
        assert_eq!(f.chain.first().unwrap().fn_name, "deliver");
    }

    #[test]
    fn alloc_root_direct_and_via() {
        let (ws, t) = build(&[(
            "crates/net/src/tcp.rs",
            "fn pump() {\n    let b = vec![0u8; 64];\n    slow_path();\n}\nfn slow_path() {\n    let s = format!(\"x\");\n}\n",
        )]);
        let findings = evaluate(&ws, &t, &Config::default());
        let alloc: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "no-alloc-on-datapath")
            .collect();
        assert_eq!(alloc.len(), 2, "{findings:?}");
        assert!(alloc.iter().any(|f| f.message.contains("`vec!`")));
        assert!(alloc.iter().any(|f| f.message.contains("via `slow_path`")));
    }
}

//! Per-file item extraction: `fn` definitions (with their call sites
//! and direct taint sources), `impl` blocks, `use` imports, string
//! constants and allow-comments, summarized into a [`FileSummary`].
//!
//! The summary is the unit of caching: it is config-independent (raw
//! lexical hits carry no scope or suppression decisions) and derived
//! purely from the file's bytes, so it can be keyed by content hash.
//! The interprocedural engine ([`crate::callgraph`], [`crate::taint`])
//! consumes summaries only — it never re-reads source text.
//!
//! The item parser is a token walk, not a grammar: it recognizes `mod`
//! / `impl` / `trait` / `fn` / `use` / `const` heads and brace-matches
//! bodies. Known imprecision (documented in DESIGN.md §3.16): items
//! nested inside function bodies are attributed to the enclosing
//! function, turbofish paths resolve by their trailing segments, and
//! macro bodies are scanned as plain tokens.

use crate::lexer::{self, Lexed, TokKind};
use crate::rules::{self, Rule};

/// Taint property bits.
pub const P_WALL_CLOCK: u8 = 1 << 0;
/// Ambient randomness.
pub const P_AMBIENT_RAND: u8 = 1 << 1;
/// Hasher-order iteration.
pub const P_HASH_ITER: u8 = 1 << 2;
/// `unwrap`/`expect`/`panic!`.
pub const P_MAY_PANIC: u8 = 1 << 3;
/// Heap allocation / buffer growth.
pub const P_ALLOCATES: u8 = 1 << 4;
/// Blocking sleep/lock/recv.
pub const P_BLOCKS_THREAD: u8 = 1 << 5;

/// All property bits in reporting order.
pub const ALL_PROPS: [u8; 6] = [
    P_WALL_CLOCK,
    P_AMBIENT_RAND,
    P_HASH_ITER,
    P_MAY_PANIC,
    P_ALLOCATES,
    P_BLOCKS_THREAD,
];

/// The stable name of a property bit.
pub fn prop_name(p: u8) -> &'static str {
    match p {
        P_WALL_CLOCK => "reads-wall-clock",
        P_AMBIENT_RAND => "ambient-randomness",
        P_HASH_ITER => "hash-order-iteration",
        P_MAY_PANIC => "may-panic",
        P_ALLOCATES => "allocates",
        P_BLOCKS_THREAD => "blocks-thread",
        _ => "unknown-property",
    }
}

/// How a call site is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(..)` — bare name.
    Plain,
    /// `a::b::helper(..)` — path-qualified.
    Path,
    /// `x.method(..)` — method syntax.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Syntax form.
    pub kind: CallKind,
    /// Path segments; a single element for `Plain`/`Method`.
    pub path: Vec<String>,
    /// For `Method`: receiver is literally `self`.
    pub recv_self: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A direct taint source inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectProp {
    /// Property bit.
    pub prop: u8,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short backticked description, e.g. `` `Instant` ``.
    pub what: String,
}

/// One `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Inline `mod` nesting inside the file (file-level modules from
    /// the path are added by the call-graph layer).
    pub modules: Vec<String>,
    /// Self type for methods in `impl` blocks; empty for free fns and
    /// trait default methods.
    pub impl_type: String,
    /// Trait name for `impl Trait for Type` methods and trait default
    /// methods; empty otherwise.
    pub trait_name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the closing brace.
    pub end_line: u32,
    /// Inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Direct taint sources in the body.
    pub props: Vec<DirectProp>,
}

/// One `use` import: `alias` names the last path segment (or the `as`
/// rename); `path` is the full imported path. A glob import stores the
/// alias `"*"` with the prefix as `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Local name the import binds.
    pub alias: String,
    /// Imported path segments.
    pub path: Vec<String>,
}

/// A string literal passed to a metrics-registry method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricLit {
    /// Method name (`inc`, `observe`, `tenant_scoped`, ...).
    pub method: String,
    /// The literal's value.
    pub value: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One inline allow-comment with its precomputed cover range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDecl {
    /// Rule names listed in the comment (not yet validated).
    pub rules: Vec<String>,
    /// Line of the comment.
    pub line: u32,
    /// Last covered line: the next code line, looking through
    /// comment-only lines (equals `line` for a trailing comment).
    pub end_line: u32,
    /// Inside a test item (exempt from stale-allow reporting).
    pub in_test: bool,
}

/// One raw lexical hit tagged with its rule (scope/suppression are
/// applied later by the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexHit {
    /// The rule the hit belongs to.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Finding message.
    pub message: String,
}

/// Everything the interprocedural engine needs to know about one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSummary {
    /// Workspace-relative path (`/` separators).
    pub rel_path: String,
    /// Function items.
    pub fns: Vec<FnDef>,
    /// `use` imports.
    pub uses: Vec<UseImport>,
    /// `const NAME: &str = "value"` items, as `(name, value)`.
    pub consts: Vec<(String, String)>,
    /// Metric-name literals outside test code.
    pub metric_lits: Vec<MetricLit>,
    /// Allow-comments with cover ranges.
    pub allows: Vec<AllowDecl>,
    /// Raw lexical hits outside test code.
    pub lexical: Vec<LexHit>,
    /// File carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

/// Keywords that look like `name(` but are never calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "match", "return", "for", "loop", "let", "else", "move", "break", "continue",
    "in", "as", "await",
];

/// Summarizes one file's source text.
pub fn summarize(rel_path: &str, src: &str) -> FileSummary {
    let lx = lexer::lex(src);
    let mut out = FileSummary {
        rel_path: rel_path.to_string(),
        has_forbid_unsafe: rules::has_forbid_unsafe(&lx),
        ..FileSummary::default()
    };

    // Allow-comments with their cover range (the upward walk in
    // `Lexed::allowed`, precomputed downward).
    let last_line = lx.toks.last().map(|t| t.line).unwrap_or(0);
    for (&line, rules_at) in &lx.allows {
        let mut end = line;
        let mut l = line + 1;
        while lx.comment_lines.contains(&l) {
            l += 1;
        }
        if l <= last_line + 1 {
            end = l;
        }
        out.allows.push(AllowDecl {
            rules: rules_at.clone(),
            line,
            end_line: end,
            in_test: lx.in_test(line),
        });
    }

    // Items: fns (with bodies scanned for calls), uses, consts.
    let mut mods = Vec::new();
    parse_items(&lx, 0, lx.toks.len(), &mut mods, "", "", &mut out);

    // Raw lexical hits, rule-tagged, outside test code.
    let mut push_hits = |rule: Rule, hits: Vec<rules::Hit>| {
        for h in hits {
            if !lx.in_test(h.line) {
                out.lexical.push(LexHit {
                    rule,
                    line: h.line,
                    col: h.col,
                    message: h.message,
                });
            }
        }
    };
    push_hits(Rule::NoWallClock, rules::wall_clock_hits(&lx));
    push_hits(Rule::NoAmbientRand, rules::ambient_rand_hits(&lx));
    push_hits(Rule::NoHashIter, rules::hash_iter_hits(&lx));
    push_hits(Rule::NoHotPathCopy, rules::hot_path_copy_hits(&lx));
    push_hits(Rule::NoPanic, rules::panic_hits(&lx));

    // Direct taint sources, attributed to the enclosing fn by line.
    let attach = |prop: u8, hits: Vec<rules::Hit>, fns: &mut Vec<FnDef>| {
        for h in hits {
            if let Some(f) = fns
                .iter_mut()
                .find(|f| f.line <= h.line && h.line <= f.end_line)
            {
                f.props.push(DirectProp {
                    prop,
                    line: h.line,
                    col: h.col,
                    what: h.what,
                });
            }
        }
    };
    attach(P_WALL_CLOCK, rules::wall_clock_hits(&lx), &mut out.fns);
    attach(P_AMBIENT_RAND, rules::ambient_rand_hits(&lx), &mut out.fns);
    attach(P_HASH_ITER, rules::hash_iter_hits(&lx), &mut out.fns);
    attach(P_MAY_PANIC, rules::panic_hits(&lx), &mut out.fns);
    attach(P_ALLOCATES, rules::alloc_hits(&lx), &mut out.fns);
    attach(P_BLOCKS_THREAD, rules::blocking_hits(&lx), &mut out.fns);

    // Metric literals outside test code.
    for (method, value, line, col) in rules::metric_call_literals(&lx) {
        if !lx.in_test(line) {
            out.metric_lits.push(MetricLit {
                method,
                value,
                line,
                col,
            });
        }
    }
    out
}

/// Finds the matching `}` for the `{` at `open` (token index). Returns
/// the index of the closing token, or the last token on imbalance.
fn brace_match(lx: &Lexed, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < lx.toks.len() {
        if lx.toks[i].is_punct('{') {
            depth += 1;
        } else if lx.toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    lx.toks.len().saturating_sub(1)
}

/// Skips a `<...>` generics group starting at `i` (which must be `<`).
/// `->` arrows inside (e.g. `impl<F: Fn() -> u32>`) do not close it.
fn skip_generics(lx: &Lexed, i: usize) -> usize {
    let toks = &lx.toks;
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Walks items in token range `[lo, hi)`.
fn parse_items(
    lx: &Lexed,
    lo: usize,
    hi: usize,
    mods: &mut Vec<String>,
    impl_type: &str,
    trait_name: &str,
    out: &mut FileSummary,
) {
    let toks = &lx.toks;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" => {
                let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                if toks.get(i + 2).is_some_and(|t| t.is_punct('{')) {
                    let close = brace_match(lx, i + 2);
                    mods.push(name.text.clone());
                    parse_items(lx, i + 3, close, mods, "", "", out);
                    mods.pop();
                    i = close + 1;
                } else {
                    i += 2; // `mod name;` — an out-of-line module file
                }
            }
            "impl" => {
                let (ty, tr, body) = parse_impl_head(lx, i, hi);
                match body {
                    Some(open) => {
                        let close = brace_match(lx, open);
                        parse_items(lx, open + 1, close, mods, &ty, &tr, out);
                        i = close + 1;
                    }
                    None => i += 1,
                }
            }
            "trait" => {
                let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                while j < hi && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < hi && toks[j].is_punct('{') {
                    let close = brace_match(lx, j);
                    // Default methods belong to the trait, not a type.
                    parse_items(lx, j + 1, close, mods, "", &name.text, out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                // Signature runs to the body `{` or a `;` (trait method
                // declaration). `;` inside `[u8; 4]` return types is
                // shielded by bracket depth.
                let mut j = i + 2;
                let mut brackets = 0i32;
                let mut body = None;
                while j < toks.len() {
                    if toks[j].is_punct('[') {
                        brackets += 1;
                    } else if toks[j].is_punct(']') {
                        brackets -= 1;
                    } else if toks[j].is_punct('{') {
                        body = Some(j);
                        break;
                    } else if toks[j].is_punct(';') && brackets == 0 {
                        break;
                    }
                    j += 1;
                }
                match body {
                    Some(open) => {
                        let close = brace_match(lx, open);
                        let mut f = FnDef {
                            name: name.text.clone(),
                            modules: mods.clone(),
                            impl_type: impl_type.to_string(),
                            trait_name: trait_name.to_string(),
                            line: t.line,
                            end_line: toks[close].line,
                            in_test: lx.in_test(t.line),
                            calls: Vec::new(),
                            props: Vec::new(),
                        };
                        scan_body(lx, open + 1, close, &mut f);
                        out.fns.push(f);
                        i = close + 1;
                    }
                    None => i = j + 1, // declaration without body
                }
            }
            "use" => {
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is_punct(';') {
                    j += 1;
                }
                parse_use_tree(lx, i + 1, j, &[], &mut out.uses);
                i = j + 1;
            }
            "const" => {
                // `const NAME : & str = "value"` — the string-constant
                // form that defines metric names.
                if let Some((name, value)) = parse_str_const(lx, i) {
                    out.consts.push((name, value));
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Parses an `impl` head starting at token `i` (the `impl` keyword).
/// Returns `(self_type, trait_name, body_open_index)`.
fn parse_impl_head(lx: &Lexed, i: usize, hi: usize) -> (String, String, Option<usize>) {
    let toks = &lx.toks;
    let mut j = i + 1;
    if j < hi && toks[j].is_punct('<') {
        j = skip_generics(lx, j);
    }
    // Scan to the body, tracking the last angle-depth-0 identifier seen
    // before and after an angle-depth-0 `for`.
    let mut depth = 0i32;
    let mut before = String::new();
    let mut after = String::new();
    let mut saw_for = false;
    let mut saw_where = false;
    let mut body = None;
    while j < hi {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')) {
            depth -= 1;
        } else if t.is_punct('{') && depth <= 0 {
            body = Some(j);
            break;
        } else if depth == 0 && t.kind == TokKind::Ident && !saw_where {
            if t.text == "for" && !toks.get(j + 1).is_some_and(|n| n.is_punct('<')) {
                saw_for = true;
            } else if t.text == "where" {
                // Only the body `{` matters past a where clause.
                saw_where = true;
            } else if t.text != "dyn" && t.text != "mut" {
                if saw_for {
                    after = t.text.clone();
                } else {
                    before = t.text.clone();
                }
            }
        }
        j += 1;
    }
    if saw_for {
        (after, before, body)
    } else {
        (before, String::new(), body)
    }
}

/// Parses a `use` tree between `[lo, hi)` (exclusive of `use` and `;`),
/// appending imports. Handles `a::b::c`, `as` renames, `{...}` groups
/// (nested) and `*` globs.
fn parse_use_tree(lx: &Lexed, lo: usize, hi: usize, prefix: &[String], out: &mut Vec<UseImport>) {
    let toks = &lx.toks;
    let depth_at = |i: usize| -> i32 {
        let mut d = 0;
        for t in &toks[lo..i] {
            if t.is_punct('{') {
                d += 1;
            } else if t.is_punct('}') {
                d -= 1;
            }
        }
        d
    };
    // Split the range into top-level comma groups.
    let mut groups = Vec::new();
    let mut start = lo;
    for (i, t) in toks.iter().enumerate().take(hi).skip(lo) {
        if t.is_punct(',') && depth_at(i) == 0 {
            groups.push((start, i));
            start = i + 1;
        }
    }
    groups.push((start, hi));
    for (glo, ghi) in groups {
        if glo >= ghi {
            continue;
        }
        let mut segs = prefix.to_vec();
        let mut i = glo;
        let mut alias: Option<String> = None;
        let mut done = false;
        while i < ghi && !done {
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.text == "as" {
                if let Some(a) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    alias = Some(a.text.clone());
                }
                i += 2;
            } else if t.kind == TokKind::Ident {
                segs.push(t.text.clone());
                i += 1;
            } else if t.is_punct('*') {
                out.push(UseImport {
                    alias: "*".to_string(),
                    path: segs.clone(),
                });
                done = true;
            } else if t.is_punct('{') {
                let mut d = 0;
                let mut close = i;
                for (k, tk) in toks.iter().enumerate().take(ghi).skip(i) {
                    if tk.is_punct('{') {
                        d += 1;
                    } else if tk.is_punct('}') {
                        d -= 1;
                        if d == 0 {
                            close = k;
                            break;
                        }
                    }
                }
                parse_use_tree(lx, i + 1, close, &segs, out);
                done = true;
            } else {
                i += 1; // `::`
            }
        }
        if !done && !segs.is_empty() && segs.len() > prefix.len() {
            let alias = alias.unwrap_or_else(|| segs.last().cloned().unwrap_or_default());
            // `use x::y::{self}` / `use x::y::self` binds `y`.
            if alias == "self" {
                if segs.len() >= 2 {
                    let path = segs[..segs.len() - 1].to_vec();
                    let name = path.last().cloned().unwrap_or_default();
                    out.push(UseImport { alias: name, path });
                }
            } else {
                out.push(UseImport { alias, path: segs });
            }
        }
    }
}

/// Parses `const NAME: &str = "value"` at token `i` (the `const`
/// keyword). Returns `(name, value)` on match.
fn parse_str_const(lx: &Lexed, i: usize) -> Option<(String, String)> {
    let toks = &lx.toks;
    let name = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident)?;
    if !toks.get(i + 2).is_some_and(|t| t.is_punct(':')) {
        return None;
    }
    let mut j = i + 3;
    while toks
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_punct('\'') || t.is_ident("static"))
    {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("str")) {
        return None;
    }
    if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    let val = toks.get(j + 2).filter(|t| t.kind == TokKind::Str)?;
    Some((name.text.clone(), val.text.clone()))
}

/// Scans a function body (token range) for call sites.
fn scan_body(lx: &Lexed, lo: usize, hi: usize, f: &mut FnDef) {
    let toks = &lx.toks;
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // Method call: `recv . name (`.
        if i >= 1 && toks[i - 1].is_punct('.') {
            let recv_self = i >= 2 && toks[i - 2].is_ident("self");
            f.calls.push(CallSite {
                kind: CallKind::Method,
                path: vec![t.text.clone()],
                recv_self,
                line: t.line,
                col: t.col,
            });
            continue;
        }
        // Path call: walk `seg :: seg :: name (` backwards; a turbofish
        // `>` stops the walk (trailing segments still resolve).
        if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            let mut segs = vec![t.text.clone()];
            let mut j = i;
            while j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].kind == TokKind::Ident
            {
                segs.insert(0, toks[j - 3].text.clone());
                j -= 3;
            }
            f.calls.push(CallSite {
                kind: CallKind::Path,
                path: segs,
                recv_self: false,
                line: t.line,
                col: t.col,
            });
            continue;
        }
        // Plain call: `name (` not preceded by `fn` (a nested fn
        // definition) and not a macro (`name !` never reaches here).
        if i >= 1 && toks[i - 1].is_ident("fn") {
            continue;
        }
        // Skip tuple-struct-like constructors of uppercase idents?
        // No: `Some(..)`/`Ok(..)` resolve to nothing and are dropped by
        // the resolver, which keeps this layer simple.
        f.calls.push(CallSite {
            kind: CallKind::Plain,
            path: vec![t.text.clone()],
            recv_self: false,
            line: t.line,
            col: t.col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_impls_and_calls() {
        let src = "\
use storm_iscsi::pdu::Pdu;
fn free() {
    helper();
    util::deep(1);
    x.method_call();
}
struct T;
impl T {
    fn inherent(&self) {
        self.own();
    }
}
impl Clone for T {
    fn clone(&self) -> T {
        other::thing();
        T
    }
}
";
        let s = summarize("crates/x/src/lib.rs", src);
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].name, "free");
        let kinds: Vec<_> = s.fns[0].calls.iter().map(|c| c.kind).collect();
        assert_eq!(kinds, [CallKind::Plain, CallKind::Path, CallKind::Method]);
        assert_eq!(s.fns[0].calls[1].path, ["util", "deep"]);
        assert_eq!(s.fns[1].impl_type, "T");
        assert_eq!(s.fns[1].trait_name, "");
        assert!(s.fns[1].calls[0].recv_self);
        assert_eq!(s.fns[2].impl_type, "T");
        assert_eq!(s.fns[2].trait_name, "Clone");
        assert_eq!(s.uses.len(), 1);
        assert_eq!(s.uses[0].alias, "Pdu");
        assert_eq!(s.uses[0].path, ["storm_iscsi", "pdu", "Pdu"]);
    }

    #[test]
    fn impl_head_with_generics_and_for() {
        let src = "impl<F: FnMut() -> u32> Runner for Wrapper<F> {\n    fn run(&mut self) {}\n}\n";
        let s = summarize("crates/x/src/lib.rs", src);
        assert_eq!(s.fns[0].impl_type, "Wrapper");
        assert_eq!(s.fns[0].trait_name, "Runner");
    }

    #[test]
    fn inline_mods_nest() {
        let src =
            "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\n";
        let s = summarize("crates/x/src/lib.rs", src);
        let deep = s.fns.iter().find(|f| f.name == "deep").unwrap();
        assert_eq!(deep.modules, ["outer", "inner"]);
        let shallow = s.fns.iter().find(|f| f.name == "shallow").unwrap();
        assert_eq!(shallow.modules, ["outer"]);
    }

    #[test]
    fn use_groups_globs_and_renames() {
        let src = "use a::{b, c::d, e as f};\nuse g::*;\nuse h::i::{self, j};\n";
        let s = summarize("crates/x/src/lib.rs", src);
        let find = |alias: &str| s.uses.iter().find(|u| u.alias == alias);
        assert_eq!(find("b").unwrap().path, ["a", "b"]);
        assert_eq!(find("d").unwrap().path, ["a", "c", "d"]);
        assert_eq!(find("f").unwrap().path, ["a", "e"]);
        assert_eq!(find("*").unwrap().path, ["g"]);
        assert_eq!(find("i").unwrap().path, ["h", "i"]);
        assert_eq!(find("j").unwrap().path, ["h", "i", "j"]);
    }

    #[test]
    fn direct_props_attach_to_enclosing_fn() {
        let src = "\
fn clocky() {
    let t = Instant::now();
}
fn allocy() -> Vec<u8> {
    vec![0u8; 4]
}
fn blocky(rx: &Receiver<u8>) {
    let _ = rx.recv();
}
";
        let s = summarize("crates/x/src/util.rs", src);
        assert_eq!(s.fns[0].props[0].prop, P_WALL_CLOCK);
        assert_eq!(s.fns[0].props[0].what, "`Instant`");
        assert!(s.fns[1].props.iter().any(|p| p.prop == P_ALLOCATES));
        assert!(s.fns[2].props.iter().any(|p| p.prop == P_BLOCKS_THREAD));
    }

    #[test]
    fn trait_default_methods_carry_trait_name() {
        let src = "trait ShardSim {\n    fn tick(&mut self) {\n        helper();\n    }\n    fn required(&self);\n}\n";
        let s = summarize("crates/x/src/lib.rs", src);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].trait_name, "ShardSim");
        assert_eq!(s.fns[0].impl_type, "");
    }

    #[test]
    fn str_consts_and_metric_lits() {
        let src = "\
pub const RELAY_PDUS: &str = \"relay.pdus\";
fn record(reg: &mut Registry) {
    reg.inc(\"relay.pdus\", 1);
    reg.observe(\"relay.typo\", 2.0);
}
#[cfg(test)]
mod tests {
    fn t(reg: &mut Registry) {
        reg.inc(\"test.only\", 1);
    }
}
";
        let s = summarize("crates/telemetry/src/names.rs", src);
        assert_eq!(
            s.consts,
            [("RELAY_PDUS".to_string(), "relay.pdus".to_string())]
        );
        let vals: Vec<_> = s.metric_lits.iter().map(|m| m.value.as_str()).collect();
        assert_eq!(vals, ["relay.pdus", "relay.typo"], "test sites excluded");
    }

    #[test]
    fn allow_cover_ranges_precomputed() {
        let src = "fn f() {\n    // storm-lint: allow(no-panic): why\n    // more words\n    x.unwrap();\n    y.unwrap();\n}\n";
        let s = summarize("crates/x/src/lib.rs", src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!((s.allows[0].line, s.allows[0].end_line), (2, 4));
        assert!(!s.allows[0].in_test);
    }

    #[test]
    fn lexical_hits_skip_test_code() {
        let src = "fn live() { let t = SystemTime::now(); }\n#[cfg(test)]\nmod tests {\n    fn t() { let i = Instant::now(); }\n}\n";
        let s = summarize("crates/sim/src/x.rs", src);
        assert_eq!(s.lexical.len(), 1);
        assert_eq!(s.lexical[0].rule, Rule::NoWallClock);
    }
}

//! Per-file parse-result cache keyed by content hash.
//!
//! [`crate::symbols::FileSummary`] is derived purely from a file's
//! bytes (no config, no cross-file state), so it can be reused across
//! runs as long as the bytes — and the summarizer itself — have not
//! changed. The cache is one flat text file under
//! `target/storm-lint-cache/` mapping `rel_path -> (fnv64(content),
//! summary)`; a run re-summarizes only files whose hash differs, which
//! turns warm `--workspace` scans into a read-and-hash pass.
//!
//! The format is line-based with tab-separated, escaped fields — the
//! same hand-rolled-deterministic policy as the JSON renderers. The
//! header pins [`LINT_VERSION`]: bumping it (whenever summarization
//! semantics change) invalidates every entry at once. Any parse
//! irregularity discards the whole cache silently; correctness never
//! depends on it, and a cold scan is cheap.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::Rule;
use crate::symbols::{
    AllowDecl, CallKind, CallSite, DirectProp, FileSummary, FnDef, LexHit, MetricLit, UseImport,
};

/// Summarizer fingerprint; bump when `symbols::summarize` output
/// changes shape or semantics.
pub const LINT_VERSION: u32 = 2;

/// FNV-1a 64-bit content hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn cache_path(root: &Path) -> PathBuf {
    root.join("target")
        .join("storm-lint-cache")
        .join("summaries.v1.txt")
}

/// The loaded cache: `rel_path -> (content hash, summary)`.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileSummary)>,
}

impl Cache {
    /// Loads the cache for `root`. Any error — missing file, version
    /// mismatch, corruption — yields an empty cache.
    pub fn load(root: &Path) -> Cache {
        let text = match fs::read_to_string(cache_path(root)) {
            Ok(t) => t,
            Err(_) => return Cache::default(),
        };
        match parse(&text) {
            Some(entries) => Cache { entries },
            None => Cache::default(),
        }
    }

    /// Returns the cached summary for `rel` iff the stored hash matches.
    pub fn get(&self, rel: &str, hash: u64) -> Option<&FileSummary> {
        match self.entries.get(rel) {
            Some((h, s)) if *h == hash => Some(s),
            _ => None,
        }
    }

    /// Inserts or replaces the entry for `rel`.
    pub fn put(&mut self, rel: &str, hash: u64, summary: FileSummary) {
        self.entries.insert(rel.to_string(), (hash, summary));
    }

    /// Drops entries for files no longer present.
    pub fn retain_files(&mut self, live: &[String]) {
        let keep: std::collections::BTreeSet<&str> = live.iter().map(|s| s.as_str()).collect();
        self.entries.retain(|k, _| keep.contains(k.as_str()));
    }

    /// Writes the cache under `root/target/storm-lint-cache/`.
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let path = cache_path(root);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(&path, self.serialize())
    }

    fn serialize(&self) -> String {
        let mut out = format!("storm-lint-cache {LINT_VERSION}\n");
        for (rel, (hash, s)) in &self.entries {
            out.push_str(&format!("F\t{hash:016x}\t{}\n", esc(rel)));
            for u in &s.uses {
                out.push_str(&format!(
                    "u\t{}\t{}\n",
                    esc(&u.alias),
                    esc(&u.path.join("::"))
                ));
            }
            for (n, v) in &s.consts {
                out.push_str(&format!("c\t{}\t{}\n", esc(n), esc(v)));
            }
            for m in &s.metric_lits {
                out.push_str(&format!(
                    "m\t{}\t{}\t{}\t{}\n",
                    esc(&m.method),
                    esc(&m.value),
                    m.line,
                    m.col
                ));
            }
            for a in &s.allows {
                out.push_str(&format!(
                    "a\t{}\t{}\t{}\t{}\n",
                    a.line,
                    a.end_line,
                    a.in_test as u8,
                    esc(&a.rules.join(","))
                ));
            }
            for h in &s.lexical {
                out.push_str(&format!(
                    "x\t{}\t{}\t{}\t{}\n",
                    h.rule.name(),
                    h.line,
                    h.col,
                    esc(&h.message)
                ));
            }
            for f in &s.fns {
                out.push_str(&format!(
                    "f\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                    esc(&f.name),
                    esc(&f.modules.join("::")),
                    esc(&f.impl_type),
                    esc(&f.trait_name),
                    f.line,
                    f.end_line,
                    f.in_test as u8
                ));
                for c in &f.calls {
                    let kind = match c.kind {
                        CallKind::Plain => 'P',
                        CallKind::Path => 'T',
                        CallKind::Method => 'M',
                    };
                    out.push_str(&format!(
                        "k\t{kind}\t{}\t{}\t{}\t{}\n",
                        esc(&c.path.join("::")),
                        c.recv_self as u8,
                        c.line,
                        c.col
                    ));
                }
                for p in &f.props {
                    out.push_str(&format!(
                        "p\t{}\t{}\t{}\t{}\n",
                        p.prop,
                        p.line,
                        p.col,
                        esc(&p.what)
                    ));
                }
            }
            out.push_str(&format!("!\t{}\n", s.has_forbid_unsafe as u8));
        }
        out
    }
}

fn split_path(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split("::").map(|p| p.to_string()).collect()
    }
}

fn parse(text: &str) -> Option<BTreeMap<String, (u64, FileSummary)>> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("storm-lint-cache {LINT_VERSION}") {
        return None;
    }
    let mut entries = BTreeMap::new();
    let mut cur: Option<(String, u64, FileSummary)> = None;
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "F" => {
                if let Some((rel, h, s)) = cur.take() {
                    entries.insert(rel, (h, s));
                }
                if fields.len() != 3 {
                    return None;
                }
                let hash = u64::from_str_radix(fields[1], 16).ok()?;
                let rel = unesc(fields[2])?;
                let summary = FileSummary {
                    rel_path: rel.clone(),
                    ..FileSummary::default()
                };
                cur = Some((rel, hash, summary));
            }
            "u" => {
                if fields.len() != 3 {
                    return None;
                }
                let s = &mut cur.as_mut()?.2;
                s.uses.push(UseImport {
                    alias: unesc(fields[1])?,
                    path: split_path(&unesc(fields[2])?),
                });
            }
            "c" => {
                if fields.len() != 3 {
                    return None;
                }
                let s = &mut cur.as_mut()?.2;
                s.consts.push((unesc(fields[1])?, unesc(fields[2])?));
            }
            "m" => {
                if fields.len() != 5 {
                    return None;
                }
                let s = &mut cur.as_mut()?.2;
                s.metric_lits.push(MetricLit {
                    method: unesc(fields[1])?,
                    value: unesc(fields[2])?,
                    line: fields[3].parse().ok()?,
                    col: fields[4].parse().ok()?,
                });
            }
            "a" => {
                if fields.len() != 5 {
                    return None;
                }
                let s = &mut cur.as_mut()?.2;
                let rules = unesc(fields[4])?;
                s.allows.push(AllowDecl {
                    rules: if rules.is_empty() {
                        Vec::new()
                    } else {
                        rules.split(',').map(|r| r.to_string()).collect()
                    },
                    line: fields[1].parse().ok()?,
                    end_line: fields[2].parse().ok()?,
                    in_test: fields[3] == "1",
                });
            }
            "x" => {
                if fields.len() != 5 {
                    return None;
                }
                let s = &mut cur.as_mut()?.2;
                s.lexical.push(LexHit {
                    rule: Rule::from_name(fields[1])?,
                    line: fields[2].parse().ok()?,
                    col: fields[3].parse().ok()?,
                    message: unesc(fields[4])?,
                });
            }
            "f" => {
                if fields.len() != 8 {
                    return None;
                }
                let s = &mut cur.as_mut()?.2;
                s.fns.push(FnDef {
                    name: unesc(fields[1])?,
                    modules: split_path(&unesc(fields[2])?),
                    impl_type: unesc(fields[3])?,
                    trait_name: unesc(fields[4])?,
                    line: fields[5].parse().ok()?,
                    end_line: fields[6].parse().ok()?,
                    in_test: fields[7] == "1",
                    calls: Vec::new(),
                    props: Vec::new(),
                });
            }
            "k" => {
                if fields.len() != 6 {
                    return None;
                }
                let f = cur.as_mut()?.2.fns.last_mut()?;
                f.calls.push(CallSite {
                    kind: match fields[1] {
                        "P" => CallKind::Plain,
                        "T" => CallKind::Path,
                        "M" => CallKind::Method,
                        _ => return None,
                    },
                    path: split_path(&unesc(fields[2])?),
                    recv_self: fields[3] == "1",
                    line: fields[4].parse().ok()?,
                    col: fields[5].parse().ok()?,
                });
            }
            "p" => {
                if fields.len() != 5 {
                    return None;
                }
                let f = cur.as_mut()?.2.fns.last_mut()?;
                f.props.push(DirectProp {
                    prop: fields[1].parse().ok()?,
                    line: fields[2].parse().ok()?,
                    col: fields[3].parse().ok()?,
                    what: unesc(fields[4])?,
                });
            }
            "!" => {
                if fields.len() != 2 {
                    return None;
                }
                cur.as_mut()?.2.has_forbid_unsafe = fields[1] == "1";
            }
            _ => return None,
        }
    }
    if let Some((rel, h, s)) = cur.take() {
        entries.insert(rel, (h, s));
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::summarize;

    const SRC: &str = "use std::time::Instant;\n\
        // storm-lint: allow(no-wall-clock): bench only\n\
        pub fn f() {\n    let t = Instant::now();\n    helper(\"x\\ty\");\n}\n";

    #[test]
    fn roundtrip_preserves_summary() {
        let s = summarize("crates/sim/src/engine.rs", SRC);
        let mut c = Cache::default();
        c.put("crates/sim/src/engine.rs", fnv64(SRC.as_bytes()), s.clone());
        let parsed = parse(&c.serialize()).expect("parses back");
        let (h, got) = &parsed["crates/sim/src/engine.rs"];
        assert_eq!(*h, fnv64(SRC.as_bytes()));
        assert_eq!(*got, s);
    }

    #[test]
    fn hash_mismatch_misses() {
        let s = summarize("a.rs", "fn f() {}\n");
        let mut c = Cache::default();
        c.put("a.rs", 1, s);
        assert!(c.get("a.rs", 1).is_some());
        assert!(c.get("a.rs", 2).is_none());
        assert!(c.get("b.rs", 1).is_none());
    }

    #[test]
    fn corrupt_text_parses_to_none() {
        assert!(parse("storm-lint-cache 999\n").is_none());
        assert!(parse(&format!("storm-lint-cache {LINT_VERSION}\nZ\tjunk\n")).is_none());
        assert!(parse(&format!("storm-lint-cache {LINT_VERSION}\nu\ta\tb\n")).is_none());
        assert!(parse(&format!(
            "storm-lint-cache {LINT_VERSION}\nF\tnothex\ta.rs\n"
        ))
        .is_none());
    }

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "tab\there", "nl\nhere", "back\\slash", ""] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
        assert!(unesc("bad\\q").is_none());
    }

    #[test]
    fn retain_drops_dead_files() {
        let mut c = Cache::default();
        c.put("a.rs", 1, FileSummary::default());
        c.put("b.rs", 2, FileSummary::default());
        c.retain_files(&["a.rs".to_string()]);
        assert!(c.get("a.rs", 1).is_some());
        assert!(c.get("b.rs", 2).is_none());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }
}

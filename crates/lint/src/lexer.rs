//! A minimal Rust lexer for invariant scanning.
//!
//! The build environment vendors no parser crates, so `storm-lint` does
//! its own tokenization. It is deliberately *not* a full Rust grammar:
//! the rules only need identifiers and punctuation with accurate source
//! positions, with comments, strings and char literals stripped so that
//! prose can never trigger a rule. Three extra pieces of structure are
//! recovered on top of the raw token stream because every rule needs
//! them:
//!
//! - `// storm-lint: allow(<rule>, ...)` comments, recorded per line
//!   (the inline escape hatch);
//! - `#[cfg(test)]` / `#[test]` item ranges, so test code is exempt;
//! - brace depth, so item boundaries can be found.

use std::collections::BTreeMap;

/// Token kind. Number and char literals keep no text; string literals
/// keep their inner text so registry-facing rules (metric names) can
/// match on the value — no other rule reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct(char),
    /// Number, char or byte literal.
    Lit,
    /// String / byte-string / raw-string literal; `text` holds the
    /// content between the quotes (escape sequences unprocessed).
    Str,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind (identifier and string text lives in `text`).
    pub kind: TokKind,
    /// Identifier or string-literal text; empty for punctuation and
    /// other literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexed source: tokens plus the per-line rule allowances and the line
/// ranges covered by test-only items.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub toks: Vec<Tok>,
    /// Line -> rules allowed there by a `// storm-lint: allow(...)`
    /// comment. An allow covers its own line and the next code line,
    /// looking through any comment-only lines in between (so the
    /// directive may open a multi-line explanation).
    pub allows: BTreeMap<u32, Vec<String>>,
    /// Lines where a `//` comment starts; token-bearing lines are
    /// removed after lexing, leaving comment-only lines.
    pub comment_lines: std::collections::BTreeSet<u32>,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl Lexed {
    /// True when `line` falls inside a test-gated item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when `rule` is allowed at `line`: by a comment on the same
    /// line, or by one above it separated only by comment-only lines.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        let hit = |l: u32| {
            self.allows
                .get(&l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule))
        };
        if hit(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if hit(l) {
                return true;
            }
            if !self.comment_lines.contains(&l) {
                return false;
            }
        }
        false
    }
}

const ALLOW_PREFIX: &str = "storm-lint: allow(";

/// Extracts rule names from a `storm-lint: allow(a, b)` comment body.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let start = comment.find(ALLOW_PREFIX)? + ALLOW_PREFIX.len();
    let end = comment[start..].find(')')? + start;
    Some(
        comment[start..end]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

/// Tokenizes `src`, recording allow-comments and test-item ranges.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i] as char;
        // Line comment (incl. doc comments): record allow directives.
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                bump!();
            }
            let text = &src[start..i];
            lx.comment_lines.insert(line);
            // Doc comments never declare allows — they merely *mention*
            // the syntax (rule docs would otherwise register escapes).
            let is_doc = text.starts_with("///") || text.starts_with("//!");
            if !is_doc {
                if let Some(rules) = parse_allow(text) {
                    lx.allows.entry(line).or_default().extend(rules);
                }
            }
            continue;
        }
        // Block comment, with nesting. Every line the comment touches
        // is recorded as a comment line so the allow-walk can look
        // through multi-line `/* ... */` blocks exactly like it looks
        // through runs of `//` lines (token-bearing lines are removed
        // after lexing).
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 0;
            while i < b.len() {
                lx.comment_lines.insert(line);
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br"..." etc.
        if (c == 'r' || c == 'b') && raw_string_start(b, i).is_some() {
            let (hashes, open) = raw_string_start(b, i).unwrap_or((0, i));
            let (l, cl) = (line, col);
            while i < open {
                bump!();
            }
            bump!(); // the opening quote
            let content_start = i;
            let content_end;
            loop {
                if i >= b.len() {
                    content_end = i;
                    break;
                }
                if b[i] == b'"'
                    && b[i + 1..].len() >= hashes
                    && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
                {
                    content_end = i;
                    bump!();
                    for _ in 0..hashes {
                        bump!();
                    }
                    break;
                }
                bump!();
            }
            lx.toks.push(Tok {
                kind: TokKind::Str,
                text: src[content_start..content_end].to_string(),
                line: l,
                col: cl,
            });
            continue;
        }
        // String and byte-string literals.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let (l, cl) = (line, col);
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            let content_start = i;
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' && i + 1 < b.len() {
                    bump!();
                }
                bump!();
            }
            let content_end = i;
            if i < b.len() {
                bump!(); // closing quote
            }
            lx.toks.push(Tok {
                kind: TokKind::Str,
                text: src[content_start..content_end].to_string(),
                line: l,
                col: cl,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(end) = char_literal_end(b, i) {
                let (l, cl) = (line, col);
                while i < end {
                    bump!();
                }
                lx.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line: l,
                    col: cl,
                });
            } else {
                // Lifetime: skip the quote and the identifier.
                bump!();
                while i < b.len() && is_ident_char(b[i]) {
                    bump!();
                }
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(b[i]) {
            let (l, cl) = (line, col);
            let start = i;
            while i < b.len() && is_ident_char(b[i]) {
                bump!();
            }
            lx.toks.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line: l,
                col: cl,
            });
            continue;
        }
        // Number literal (including 0x..., suffixes, underscores).
        if b[i].is_ascii_digit() {
            let (l, cl) = (line, col);
            while i < b.len() && (is_ident_char(b[i]) || b[i] == b'.') {
                // Stop a `0..10` range from swallowing the dots.
                if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                    break;
                }
                bump!();
            }
            lx.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line: l,
                col: cl,
            });
            continue;
        }
        // Whitespace.
        if (b[i] as char).is_whitespace() {
            bump!();
            continue;
        }
        // Everything else: single punctuation char.
        lx.toks.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
            col,
        });
        bump!();
    }

    // A line with both code and a trailing comment is a code line: the
    // upward allow-walk must stop there.
    for t in &lx.toks {
        lx.comment_lines.remove(&t.line);
    }
    find_test_ranges(&mut lx);
    lx
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// If `i` starts a raw (byte) string, returns `(hash_count, index of the
/// opening quote)`.
fn raw_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((hashes, j))
    } else {
        None
    }
}

/// If `i` (at a `'`) starts a char literal, returns the index one past
/// its closing quote; `None` means it is a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escaped char: step over the escaped character itself (it may
        // be `'`, as in `'\''`), then scan to the closing quote.
        j += 1;
        if j < b.len() {
            j += 1;
        }
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (j < b.len()).then_some(j + 1);
    }
    if b[j] == b'\'' {
        return None; // `''` is not a char literal
    }
    // `'x'` is a char literal; `'x` followed by anything else (or more
    // ident chars) is a lifetime.
    if is_ident_char(b[j]) && j + 1 < b.len() && b[j + 1] == b'\'' {
        return Some(j + 2);
    }
    if !is_ident_char(b[j]) && j + 1 < b.len() && b[j + 1] == b'\'' {
        return Some(j + 2); // e.g. '+' or ' '
    }
    None
}

/// Finds `#[cfg(test)]` / `#[test]` attributed items and records their
/// line ranges. Any attribute containing the identifier `test` counts
/// (`#[cfg(all(test, ...))]` included) — unless the occurrence is
/// directly negated as `not(test)`, so `#[cfg(not(test))]` items stay
/// under the rules.
fn find_test_ranges(lx: &mut Lexed) {
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Attribute span: `#[` ... matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1;
        let mut has_test = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
            } else if toks[j].is_ident("test") {
                let negated = j >= 2 && toks[j - 1].is_punct('(') && toks[j - 2].is_ident("not");
                if !negated {
                    has_test = true;
                }
            }
            j += 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        // Skip further attributes between this one and the item.
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            let mut d = 1;
            let mut k = j + 2;
            while k < toks.len() && d > 0 {
                if toks[k].is_punct('[') {
                    d += 1;
                } else if toks[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
            j = k;
        }
        // Item body: ends at the matching `}` of its first `{`, or at a
        // top-level `;` for brace-less items (`use`, type aliases).
        let mut d = 0i32;
        let mut end = j;
        while end < toks.len() {
            if toks[end].is_punct('{') {
                d += 1;
            } else if toks[end].is_punct('}') {
                d -= 1;
                if d == 0 {
                    break;
                }
            } else if toks[end].is_punct(';') && d == 0 {
                break;
            }
            end += 1;
        }
        let last = end.min(toks.len() - 1);
        lx.test_ranges
            .push((toks[attr_start].line, toks[last].line));
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_tokenize() {
        let lx = lex(r#"let x = "SystemTime::now()"; // Instant::now in prose"#);
        assert!(!lx.toks.iter().any(|t| t.is_ident("SystemTime")));
        assert!(!lx.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(lx.toks.iter().any(|t| t.is_ident("let")));
    }

    #[test]
    fn raw_strings_skip_cleanly() {
        let lx = lex(r##"let s = r#"thread_rng() "quoted" inside"#; let y = 1;"##);
        assert!(!lx.toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(lx.toks.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let n = '\\n';");
        let idents: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"str"));
        // 'a never shows up as an ident; 'x' and '\n' lex as literals.
        assert!(!idents.contains(&"a"));
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 2);
    }

    #[test]
    fn allow_comments_attach_to_their_line() {
        let src = "fn f() {\n    // storm-lint: allow(no-panic): invariant\n    x.unwrap();\n}\n";
        let lx = lex(src);
        assert!(lx.allowed("no-panic", 2));
        assert!(lx.allowed("no-panic", 3), "next line is covered too");
        assert!(!lx.allowed("no-panic", 4), "code line ends the cover");
        assert!(!lx.allowed("no-hash-iter", 3));
    }

    #[test]
    fn allow_covers_through_comment_block() {
        let src = "fn f() {\n    // storm-lint: allow(no-panic): a long\n    // justification over\n    // several lines\n    x.unwrap();\n    y.unwrap();\n}\n";
        let lx = lex(src);
        assert!(lx.allowed("no-panic", 5), "reaches through comments");
        assert!(!lx.allowed("no-panic", 6), "but only the next code line");
    }

    #[test]
    fn trailing_comment_on_code_line_blocks_walk() {
        let src = "fn f() {\n    a(); // storm-lint: allow(no-panic): here\n    x.unwrap();\n    y.unwrap();\n}\n";
        let lx = lex(src);
        assert!(lx.allowed("no-panic", 2));
        assert!(lx.allowed("no-panic", 3), "directly-below still covered");
        assert!(!lx.allowed("no-panic", 4));
    }

    #[test]
    fn cfg_test_items_are_ranged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lx = lex(src);
        assert!(!lx.in_test(1));
        assert!(lx.in_test(3));
        assert!(lx.in_test(4));
        assert!(!lx.in_test(6));
    }

    #[test]
    fn test_attr_fn_is_ranged() {
        let src = "#[test]\nfn check() {\n    boom();\n}\nfn live() {}\n";
        let lx = lex(src);
        assert!(lx.in_test(3));
        assert!(!lx.in_test(5));
    }

    #[test]
    fn positions_are_one_based() {
        let lx = lex("a\n  bb\n");
        assert_eq!((lx.toks[0].line, lx.toks[0].col), (1, 1));
        assert_eq!((lx.toks[1].line, lx.toks[1].col), (2, 3));
    }

    #[test]
    fn block_comments_nest() {
        let lx = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert!(lx.toks.iter().any(|t| t.is_ident("let")));
        assert!(!lx.toks.iter().any(|t| t.is_ident("outer")));
    }

    #[test]
    fn allow_covers_through_block_comment() {
        // Regression: a multi-line `/* */` block between the allow and
        // its target used to end the upward walk (block-comment lines
        // were never recorded as comment lines).
        let src = "fn f() {\n    // storm-lint: allow(no-panic): next code line\n    /* a block\n       comment between\n       allow and target */\n    x.unwrap();\n    y.unwrap();\n}\n";
        let lx = lex(src);
        assert!(lx.allowed("no-panic", 6), "reaches through the block");
        assert!(!lx.allowed("no-panic", 7), "but only the next code line");
    }

    #[test]
    fn nested_block_comment_keeps_line_map() {
        // Lines after a nested block comment must keep their true
        // numbers so `#[cfg(test)]` ranges and allows anchor correctly.
        let src = "/* outer\n /* inner\n  */\n still outer */\nfn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let lx = lex(src);
        let f = lx.toks.iter().find(|t| t.is_ident("live")).unwrap();
        assert_eq!(f.line, 5);
        assert!(!lx.in_test(5));
        assert!(lx.in_test(8));
    }

    #[test]
    fn multiline_raw_string_keeps_line_map() {
        // A raw string spanning lines (with embedded quotes and hashes)
        // must advance the line counter like any other bytes.
        let src =
            "let s = r##\"line one\n\"quoted\"# and\nmore\"##;\nfn live() {}\n#[test]\nfn t() {}\n";
        let lx = lex(src);
        let f = lx.toks.iter().find(|t| t.is_ident("live")).unwrap();
        assert_eq!(f.line, 4);
        assert!(lx.in_test(6));
        assert!(!lx.in_test(4));
    }

    #[test]
    fn string_tokens_keep_inner_text() {
        let lx = lex("reg.inc(\"relay.pdus\", 1); let r = r#\"raw.name\"#; let b = b\"bytes\";");
        let strs: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["relay.pdus", "raw.name", "bytes"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        // `'\''` is a char literal, not a lifetime plus stray quotes.
        let lx = lex("let q = '\\''; let after = 1;");
        assert!(lx.toks.iter().any(|t| t.is_ident("after")));
        assert!(!lx.toks.iter().any(|t| t.kind == TokKind::Punct('\'')));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src =
            "#[cfg(not(test))]\nfn live() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {}\n";
        let lx = lex(src);
        assert!(!lx.in_test(3), "not(test) items stay under the rules");
        assert!(lx.in_test(5));
    }
}

//! CLI entry point: `storm-lint [--workspace] [--json | --sarif]
//! [--no-cache] [--root DIR] [FILES...]`.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use storm_lint::{
    analyze_source, analyze_workspace_opts, render_human, render_json, render_sarif, Config,
    FileClass, ScanOptions,
};

enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    workspace: bool,
    format: Format,
    cache: bool,
    root: PathBuf,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        format: Format::Human,
        cache: true,
        root: PathBuf::from("."),
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.format = Format::Json,
            "--sarif" => args.format = Format::Sarif,
            "--no-cache" => args.cache = false,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: storm-lint [--workspace] [--json | --sarif] [--no-cache] \
                     [--root DIR] [FILES...]"
                        .to_string(),
                )
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    if !args.workspace && args.files.is_empty() {
        args.workspace = true; // the only mode that makes sense bare
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::default();
    let (findings, scanned) = if args.workspace {
        let opts = ScanOptions { cache: args.cache };
        match analyze_workspace_opts(&args.root, &cfg, opts) {
            Ok((f, stats)) => (f, stats.files_scanned),
            Err(e) => {
                eprintln!("storm-lint: workspace scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        for rel in &args.files {
            let class = FileClass::from_rel_path(rel);
            match fs::read_to_string(args.root.join(rel)) {
                Ok(src) => findings.extend(analyze_source(&class, &src, &cfg)),
                Err(e) => {
                    eprintln!("storm-lint: cannot read {rel}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
        });
        let n = args.files.len();
        (findings, n)
    };
    let rendered = match args.format {
        Format::Json => render_json(&findings, scanned),
        Format::Sarif => render_sarif(&findings),
        Format::Human => render_human(&findings, scanned),
    };
    print!("{rendered}");
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! Workspace symbol table and best-effort call resolution.
//!
//! [`Workspace::build`] flattens per-file [`FileSummary`]s into an
//! indexed function table and resolves every call site to a set of
//! candidate definitions. Resolution is *conservative on ambiguity*:
//! when several definitions could be the callee (method calls through
//! unknown receiver types, same-name free functions), the call links to
//! **all** of them, so taint over-approximates rather than leaks.
//! Unresolved calls (std, vendored crates) are assumed clean — the
//! vendor tree is not held to workspace invariants.
//!
//! Resolution tiers (DESIGN.md §3.16):
//!
//! 1. plain `f()` — same module, then `use`-imports (incl. globs),
//!    then unique-by-name in the same crate;
//! 2. path `a::b::f()` — `crate`/`self`/`super`/`storm_*` prefixes are
//!    normalized and `use`-aliases expanded, then exact module match,
//!    then `Type::method` impl lookup, then crate-wide by name;
//! 3. method `x.m()` — `self.m()` prefers the surrounding impl type;
//!    otherwise every impl or trait method named `m` in the workspace.

use std::collections::BTreeMap;

use crate::symbols::{CallKind, FileSummary, FnDef};

/// Index of one function in the flattened workspace table.
pub type FnId = usize;

/// Method names so ubiquitous on std containers/iterators that linking
/// an untyped receiver to every same-named workspace impl floods the
/// graph with false edges (`vec.push(..)` must not link to a project
/// `push`). Such calls stay external unless the receiver is `self`.
/// The cost is a missed edge when a project method shadows one of
/// these names on a non-`self` receiver — a documented imprecision.
const UBIQUITOUS_METHODS: [&str; 24] = [
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "extend",
    "drain",
    "append",
    "entry",
    "retain",
    "contains",
    "contains_key",
    "next",
    "take",
    "send",
    "write",
];

/// The flattened workspace: files, functions, and resolution indexes.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Per-file summaries, in walk order.
    pub files: Vec<FileSummary>,
    /// Flattened `(file index, fn index within file)` per [`FnId`].
    pub fns: Vec<(usize, usize)>,
    /// Resolved call edges per function: `(call index, candidates)`.
    pub edges: Vec<Vec<(usize, Vec<FnId>)>>,
    /// `(crate, module path, fn name)` -> free fns.
    by_module: BTreeMap<(String, String, String), Vec<FnId>>,
    /// `(crate, fn name)` -> free fns anywhere in the crate.
    by_crate: BTreeMap<(String, String), Vec<FnId>>,
    /// `(impl type, method name)` -> methods.
    by_type_method: BTreeMap<(String, String), Vec<FnId>>,
    /// method name -> every impl/trait method with that name.
    by_method: BTreeMap<String, Vec<FnId>>,
}

/// Derives `(crate short name, module path segments)` from a
/// workspace-relative file path: `crates/core/src/relay/active.rs` →
/// `("core", ["relay", "active"])`; `lib.rs`, `main.rs` and `mod.rs`
/// contribute no segment of their own.
pub fn file_modules(rel_path: &str) -> (String, Vec<String>) {
    let (crate_name, within) = match rel_path.strip_prefix("crates/") {
        Some(rest) => {
            let mut it = rest.splitn(2, '/');
            let name = it.next().unwrap_or("").to_string();
            (name, it.next().unwrap_or(""))
        }
        None => ("storm".to_string(), rel_path),
    };
    let within = within.strip_prefix("src/").unwrap_or(within);
    let mut mods: Vec<String> = Vec::new();
    for seg in within.split('/') {
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if seg.is_empty() || seg == "lib" || seg == "main" || seg == "mod" {
            continue;
        }
        mods.push(seg.to_string());
    }
    (crate_name, mods)
}

/// Normalizes a leading path segment that names a workspace crate:
/// `storm_core` → `core`, `storm` → `storm`.
fn crate_of_segment(seg: &str) -> Option<String> {
    if seg == "storm" {
        return Some("storm".to_string());
    }
    seg.strip_prefix("storm_").map(str::to_string)
}

impl Workspace {
    /// Builds the table and resolves all call sites.
    pub fn build(files: Vec<FileSummary>) -> Workspace {
        let mut ws = Workspace {
            files,
            ..Workspace::default()
        };
        for (fi, file) in ws.files.iter().enumerate() {
            let (crate_name, file_mods) = file_modules(&file.rel_path);
            for (gi, f) in file.fns.iter().enumerate() {
                let id: FnId = ws.fns.len();
                ws.fns.push((fi, gi));
                if f.in_test {
                    continue; // test fns are never resolution targets
                }
                if f.impl_type.is_empty() && f.trait_name.is_empty() {
                    let mut mods = file_mods.clone();
                    mods.extend(f.modules.iter().cloned());
                    ws.by_module
                        .entry((crate_name.clone(), mods.join("::"), f.name.clone()))
                        .or_default()
                        .push(id);
                    ws.by_crate
                        .entry((crate_name.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                } else {
                    if !f.impl_type.is_empty() {
                        ws.by_type_method
                            .entry((f.impl_type.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    ws.by_method.entry(f.name.clone()).or_default().push(id);
                }
            }
        }
        // Resolve all call sites.
        let mut edges: Vec<Vec<(usize, Vec<FnId>)>> = Vec::with_capacity(ws.fns.len());
        for id in 0..ws.fns.len() {
            let f = ws.fn_def(id);
            let (fi, _) = ws.fns[id];
            let mut out = Vec::new();
            if !f.in_test {
                for (ci, call) in f.calls.iter().enumerate() {
                    let targets = ws.resolve(fi, f, call.kind, &call.path, call.recv_self);
                    if !targets.is_empty() {
                        out.push((ci, targets));
                    }
                }
            }
            edges.push(out);
        }
        ws.edges = edges;
        ws
    }

    /// The [`FnDef`] behind an id.
    pub fn fn_def(&self, id: FnId) -> &FnDef {
        let (fi, gi) = self.fns[id];
        &self.files[fi].fns[gi]
    }

    /// The file index behind an id.
    pub fn file_of(&self, id: FnId) -> usize {
        self.fns[id].0
    }

    /// Resolves one call from a function in file `fi`. Returns a
    /// sorted, deduplicated candidate set (empty = external, assumed
    /// clean).
    fn resolve(
        &self,
        fi: usize,
        caller: &FnDef,
        kind: CallKind,
        path: &[String],
        recv_self: bool,
    ) -> Vec<FnId> {
        let file = &self.files[fi];
        let (crate_name, file_mods) = file_modules(&file.rel_path);
        let mut caller_mods = file_mods.clone();
        caller_mods.extend(caller.modules.iter().cloned());

        let found = match kind {
            CallKind::Method => {
                let name = path.last().map(String::as_str).unwrap_or("");
                if recv_self && !caller.impl_type.is_empty() {
                    if let Some(v) = self
                        .by_type_method
                        .get(&(caller.impl_type.clone(), name.to_string()))
                    {
                        return dedup(v.clone());
                    }
                }
                // Without a typed receiver, linking every same-named
                // impl is only tolerable for distinctive names. Names
                // shared with std's containers/iterators would wire
                // `vec.push(..)` to every workspace `push`, so they
                // stay external (a deliberate precision trade-off;
                // `self.push()` above still resolves exactly).
                if UBIQUITOUS_METHODS.contains(&name) {
                    Vec::new()
                } else {
                    self.by_method.get(name).cloned().unwrap_or_default()
                }
            }
            CallKind::Plain => {
                let name = path.last().cloned().unwrap_or_default();
                // Same module first.
                if let Some(v) =
                    self.by_module
                        .get(&(crate_name.clone(), caller_mods.join("::"), name.clone()))
                {
                    return dedup(v.clone());
                }
                // A `use` import binding this name.
                for u in &file.uses {
                    if u.alias == name {
                        return self.resolve_abs(&crate_name, &caller_mods, &u.path);
                    }
                }
                // Glob imports: try each prefix.
                for u in &file.uses {
                    if u.alias == "*" {
                        let mut p = u.path.clone();
                        p.push(name.clone());
                        let hit = self.resolve_abs(&crate_name, &caller_mods, &p);
                        if !hit.is_empty() {
                            return hit;
                        }
                    }
                }
                // Anywhere in the same crate (conservative: all).
                self.by_crate
                    .get(&(crate_name, name))
                    .cloned()
                    .unwrap_or_default()
            }
            CallKind::Path => self.resolve_path(&crate_name, &caller_mods, file, path),
        };
        dedup(found)
    }

    /// Resolves a path call after alias/prefix handling.
    fn resolve_path(
        &self,
        crate_name: &str,
        caller_mods: &[String],
        file: &FileSummary,
        path: &[String],
    ) -> Vec<FnId> {
        if path.is_empty() {
            return Vec::new();
        }
        // Expand a `use` alias on the first segment.
        let mut segs: Vec<String> = path.to_vec();
        if let Some(u) = file.uses.iter().find(|u| u.alias == segs[0]) {
            let mut p = u.path.clone();
            p.extend(segs[1..].iter().cloned());
            segs = p;
        }
        self.resolve_abs(crate_name, caller_mods, &segs)
    }

    /// Resolves an absolute-ish path: handles `crate`/`self`/`super`/
    /// `storm_*` prefixes, then tries (in order) exact module match in
    /// the named or current crate, `Type::method`, crate-wide by name.
    fn resolve_abs(&self, crate_name: &str, caller_mods: &[String], path: &[String]) -> Vec<FnId> {
        if path.is_empty() {
            return Vec::new();
        }
        let mut segs: Vec<String> = path.to_vec();
        let mut target_crate: Option<String> = None;
        let mut base_mods: Vec<String> = Vec::new();
        loop {
            let Some(first) = segs.first().cloned() else {
                return Vec::new();
            };
            if first == "crate" {
                target_crate = Some(crate_name.to_string());
                segs.remove(0);
            } else if first == "self" {
                target_crate = Some(crate_name.to_string());
                base_mods = caller_mods.to_vec();
                segs.remove(0);
            } else if first == "super" {
                target_crate = Some(crate_name.to_string());
                if base_mods.is_empty() {
                    base_mods = caller_mods.to_vec();
                }
                base_mods.pop();
                segs.remove(0);
            } else if let Some(c) = crate_of_segment(&first) {
                target_crate = Some(c);
                segs.remove(0);
            } else {
                break;
            }
        }
        let Some(name) = segs.last().cloned() else {
            return Vec::new();
        };
        let mid: Vec<String> = segs[..segs.len().saturating_sub(1)].to_vec();

        if let Some(tc) = &target_crate {
            let mut mods = base_mods.clone();
            mods.extend(mid.iter().cloned());
            if let Some(v) = self
                .by_module
                .get(&(tc.clone(), mods.join("::"), name.clone()))
            {
                return v.clone();
            }
            // `storm_x::Type::method(..)`.
            if let Some(ty) = mid.last() {
                if let Some(v) = self.by_type_method.get(&(ty.clone(), name.clone())) {
                    return v.clone();
                }
            }
            return self
                .by_crate
                .get(&(tc.clone(), name))
                .cloned()
                .unwrap_or_default();
        }

        // No crate prefix: `util::helper(..)` relative to the caller's
        // module, then from the crate root, then `Type::method`.
        let mut rel = caller_mods.to_vec();
        rel.extend(mid.iter().cloned());
        if let Some(v) = self
            .by_module
            .get(&(crate_name.to_string(), rel.join("::"), name.clone()))
        {
            return v.clone();
        }
        if let Some(v) = self
            .by_module
            .get(&(crate_name.to_string(), mid.join("::"), name.clone()))
        {
            return v.clone();
        }
        if let Some(ty) = mid.last() {
            if let Some(v) = self.by_type_method.get(&(ty.clone(), name.clone())) {
                return v.clone();
            }
        }
        Vec::new()
    }
}

fn dedup(mut v: Vec<FnId>) -> Vec<FnId> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::summarize;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| summarize(p, s))
                .collect::<Vec<_>>(),
        )
    }

    fn fn_id(ws: &Workspace, name: &str) -> FnId {
        (0..ws.fns.len())
            .find(|&id| ws.fn_def(id).name == name)
            .unwrap()
    }

    fn callees_of(ws: &Workspace, name: &str) -> Vec<String> {
        let id = fn_id(ws, name);
        ws.edges[id]
            .iter()
            .flat_map(|(_, ts)| ts.iter().map(|&t| ws.fn_def(t).name.clone()))
            .collect()
    }

    #[test]
    fn file_module_derivation() {
        assert_eq!(
            file_modules("crates/core/src/relay/active.rs"),
            ("core".to_string(), vec!["relay".into(), "active".into()])
        );
        assert_eq!(
            file_modules("crates/sim/src/lib.rs"),
            ("sim".to_string(), vec![])
        );
        assert_eq!(
            file_modules("crates/net/src/nat/mod.rs"),
            ("net".to_string(), vec!["nat".into()])
        );
        assert_eq!(file_modules("src/lib.rs"), ("storm".to_string(), vec![]));
    }

    #[test]
    fn plain_call_resolves_same_module_then_crate() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { helper(); far(); }\nfn helper() {}\n",
            ),
            ("crates/a/src/deep.rs", "pub fn far() {}\n"),
        ]);
        assert_eq!(callees_of(&w, "caller"), ["helper", "far"]);
    }

    #[test]
    fn cross_crate_path_and_use_alias() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "use storm_b::util::remote;\nfn caller() { remote(); storm_b::util::remote(); }\n",
            ),
            ("crates/b/src/util.rs", "pub fn remote() {}\n"),
        ]);
        assert_eq!(callees_of(&w, "caller"), ["remote", "remote"]);
    }

    #[test]
    fn method_calls_are_conservative() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "struct S;\nimpl S {\n    fn go(&self) { self.own(); }\n    fn own(&self) {}\n}\nfn outside(x: &Unknown) { x.own(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "struct T;\nimpl T {\n    fn own(&self) {}\n}\n",
            ),
        ]);
        // self.own() resolves to exactly the surrounding impl's method.
        let go = fn_id(&w, "go");
        assert_eq!(w.edges[go].len(), 1);
        assert_eq!(w.edges[go][0].1.len(), 1);
        // x.own() (unknown receiver) links every impl named `own`.
        let outside = fn_id(&w, "outside");
        assert_eq!(w.edges[outside][0].1.len(), 2, "ambiguity links all");
    }

    #[test]
    fn test_fns_are_not_targets_or_sources_of_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn live() { target(); }\nfn target() {}\n#[cfg(test)]\nmod tests {\n    fn target() {}\n    fn t() { super::live(); }\n}\n",
        )]);
        let live = fn_id(&w, "live");
        assert_eq!(w.edges[live][0].1.len(), 1, "test target() not linked");
        // The test fn `t` has no outgoing edges at all.
        let t = fn_id(&w, "t");
        assert!(w.edges[t].is_empty());
    }

    #[test]
    fn super_and_crate_prefixes() {
        let w = ws(&[
            (
                "crates/a/src/sub.rs",
                "pub fn here() { crate::rooty(); super::rooty(); self::sib(); }\npub fn sib() {}\n",
            ),
            ("crates/a/src/lib.rs", "pub fn rooty() {}\n"),
        ]);
        assert_eq!(callees_of(&w, "here"), ["rooty", "rooty", "sib"]);
    }
}

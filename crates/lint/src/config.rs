//! Scope and allowlist configuration.
//!
//! The scopes are part of the invariant story, so they live in code
//! (reviewed like any other change) rather than in a config file:
//!
//! - **Determinism rules** cover every crate whose state feeds the
//!   simulation, traces or metrics.
//! - **Datapath rules** cover the modules on the relay fast path, where
//!   PR 3's `bytes_copied_per_pdu = 0` result and the no-abort
//!   guarantee are measured.

use crate::rules::Rule;

/// How a scanned file is classified. Paths are workspace-relative with
/// `/` separators (`crates/net/src/tcp.rs`).
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Short crate name: `net`, `sim`, ... (`storm` for the root crate).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// True for `src/lib.rs` of a workspace crate.
    pub is_crate_root: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path.
    pub fn from_rel_path(rel_path: &str) -> FileClass {
        let rel = rel_path.replace('\\', "/");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("storm")
            .to_string();
        let is_crate_root = rel.ends_with("src/lib.rs");
        FileClass {
            crate_name,
            rel_path: rel,
            is_crate_root,
        }
    }
}

/// Lint configuration: rule scopes and per-rule path allowlists.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose code must be deterministic (wall-clock, ambient
    /// randomness and hash-order rules).
    pub determinism_crates: Vec<String>,
    /// Individual files under determinism rules in crates that are
    /// otherwise exempt (e.g. the fleet model inside storm-bench, whose
    /// smoke binary legitimately reads wall clocks).
    pub determinism_files: Vec<String>,
    /// Path suffixes of zero-copy / no-panic datapath modules.
    pub datapath_files: Vec<String>,
    /// `(rule, path suffix)` pairs exempting whole files from a rule.
    pub allow_paths: Vec<(Rule, String)>,
    /// `(file suffix, fn name)` roots of the `no-alloc-on-datapath`
    /// rule: the hot functions from which reachable allocations are
    /// flagged. Curated rather than "every fn in a datapath file" so
    /// that constructors and setup paths stay free to allocate.
    pub alloc_roots: Vec<(String, String)>,
    /// Trait names whose impl methods root `no-blocking-in-shard`.
    pub shard_traits: Vec<String>,
    /// Files whose `pub const NAME: &str = "..."` items define the
    /// legal metric names for `metric-name-registry`.
    pub metric_name_files: Vec<String>,
    /// Extra metric names accepted by `metric-name-registry` on top of
    /// the constants harvested from `metric_name_files`. Workspace mode
    /// unions both; single-file mode (`analyze_source`) only checks the
    /// rule at all when this list is non-empty.
    pub metric_names: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            determinism_crates: [
                "sim",
                "net",
                "core",
                "cloud",
                "telemetry",
                "faults",
                "qos",
                "services",
                "nvmeq",
            ]
            .map(String::from)
            .to_vec(),
            determinism_files: ["crates/bench/src/fleet.rs"].map(String::from).to_vec(),
            datapath_files: [
                "crates/core/src/relay/active.rs",
                "crates/core/src/relay/queue.rs",
                "crates/iscsi/src/stream.rs",
                "crates/nvmeq/src/stream.rs",
                "crates/net/src/tcp.rs",
                "crates/net/src/frame.rs",
                "crates/services/src/cache.rs",
                "crates/services/src/dedup.rs",
                "crates/services/src/compress.rs",
                "crates/services/src/snapshot.rs",
            ]
            .map(String::from)
            .to_vec(),
            allow_paths: Vec::new(),
            // The curation line: these functions move bytes per PDU and
            // are allocation-free today — the rule locks that in.
            // Deliberately absent: the chain orchestrators
            // (`run_chain`, `handle_pair_data*`, `release`, ...) whose
            // contract is to *produce* new PDUs and side actions, and
            // the wire-image extractors (`take_wire`, `extract`,
            // `split_units`, `next_frame`) which return owned buffers
            // by design.
            alloc_roots: [
                ("crates/core/src/relay/active.rs", "queue_pdu"),
                ("crates/core/src/relay/queue.rs", "note_submit"),
                ("crates/core/src/relay/queue.rs", "complete"),
                ("crates/iscsi/src/stream.rs", "feed_bytes"),
                ("crates/iscsi/src/stream.rs", "push_chunk"),
                ("crates/iscsi/src/stream.rs", "peek_into"),
                ("crates/iscsi/src/stream.rs", "next_pdu"),
                ("crates/iscsi/src/stream.rs", "push_bytes"),
                ("crates/nvmeq/src/stream.rs", "feed_bytes"),
                ("crates/nvmeq/src/stream.rs", "push_chunk"),
                ("crates/nvmeq/src/stream.rs", "peek_into"),
                ("crates/net/src/tcp.rs", "send_bytes"),
                ("crates/net/src/tcp.rs", "send_chunks"),
                ("crates/net/src/tcp.rs", "input"),
                ("crates/net/src/tcp.rs", "rx_data"),
                ("crates/net/src/tcp.rs", "pump"),
                ("crates/net/src/tcp.rs", "unsent_payload"),
            ]
            .map(|(f, n)| (f.to_string(), n.to_string()))
            .to_vec(),
            shard_traits: ["ShardSim"].map(String::from).to_vec(),
            metric_name_files: ["crates/telemetry/src/names.rs"].map(String::from).to_vec(),
            metric_names: Vec::new(),
        }
    }
}

impl Config {
    /// Whether determinism rules apply to `class`.
    pub fn is_determinism_scoped(&self, class: &FileClass) -> bool {
        self.determinism_crates
            .iter()
            .any(|c| c == &class.crate_name)
            || self
                .determinism_files
                .iter()
                .any(|f| class.rel_path.ends_with(f.as_str()))
    }

    /// Whether `class` is a datapath module (zero-copy + panic rules).
    pub fn is_datapath(&self, class: &FileClass) -> bool {
        self.datapath_files
            .iter()
            .any(|f| class.rel_path.ends_with(f.as_str()))
    }

    /// Whether `rule` is allowlisted for this file by configuration.
    pub fn is_path_allowed(&self, rule: Rule, class: &FileClass) -> bool {
        self.allow_paths
            .iter()
            .any(|(r, p)| *r == rule && class.rel_path.ends_with(p.as_str()))
    }

    /// Whether `fn_name` in `rel_path` roots `no-alloc-on-datapath`.
    pub fn is_alloc_root(&self, rel_path: &str, fn_name: &str) -> bool {
        self.alloc_roots
            .iter()
            .any(|(f, n)| rel_path.ends_with(f.as_str()) && n == fn_name)
    }

    /// Whether `trait_name` roots `no-blocking-in-shard`.
    pub fn is_shard_trait(&self, trait_name: &str) -> bool {
        self.shard_traits.iter().any(|t| t == trait_name)
    }

    /// Whether `rel_path` defines the legal metric names.
    pub fn is_metric_name_file(&self, rel_path: &str) -> bool {
        self.metric_name_files
            .iter()
            .any(|f| rel_path.ends_with(f.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_and_root() {
        let c = FileClass::from_rel_path("crates/net/src/tcp.rs");
        assert_eq!(c.crate_name, "net");
        assert!(!c.is_crate_root);
        let r = FileClass::from_rel_path("crates/sim/src/lib.rs");
        assert!(r.is_crate_root);
        let top = FileClass::from_rel_path("src/lib.rs");
        assert_eq!(top.crate_name, "storm");
        assert!(top.is_crate_root);
    }

    #[test]
    fn default_scopes() {
        let cfg = Config::default();
        assert!(cfg.is_determinism_scoped(&FileClass::from_rel_path("crates/sim/src/rng.rs")));
        assert!(
            !cfg.is_determinism_scoped(&FileClass::from_rel_path("crates/workloads/src/fio.rs"))
        );
        // The fleet model is determinism-scoped by file even though the
        // rest of storm-bench (wall-clock measurement) is exempt.
        assert!(cfg.is_determinism_scoped(&FileClass::from_rel_path("crates/bench/src/fleet.rs")));
        assert!(!cfg.is_determinism_scoped(&FileClass::from_rel_path(
            "crates/bench/src/bin/bench_smoke.rs"
        )));
        assert!(cfg.is_datapath(&FileClass::from_rel_path("crates/net/src/frame.rs")));
        assert!(!cfg.is_datapath(&FileClass::from_rel_path("crates/net/src/nat.rs")));
        // The multi-queue wire path and its relay bridge are datapath;
        // the whole nvmeq crate is determinism-scoped.
        assert!(cfg.is_datapath(&FileClass::from_rel_path("crates/nvmeq/src/stream.rs")));
        assert!(cfg.is_datapath(&FileClass::from_rel_path("crates/core/src/relay/queue.rs")));
        assert!(cfg.is_determinism_scoped(&FileClass::from_rel_path("crates/nvmeq/src/codec.rs")));
    }

    #[test]
    fn path_allowlist() {
        let mut cfg = Config::default();
        cfg.allow_paths
            .push((Rule::NoPanic, "net/src/tcp.rs".to_string()));
        let c = FileClass::from_rel_path("crates/net/src/tcp.rs");
        assert!(cfg.is_path_allowed(Rule::NoPanic, &c));
        assert!(!cfg.is_path_allowed(Rule::NoHashIter, &c));
    }
}

//! The rule set: which invariants are checked, where, and how.
//!
//! Rules come in two layers:
//!
//! - **Lexical rules** match token patterns in one file. Their raw
//!   detectors (`*_hits`) report every occurrence with no scope or
//!   suppression filtering, so the same scan feeds both the per-file
//!   checker ([`check_file`]) and the interprocedural engine's per-file
//!   summaries (where hits double as taint sources).
//! - **Interprocedural rules** (`no-transitive-nondeterminism`,
//!   `no-alloc-on-datapath`, `no-blocking-in-shard`, plus `stale-allow`)
//!   need the workspace call graph and live in [`crate::taint`]; they
//!   only exist in `--workspace` mode.

use std::collections::BTreeSet;

use crate::config::{Config, FileClass};
use crate::diag::Finding;
use crate::lexer::{Lexed, TokKind};

/// Stable identifiers for every rule. These names appear in inline
/// `// storm-lint: allow(<name>)` comments, config allowlists and the
/// JSON/SARIF output, so they are part of the tool's interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Determinism: no wall-clock time sources in simulation crates.
    NoWallClock,
    /// Determinism: no ambient (OS-seeded) randomness in simulation
    /// crates.
    NoAmbientRand,
    /// Determinism: no iteration over `HashMap`/`HashSet` in simulation
    /// crates (hasher order leaks into traces and metrics).
    NoHashIter,
    /// Zero-copy: no payload copies on datapath modules.
    NoHotPathCopy,
    /// Panic hygiene: no `unwrap`/`expect`/`panic!` on datapath modules.
    NoPanic,
    /// Unsafe coverage: every crate root carries
    /// `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Interprocedural determinism: a determinism-scoped function calls
    /// (transitively) into a wall-clock / ambient-randomness /
    /// hash-order source outside the scoped file set.
    NoTransitiveNondeterminism,
    /// Interprocedural zero-alloc: a hot datapath function reaches an
    /// allocation (`Vec`/`Box`/`String` growth) through its callees.
    NoAllocOnDatapath,
    /// Interprocedural executor safety: a `ShardSim` implementation
    /// reaches `thread::sleep` / blocking `lock()` / channel `recv()`.
    NoBlockingInShard,
    /// Metric hygiene: string literals passed to the metrics registry
    /// must match a constant exported from `storm_telemetry::names`.
    MetricNameRegistry,
    /// Escape hygiene: an inline `storm-lint: allow(...)` that no
    /// longer suppresses any finding.
    StaleAllow,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::NoWallClock,
    Rule::NoAmbientRand,
    Rule::NoHashIter,
    Rule::NoHotPathCopy,
    Rule::NoPanic,
    Rule::ForbidUnsafe,
    Rule::NoTransitiveNondeterminism,
    Rule::NoAllocOnDatapath,
    Rule::NoBlockingInShard,
    Rule::MetricNameRegistry,
    Rule::StaleAllow,
];

impl Rule {
    /// The rule's stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoAmbientRand => "no-ambient-rand",
            Rule::NoHashIter => "no-hash-iter",
            Rule::NoHotPathCopy => "no-hot-path-copy",
            Rule::NoPanic => "no-panic",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::NoTransitiveNondeterminism => "no-transitive-nondeterminism",
            Rule::NoAllocOnDatapath => "no-alloc-on-datapath",
            Rule::NoBlockingInShard => "no-blocking-in-shard",
            Rule::MetricNameRegistry => "metric-name-registry",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// The remediation hint attached to every finding of this rule.
    pub fn suggestion(self) -> &'static str {
        match self {
            Rule::NoWallClock => {
                "use the simulated clock (storm_sim::SimTime / Cx::now()); wall-clock time \
                 makes runs irreproducible"
            }
            Rule::NoAmbientRand => {
                "draw randomness from the experiment's seeded storm_sim::SimRng (fork() for \
                 independent streams)"
            }
            Rule::NoHashIter => {
                "switch the container to BTreeMap/BTreeSet, or collect and sort before \
                 iterating; hasher order must not reach traces or metrics"
            }
            Rule::NoHotPathCopy => {
                "keep payloads as refcounted Bytes (slice()/try_join()/WireChunks); if the \
                 copy is a counted slow path, annotate it with an allow comment stating why"
            }
            Rule::NoPanic => {
                "return a typed error (PduError/RelayError) or restructure with if-let so the \
                 invariant failure degrades instead of aborting the relay"
            }
            Rule::ForbidUnsafe => "add `#![forbid(unsafe_code)]` to the crate root",
            Rule::NoTransitiveNondeterminism => {
                "the callee (transitively) reaches a nondeterministic source; thread the \
                 simulated clock / seeded rng through its arguments, or allow at the call \
                 site with a justification"
            }
            Rule::NoAllocOnDatapath => {
                "hot-path I/O must reuse pooled buffers and refcounted Bytes; hoist the \
                 allocation to setup or a counted slow path, or allow with a justification"
            }
            Rule::NoBlockingInShard => {
                "ShardSim handlers run inside the conservative-lookahead executor; blocking \
                 stalls the whole lane — use try_ variants or route through the event queue"
            }
            Rule::MetricNameRegistry => {
                "use the constants exported from storm_telemetry::names; a typo'd literal \
                 silently splits the metric series"
            }
            Rule::StaleAllow => {
                "this allow no longer suppresses any finding; delete the comment (or fix its \
                 rule name) so unused escapes cannot hide regressions"
            }
        }
    }

    /// Parses a rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }
}

/// One raw lexical hit: a source location plus a short backticked
/// description (`what`, used as the final frame of taint chains) and the
/// full finding message. Raw hits carry no scope or suppression
/// decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short description, e.g. `` `Instant` `` or `` `.to_vec()` ``.
    pub what: String,
    /// Full finding message.
    pub message: String,
}

impl Hit {
    fn new(line: u32, col: u32, what: String, message: String) -> Hit {
        Hit {
            line,
            col,
            what,
            message,
        }
    }
}

/// Iterator-producing methods whose order depends on the hasher.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_values",
];

/// Wall-clock identifiers (matched as whole identifiers only, never in
/// strings or comments).
const WALL_CLOCK_IDENTS: [&str; 2] = ["SystemTime", "Instant"];

/// Ambient-randomness identifiers.
const AMBIENT_RAND_IDENTS: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "from_os_rng"];

/// Copying calls banned on datapath modules.
const COPY_IDENTS: [&str; 4] = ["to_vec", "to_owned", "copy_from_slice", "extend_from_slice"];

/// Panicking calls banned on datapath modules. The macro set covers the
/// `name!` form; `unwrap`/`expect` cover the method form.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Allocating method calls (taint sources for `no-alloc-on-datapath`).
const ALLOC_METHODS: [&str; 7] = [
    "to_vec",
    "to_owned",
    "to_string",
    "push_str",
    "extend_from_slice",
    "into_owned",
    "collect",
];

/// Allocating `Type::method` path calls.
const ALLOC_PATHS: [(&str, &str); 7] = [
    ("Box", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("VecDeque", "with_capacity"),
    ("BytesMut", "with_capacity"),
];

/// Allocating macros (`name!`).
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Blocking method calls (taint sources for `no-blocking-in-shard`).
const BLOCKING_METHODS: [&str; 5] = ["lock", "recv", "recv_timeout", "wait", "wait_timeout"];

/// Blocking `thread::x` path calls.
const BLOCKING_THREAD_FNS: [&str; 2] = ["sleep", "park"];

/// Registry methods whose first string-literal argument is a metric
/// name; `tenant_scoped` is the free-function form.
const METRIC_METHODS: [&str; 8] = [
    "inc",
    "observe",
    "set_gauge",
    "merge_histogram",
    "counter",
    "gauge",
    "histogram",
    "tenant_scoped",
];

/// Runs every applicable rule over one lexed file.
///
/// This is the single-file (lexical) layer; interprocedural rules need
/// the whole workspace and are evaluated in [`crate::taint`]. The
/// metric-name rule only fires here when `cfg.metric_names` is
/// populated (in workspace mode the engine harvests the registry
/// constants itself).
pub fn check_file(class: &FileClass, lexed: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    let deterministic = cfg.is_determinism_scoped(class);
    let datapath = cfg.is_datapath(class);

    if deterministic {
        for h in wall_clock_hits(lexed) {
            emit(Rule::NoWallClock, class, lexed, cfg, h, out);
        }
        for h in ambient_rand_hits(lexed) {
            emit(Rule::NoAmbientRand, class, lexed, cfg, h, out);
        }
        for h in hash_iter_hits(lexed) {
            emit(Rule::NoHashIter, class, lexed, cfg, h, out);
        }
    }
    if datapath {
        for h in hot_path_copy_hits(lexed) {
            emit(Rule::NoHotPathCopy, class, lexed, cfg, h, out);
        }
        for h in panic_hits(lexed) {
            emit(Rule::NoPanic, class, lexed, cfg, h, out);
        }
    }
    if !cfg.metric_names.is_empty() {
        for (method, value, line, col) in metric_call_literals(lexed) {
            if !cfg.metric_names.iter().any(|n| n == &value) {
                let h = Hit::new(
                    line,
                    col,
                    format!("\"{value}\""),
                    metric_message(&method, &value),
                );
                emit(Rule::MetricNameRegistry, class, lexed, cfg, h, out);
            }
        }
    }
    if class.is_crate_root {
        check_forbid_unsafe(class, lexed, cfg, out);
    }
}

/// The message for a metric-name finding (shared with workspace mode).
pub fn metric_message(method: &str, value: &str) -> String {
    format!(
        "metric literal \"{value}\" passed to `{method}` is not a name exported from \
         storm_telemetry::names"
    )
}

/// Pushes a finding unless the site is in test code, inline-allowed, or
/// the file is on the rule's config allowlist.
fn emit(
    rule: Rule,
    class: &FileClass,
    lexed: &Lexed,
    cfg: &Config,
    hit: Hit,
    out: &mut Vec<Finding>,
) {
    if lexed.in_test(hit.line) {
        return;
    }
    if lexed.allowed(rule.name(), hit.line) {
        return;
    }
    if cfg.is_path_allowed(rule, class) {
        return;
    }
    out.push(Finding {
        rule: rule.name(),
        file: class.rel_path.clone(),
        line: hit.line,
        col: hit.col,
        message: hit.message,
        suggestion: rule.suggestion(),
        chain: Vec::new(),
    });
}

/// Raw wall-clock hits: `SystemTime` / `Instant` / `std::time`.
pub fn wall_clock_hits(lx: &Lexed) -> Vec<Hit> {
    let mut out = Vec::new();
    for (i, t) in lx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            out.push(Hit::new(
                t.line,
                t.col,
                format!("`{}`", t.text),
                format!("wall-clock type `{}` in deterministic code", t.text),
            ));
        }
        // `std :: time` path segment.
        if t.is_ident("std")
            && lx.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 3).is_some_and(|t| t.is_ident("time"))
        {
            out.push(Hit::new(
                t.line,
                t.col,
                "`std::time`".to_string(),
                "`std::time` in deterministic code".to_string(),
            ));
        }
    }
    out
}

/// Raw ambient-randomness hits.
pub fn ambient_rand_hits(lx: &Lexed) -> Vec<Hit> {
    let mut out = Vec::new();
    for (i, t) in lx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if AMBIENT_RAND_IDENTS.contains(&t.text.as_str()) {
            out.push(Hit::new(
                t.line,
                t.col,
                format!("`{}`", t.text),
                format!("ambient randomness source `{}`", t.text),
            ));
        }
        // `rand :: random` free function (the seeded `SimRng::random`
        // method is fine; only the ambient path-form is flagged).
        if t.is_ident("rand")
            && lx.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            out.push(Hit::new(
                t.line,
                t.col,
                "`rand::random`".to_string(),
                "`rand::random` draws from the ambient thread RNG".to_string(),
            ));
        }
    }
    out
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file:
/// struct fields and annotated bindings (`name: HashMap<..>`, possibly
/// behind `&`/`&mut`), plus `let name = HashMap::new()`-style inits.
fn hash_bound_names(lx: &Lexed) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let toks = &lx.toks;
    let is_hash = |i: usize| {
        toks.get(i)
            .is_some_and(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
    };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name :` [&] [mut] [std :: collections ::] HashMap
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut j = i + 2;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            // Skip a fully qualified `std :: collections ::` prefix.
            while toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                && !is_hash(j)
            {
                j += 3;
            }
            if is_hash(j) {
                names.insert(toks[i].text.clone());
            }
        }
        // `let [mut] name = [prefix ::] HashMap :: new ( ... )`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            let mut k = j + 2;
            while toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && !is_hash(k)
            {
                k += 3;
            }
            if is_hash(k) {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

/// Raw hasher-order iteration hits.
pub fn hash_iter_hits(lx: &Lexed) -> Vec<Hit> {
    let mut out = Vec::new();
    let tracked = hash_bound_names(lx);
    if tracked.is_empty() {
        return out;
    }
    let toks = &lx.toks;
    for i in 0..toks.len() {
        // `name . iter ( ... )` — also matches `self.name.iter()` since
        // the receiver identifier sits directly before the dot.
        if toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && tracked.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(Hit::new(
                toks[i].line,
                toks[i].col,
                format!("`{}.{}()`", toks[i - 2].text, toks[i].text),
                format!(
                    "hasher-order iteration: `{}.{}()` on a HashMap/HashSet",
                    toks[i - 2].text,
                    toks[i].text
                ),
            ));
        }
        // `for pat in <expr ending in a tracked name> {`
        if toks[i].is_ident("for") && !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            let mut j = i + 1;
            let mut found_in = None;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_ident("in") {
                    found_in = Some(j);
                }
                j += 1;
            }
            let (Some(in_idx), true) = (found_in, j < toks.len()) else {
                continue;
            };
            // The last identifier of the iterated expression.
            let last_ident = toks[in_idx + 1..j]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident);
            if let Some(t) = last_ident {
                if tracked.contains(&t.text) {
                    out.push(Hit::new(
                        t.line,
                        t.col,
                        format!("`for .. in {}`", t.text),
                        format!("hasher-order iteration: `for .. in {}`", t.text),
                    ));
                }
            }
        }
    }
    out
}

/// Raw payload-copy hits.
pub fn hot_path_copy_hits(lx: &Lexed) -> Vec<Hit> {
    let mut out = Vec::new();
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !COPY_IDENTS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let method = i >= 1 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'));
        if called && method {
            out.push(Hit::new(
                toks[i].line,
                toks[i].col,
                format!("`.{}()`", toks[i].text),
                format!("payload copy `{}()` on a zero-copy datapath", toks[i].text),
            ));
        }
    }
    out
}

/// Raw panic hits (`.unwrap()` / `panic!` forms).
pub fn panic_hits(lx: &Lexed) -> Vec<Hit> {
    let mut out = Vec::new();
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if PANIC_METHODS.contains(&name)
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(Hit::new(
                toks[i].line,
                toks[i].col,
                format!("`.{name}()`"),
                format!("`.{name}()` can abort the datapath"),
            ));
        }
        if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(Hit::new(
                toks[i].line,
                toks[i].col,
                format!("`{name}!`"),
                format!("`{name}!` can abort the datapath"),
            ));
        }
    }
    out
}

/// Raw allocation hits: growth/box methods, allocating `Type::method`
/// constructors and `vec!`/`format!` macros. Only used as taint sources
/// for `no-alloc-on-datapath` (there is no file-scoped alloc rule).
pub fn alloc_hits(lx: &Lexed) -> Vec<Hit> {
    let mut out = Vec::new();
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if ALLOC_METHODS.contains(&name)
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(Hit::new(
                toks[i].line,
                toks[i].col,
                format!("`.{name}()`"),
                format!("allocating call `.{name}()`"),
            ));
        }
        if ALLOC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(Hit::new(
                toks[i].line,
                toks[i].col,
                format!("`{name}!`"),
                format!("allocating macro `{name}!`"),
            ));
        }
        // `Type :: method (`
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            if let Some(m) = toks.get(i + 3).filter(|t| t.kind == TokKind::Ident) {
                if ALLOC_PATHS.contains(&(name, m.text.as_str())) {
                    out.push(Hit::new(
                        toks[i].line,
                        toks[i].col,
                        format!("`{}::{}`", name, m.text),
                        format!("allocating constructor `{}::{}`", name, m.text),
                    ));
                }
            }
        }
    }
    out
}

/// Raw blocking hits: `thread::sleep`/`thread::park`, blocking
/// `lock()`/`recv()`/`wait()` method calls. Only used as taint sources
/// for `no-blocking-in-shard`.
pub fn blocking_hits(lx: &Lexed) -> Vec<Hit> {
    let mut out = Vec::new();
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if BLOCKING_METHODS.contains(&name)
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(Hit::new(
                toks[i].line,
                toks[i].col,
                format!("`.{name}()`"),
                format!("blocking call `.{name}()`"),
            ));
        }
        // `thread :: sleep (` / `thread :: park (`
        if toks[i].is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            if let Some(m) = toks.get(i + 3).filter(|t| t.kind == TokKind::Ident) {
                if BLOCKING_THREAD_FNS.contains(&m.text.as_str()) {
                    out.push(Hit::new(
                        toks[i].line,
                        toks[i].col,
                        format!("`thread::{}`", m.text),
                        format!("blocking call `thread::{}`", m.text),
                    ));
                }
            }
        }
    }
    out
}

/// String literals passed as the first argument to a metrics-registry
/// method (`reg.inc("...")`, `names::tenant_scoped("...", id)`).
/// Returns `(method, literal value, line, col)` per site, including
/// test code (the caller filters).
pub fn metric_call_literals(lx: &Lexed) -> Vec<(String, String, u32, u32)> {
    let mut out = Vec::new();
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !METRIC_METHODS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let is_method = i >= 1 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'));
        if toks[i].text != "tenant_scoped" && !is_method {
            continue; // bare `inc(...)` is some other function
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if let Some(lit) = toks.get(i + 2).filter(|t| t.kind == TokKind::Str) {
            out.push((toks[i].text.clone(), lit.text.clone(), lit.line, lit.col));
        }
    }
    out
}

/// Whether the file carries `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(lx: &Lexed) -> bool {
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
        {
            return true;
        }
    }
    false
}

fn check_forbid_unsafe(class: &FileClass, lx: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    if !has_forbid_unsafe(lx) {
        // Bypass the test-range check: this is a file-level property.
        if !cfg.is_path_allowed(Rule::ForbidUnsafe, class) && !lx.allowed("forbid-unsafe", 1) {
            out.push(Finding {
                rule: Rule::ForbidUnsafe.name(),
                file: class.rel_path.clone(),
                line: 1,
                col: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                suggestion: Rule::ForbidUnsafe.suggestion(),
                chain: Vec::new(),
            });
        }
    }
}

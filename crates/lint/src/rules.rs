//! The rule set: which invariants are checked, where, and how.

use std::collections::BTreeSet;

use crate::config::{Config, FileClass};
use crate::diag::Finding;
use crate::lexer::{Lexed, TokKind};

/// Stable identifiers for every rule. These names appear in inline
/// `// storm-lint: allow(<name>)` comments, config allowlists and the
/// JSON output, so they are part of the tool's interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Determinism: no wall-clock time sources in simulation crates.
    NoWallClock,
    /// Determinism: no ambient (OS-seeded) randomness in simulation
    /// crates.
    NoAmbientRand,
    /// Determinism: no iteration over `HashMap`/`HashSet` in simulation
    /// crates (hasher order leaks into traces and metrics).
    NoHashIter,
    /// Zero-copy: no payload copies on datapath modules.
    NoHotPathCopy,
    /// Panic hygiene: no `unwrap`/`expect`/`panic!` on datapath modules.
    NoPanic,
    /// Unsafe coverage: every crate root carries
    /// `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::NoWallClock,
    Rule::NoAmbientRand,
    Rule::NoHashIter,
    Rule::NoHotPathCopy,
    Rule::NoPanic,
    Rule::ForbidUnsafe,
];

impl Rule {
    /// The rule's stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoAmbientRand => "no-ambient-rand",
            Rule::NoHashIter => "no-hash-iter",
            Rule::NoHotPathCopy => "no-hot-path-copy",
            Rule::NoPanic => "no-panic",
            Rule::ForbidUnsafe => "forbid-unsafe",
        }
    }

    /// The remediation hint attached to every finding of this rule.
    pub fn suggestion(self) -> &'static str {
        match self {
            Rule::NoWallClock => {
                "use the simulated clock (storm_sim::SimTime / Cx::now()); wall-clock time \
                 makes runs irreproducible"
            }
            Rule::NoAmbientRand => {
                "draw randomness from the experiment's seeded storm_sim::SimRng (fork() for \
                 independent streams)"
            }
            Rule::NoHashIter => {
                "switch the container to BTreeMap/BTreeSet, or collect and sort before \
                 iterating; hasher order must not reach traces or metrics"
            }
            Rule::NoHotPathCopy => {
                "keep payloads as refcounted Bytes (slice()/try_join()/WireChunks); if the \
                 copy is a counted slow path, annotate it with an allow comment stating why"
            }
            Rule::NoPanic => {
                "return a typed error (PduError/RelayError) or restructure with if-let so the \
                 invariant failure degrades instead of aborting the relay"
            }
            Rule::ForbidUnsafe => "add `#![forbid(unsafe_code)]` to the crate root",
        }
    }

    /// Parses a rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }
}

/// Iterator-producing methods whose order depends on the hasher.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_values",
];

/// Wall-clock identifiers (matched as whole identifiers only, never in
/// strings or comments).
const WALL_CLOCK_IDENTS: [&str; 2] = ["SystemTime", "Instant"];

/// Ambient-randomness identifiers.
const AMBIENT_RAND_IDENTS: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "from_os_rng"];

/// Copying calls banned on datapath modules.
const COPY_IDENTS: [&str; 4] = ["to_vec", "to_owned", "copy_from_slice", "extend_from_slice"];

/// Panicking calls banned on datapath modules. The macro set covers the
/// `name!` form; `unwrap`/`expect` cover the method form.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs every applicable rule over one lexed file.
pub fn check_file(class: &FileClass, lexed: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    let deterministic = cfg.is_determinism_scoped(class);
    let datapath = cfg.is_datapath(class);

    if deterministic {
        check_wall_clock(class, lexed, cfg, out);
        check_ambient_rand(class, lexed, cfg, out);
        check_hash_iter(class, lexed, cfg, out);
    }
    if datapath {
        check_hot_path_copy(class, lexed, cfg, out);
        check_panic(class, lexed, cfg, out);
    }
    if class.is_crate_root {
        check_forbid_unsafe(class, lexed, cfg, out);
    }
}

/// Pushes a finding unless the site is in test code, inline-allowed, or
/// the file is on the rule's config allowlist.
#[allow(clippy::too_many_arguments)]
fn emit(
    rule: Rule,
    class: &FileClass,
    lexed: &Lexed,
    cfg: &Config,
    line: u32,
    col: u32,
    message: String,
    out: &mut Vec<Finding>,
) {
    if lexed.in_test(line) {
        return;
    }
    if lexed.allowed(rule.name(), line) {
        return;
    }
    if cfg.is_path_allowed(rule, class) {
        return;
    }
    out.push(Finding {
        rule: rule.name(),
        file: class.rel_path.clone(),
        line,
        col,
        message,
        suggestion: rule.suggestion(),
    });
}

fn check_wall_clock(class: &FileClass, lx: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    for (i, t) in lx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            emit(
                Rule::NoWallClock,
                class,
                lx,
                cfg,
                t.line,
                t.col,
                format!("wall-clock type `{}` in deterministic code", t.text),
                out,
            );
        }
        // `std :: time` path segment.
        if t.is_ident("std")
            && lx.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 3).is_some_and(|t| t.is_ident("time"))
        {
            emit(
                Rule::NoWallClock,
                class,
                lx,
                cfg,
                t.line,
                t.col,
                "`std::time` in deterministic code".to_string(),
                out,
            );
        }
    }
}

fn check_ambient_rand(class: &FileClass, lx: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    for (i, t) in lx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if AMBIENT_RAND_IDENTS.contains(&t.text.as_str()) {
            emit(
                Rule::NoAmbientRand,
                class,
                lx,
                cfg,
                t.line,
                t.col,
                format!("ambient randomness source `{}`", t.text),
                out,
            );
        }
        // `rand :: random` free function (the seeded `SimRng::random`
        // method is fine; only the ambient path-form is flagged).
        if t.is_ident("rand")
            && lx.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && lx.toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            emit(
                Rule::NoAmbientRand,
                class,
                lx,
                cfg,
                t.line,
                t.col,
                "`rand::random` draws from the ambient thread RNG".to_string(),
                out,
            );
        }
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file:
/// struct fields and annotated bindings (`name: HashMap<..>`, possibly
/// behind `&`/`&mut`), plus `let name = HashMap::new()`-style inits.
fn hash_bound_names(lx: &Lexed) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let toks = &lx.toks;
    let is_hash = |i: usize| {
        toks.get(i)
            .is_some_and(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
    };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name :` [&] [mut] [std :: collections ::] HashMap
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut j = i + 2;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            // Skip a fully qualified `std :: collections ::` prefix.
            while toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                && !is_hash(j)
            {
                j += 3;
            }
            if is_hash(j) {
                names.insert(toks[i].text.clone());
            }
        }
        // `let [mut] name = [prefix ::] HashMap :: new ( ... )`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            let mut k = j + 2;
            while toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && !is_hash(k)
            {
                k += 3;
            }
            if is_hash(k) {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

fn check_hash_iter(class: &FileClass, lx: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    let tracked = hash_bound_names(lx);
    if tracked.is_empty() {
        return;
    }
    let toks = &lx.toks;
    for i in 0..toks.len() {
        // `name . iter ( ... )` — also matches `self.name.iter()` since
        // the receiver identifier sits directly before the dot.
        if toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && tracked.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            emit(
                Rule::NoHashIter,
                class,
                lx,
                cfg,
                toks[i].line,
                toks[i].col,
                format!(
                    "hasher-order iteration: `{}.{}()` on a HashMap/HashSet",
                    toks[i - 2].text,
                    toks[i].text
                ),
                out,
            );
        }
        // `for pat in <expr ending in a tracked name> {`
        if toks[i].is_ident("for") && !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            let mut j = i + 1;
            let mut found_in = None;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_ident("in") {
                    found_in = Some(j);
                }
                j += 1;
            }
            let (Some(in_idx), true) = (found_in, j < toks.len()) else {
                continue;
            };
            // The last identifier of the iterated expression.
            let last_ident = toks[in_idx + 1..j]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident);
            if let Some(t) = last_ident {
                if tracked.contains(&t.text) {
                    emit(
                        Rule::NoHashIter,
                        class,
                        lx,
                        cfg,
                        t.line,
                        t.col,
                        format!("hasher-order iteration: `for .. in {}`", t.text),
                        out,
                    );
                }
            }
        }
    }
}

fn check_hot_path_copy(class: &FileClass, lx: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !COPY_IDENTS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let method = i >= 1 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'));
        if called && method {
            emit(
                Rule::NoHotPathCopy,
                class,
                lx,
                cfg,
                toks[i].line,
                toks[i].col,
                format!("payload copy `{}()` on a zero-copy datapath", toks[i].text),
                out,
            );
        }
    }
}

fn check_panic(class: &FileClass, lx: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if PANIC_METHODS.contains(&name)
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            emit(
                Rule::NoPanic,
                class,
                lx,
                cfg,
                toks[i].line,
                toks[i].col,
                format!("`.{name}()` can abort the datapath"),
                out,
            );
        }
        if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            emit(
                Rule::NoPanic,
                class,
                lx,
                cfg,
                toks[i].line,
                toks[i].col,
                format!("`{name}!` can abort the datapath"),
                out,
            );
        }
    }
}

fn check_forbid_unsafe(class: &FileClass, lx: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    let mut found = false;
    for i in 0..toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
        {
            found = true;
            break;
        }
    }
    if !found {
        // Bypass the test-range check: this is a file-level property.
        if !cfg.is_path_allowed(Rule::ForbidUnsafe, class) && !lx.allowed("forbid-unsafe", 1) {
            out.push(Finding {
                rule: Rule::ForbidUnsafe.name(),
                file: class.rel_path.clone(),
                line: 1,
                col: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                suggestion: Rule::ForbidUnsafe.suggestion(),
            });
        }
    }
}

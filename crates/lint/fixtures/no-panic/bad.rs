pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn must(flag: bool) {
    if !flag {
        panic!("invariant violated");
    }
}

pub fn first(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

pub fn checked(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // storm-lint: allow(no-panic): guarded by the assert above
    *v.first().unwrap()
}

pub fn flatten(chunks: &[&[u8]]) -> Vec<u8> {
    let mut flat = Vec::new();
    for c in chunks {
        flat.extend_from_slice(c);
    }
    flat
}

pub fn dup(payload: &[u8]) -> Vec<u8> {
    payload.to_vec()
}

use bytes::Bytes;

pub fn split(payload: &Bytes, at: usize) -> (Bytes, Bytes) {
    (payload.slice(..at), payload.slice(at..))
}

pub fn snapshot(payload: &[u8]) -> Vec<u8> {
    // storm-lint: allow(no-hot-path-copy): counted slow path; the
    // copy is attributed to bytes_copied in the relay metrics
    payload.to_vec()
}

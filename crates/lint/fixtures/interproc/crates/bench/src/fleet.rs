//! Shard fixture: a `ShardSim` method reaching a blocking call through
//! a helper.

pub struct FleetShard;

impl ShardSim for FleetShard {
    fn deliver(&mut self, now_us: u64) {
        drain(now_us);
    }
}

fn drain(_now_us: u64) {
    let _guard = QUEUE_LOCK.lock();
}

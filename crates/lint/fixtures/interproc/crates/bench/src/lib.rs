#![forbid(unsafe_code)]

pub mod fleet;

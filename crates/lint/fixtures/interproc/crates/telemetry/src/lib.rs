#![forbid(unsafe_code)]

pub mod names;

/// The first two calls are legal (constant / registered literal); the
/// third literal has a typo and must be flagged.
pub fn record(reg: &mut Registry) {
    reg.inc(names::RELAY_PDUS_TOTAL, 1);
    reg.inc("storm_shard_events_total", 1);
    reg.inc("storm_relay_pdus_totl", 1);
}

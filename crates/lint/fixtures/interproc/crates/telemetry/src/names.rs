//! The metric-name registry the fixture's literals are checked against.

pub const RELAY_PDUS_TOTAL: &str = "storm_relay_pdus_total";
pub const SHARD_EVENTS_TOTAL: &str = "storm_shard_events_total";

#![forbid(unsafe_code)]

pub mod tcp;

//! Hot-path fixture: `pump` is a curated `no-alloc-on-datapath` root.

pub struct Conn;

impl Conn {
    /// One direct allocation and one reached through a helper.
    pub fn pump(&mut self) {
        let _header = vec![0u8; 4];
        self.log_drop();
    }

    fn log_drop(&self) {
        let _msg = format!("drop");
    }
}

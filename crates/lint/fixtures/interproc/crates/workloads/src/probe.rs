//! Helpers the scoped crate reaches into.

/// Middle frame of the two-hop chain.
pub fn sample() {
    leaf();
}

/// The actual source.
pub fn leaf() {
    let _t = Instant::now();
}

pub struct Gauge;

pub trait Sampler {
    fn read(&self);
}

impl Sampler for Gauge {
    fn read(&self) {
        let _t = SystemTime::now();
    }
}

/// Setup path: the allow below covers the tainted call, so scoped
/// callers of `cold_init` stay quiet and the allow counts as used.
pub fn cold_init() {
    // storm-lint: allow(no-transitive-nondeterminism): one-shot setup, not replayed
    leaf();
}

pub mod disk {
    /// The tainted one of the two `latency` candidates.
    pub fn latency() {
        let _t = Instant::now();
    }
}

pub mod nic {
    pub fn latency() {}
}

/// `latency()` is ambiguous between `disk` and `nic`; the resolver
/// links both, so the taint from `disk::latency` flows here.
pub fn scan() {
    latency();
}

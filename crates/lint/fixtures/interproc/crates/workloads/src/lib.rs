//! Unscoped helper crate: wall-clock use is legal here, but scoped
//! callers reaching it transitively are not.
#![forbid(unsafe_code)]

pub mod probe;

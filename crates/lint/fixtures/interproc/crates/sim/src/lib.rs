//! Determinism-scoped crate of the fixture workspace: every call that
//! leaves it toward a tainted helper must be flagged at the boundary.
#![forbid(unsafe_code)]

/// Two-hop taint: `tick -> sample -> leaf -> Instant::now()`.
pub fn tick() {
    storm_workloads::probe::sample();
}

/// Trait-method dispatch: `read` resolves to the `Sampler` impl.
pub fn observe(gauge: &storm_workloads::probe::Gauge) {
    gauge.read();
}

/// Ambiguous plain-name resolution inside the helper crate must be
/// linked conservatively, so this still reports.
pub fn audit() {
    storm_workloads::probe::scan();
}

/// The helper carries an inline allow on its own tainted call, which
/// silences the whole chain from here.
pub fn setup() {
    storm_workloads::probe::cold_init();
}

// storm-lint: allow(no-hash-iter): leftover escape, nothing here iterates
pub fn quiet() {}

use std::collections::HashMap;

pub fn total(busy: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_, v) in busy.iter() {
        sum += v;
    }
    sum
}

pub fn names(set: &std::collections::HashSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for k in set {
        out.push(k.clone());
    }
    out
}

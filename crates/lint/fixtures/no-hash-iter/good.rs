use std::collections::BTreeMap;

pub fn total(busy: &BTreeMap<String, u64>) -> u64 {
    busy.values().sum()
}

use std::collections::HashMap;

pub fn count(m: &HashMap<u32, u32>) -> u32 {
    // storm-lint: allow(no-hash-iter): order-insensitive fold
    m.values().sum()
}

pub fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.gen_range(0..1000)
}

pub fn coin() -> bool {
    rand::random()
}

pub fn entropy_probe() -> u64 {
    // storm-lint: allow(no-ambient-rand): diagnostic CLI only, not
    // part of any simulated experiment
    let mut rng = thread_rng();
    rng.next_u64()
}

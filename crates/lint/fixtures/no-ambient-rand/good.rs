pub fn jitter(rng: &mut storm_sim::SimRng) -> u64 {
    rng.next_u64() % 1000
}

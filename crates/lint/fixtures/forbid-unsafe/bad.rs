//! A crate root without the unsafe guard.

pub fn noop() {}

// storm-lint: allow(forbid-unsafe): FFI shim crate with audited unsafe
pub fn noop() {}

//! A crate root carrying the guard.

#![forbid(unsafe_code)]

pub fn noop() {}

use std::collections::HashMap;

pub fn mix(m: &HashMap<u32, u32>) -> u64 {
    let t = std::time::Instant::now();
    let r: u32 = rand::random();
    let mut total = u64::from(r);
    for v in m.values() {
        total += u64::from(*v);
    }
    total + t.elapsed().as_nanos() as u64
}

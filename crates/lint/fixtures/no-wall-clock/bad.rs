use std::time::{Duration, Instant};

pub fn stamp() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

pub fn stamp(now_nanos: u64, start_nanos: u64) -> u64 {
    now_nanos.saturating_sub(start_nanos)
}

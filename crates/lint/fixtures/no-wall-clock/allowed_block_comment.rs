// Regression: the allow must stay in force across the multi-line block
// comment between it and the code line (the lexer once recorded only
// the first line of a block comment, breaking the walk).
pub fn stamp() -> u64 {
    // storm-lint: allow(no-wall-clock): epoch header stamp, reviewed
    /* the stamp is cosmetic: replay ignores it
       and the value never feeds simulation state */
    let _secs = SystemTime::now();
    0
}

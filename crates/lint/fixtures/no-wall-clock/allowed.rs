pub fn boot_banner() -> String {
    // storm-lint: allow(no-wall-clock): one-time boot banner; never
    // reaches traces or metrics
    let t = std::time::SystemTime::now();
    format!("{t:?}")
}

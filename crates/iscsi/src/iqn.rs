//! iSCSI qualified names.

use std::fmt;

/// An iSCSI qualified name (`iqn.YYYY-MM.reversed.domain:identifier`).
///
/// Connection attribution (paper §III-A) starts from "the virtual block
/// devices (also known as IQN numbers) that are attached to a tenant VM".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iqn(String);

impl Iqn {
    /// Parses and validates an IQN string.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it does not start with `iqn.` or
    /// lacks the date/domain structure.
    pub fn parse(s: impl Into<String>) -> Result<Iqn, String> {
        let s = s.into();
        let Some(rest) = s.strip_prefix("iqn.") else {
            return Err(s);
        };
        // Expect YYYY-MM. prefix.
        let mut parts = rest.splitn(2, '.');
        let date = parts.next().unwrap_or_default();
        let domain = parts.next().unwrap_or_default();
        let date_ok = date.len() == 7
            && date.as_bytes()[4] == b'-'
            && date[..4].bytes().all(|b| b.is_ascii_digit())
            && date[5..].bytes().all(|b| b.is_ascii_digit());
        if !date_ok || domain.is_empty() {
            return Err(s);
        }
        Ok(Iqn(s))
    }

    /// Builds the conventional volume IQN used by the Cinder-like service:
    /// `iqn.2016-04.org.storm:volume-<id>`.
    pub fn for_volume(volume_id: u32) -> Iqn {
        Iqn(format!("iqn.2016-04.org.storm:volume-{volume_id}"))
    }

    /// Builds an initiator IQN for a compute host.
    pub fn for_host(host_name: &str) -> Iqn {
        Iqn(format!("iqn.2016-04.org.storm:host-{host_name}"))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Iqn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Iqn {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_iqns() {
        let iqn = Iqn::parse("iqn.2016-04.org.storm:volume-7").unwrap();
        assert_eq!(iqn.as_str(), "iqn.2016-04.org.storm:volume-7");
        assert_eq!(iqn.to_string(), iqn.as_str());
        assert!(Iqn::parse("iqn.2001-04.com.example").is_ok());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Iqn::parse("eui.02004567A425678D").is_err());
        assert!(Iqn::parse("iqn.20x6-04.org.storm").is_err());
        assert!(Iqn::parse("iqn.2016-04").is_err());
        assert!(Iqn::parse("").is_err());
    }

    #[test]
    fn constructors_produce_valid_names() {
        assert!(Iqn::parse(Iqn::for_volume(3).as_str()).is_ok());
        assert!(Iqn::parse(Iqn::for_host("compute1").as_str()).is_ok());
        assert_ne!(Iqn::for_volume(1), Iqn::for_volume(2));
    }
}

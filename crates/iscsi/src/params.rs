//! Session parameter negotiation (login key=value text).

use std::collections::BTreeMap;

/// Negotiated session parameters.
///
/// Defaults follow what an Open-iSCSI ↔ LIO pairing typically settles on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionParams {
    /// Largest data segment either side will send in one PDU.
    pub max_recv_data_segment_length: u32,
    /// Largest total transfer per R2T sequence.
    pub max_burst_length: u32,
    /// Largest unsolicited (immediate + first burst) write transfer.
    pub first_burst_length: u32,
    /// Whether the target requires an R2T before any solicited data.
    pub initial_r2t: bool,
    /// Whether write data may ride along with the SCSI command PDU.
    pub immediate_data: bool,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            // LIO's default MaxRecvDataSegmentLength.
            max_recv_data_segment_length: 8192,
            max_burst_length: 256 * 1024,
            first_burst_length: 64 * 1024,
            initial_r2t: false,
            immediate_data: true,
        }
    }
}

impl SessionParams {
    /// Serializes to login text keys.
    pub fn to_keys(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert(
            "MaxRecvDataSegmentLength".into(),
            self.max_recv_data_segment_length.to_string(),
        );
        m.insert("MaxBurstLength".into(), self.max_burst_length.to_string());
        m.insert(
            "FirstBurstLength".into(),
            self.first_burst_length.to_string(),
        );
        m.insert("InitialR2T".into(), yes_no(self.initial_r2t).into());
        m.insert("ImmediateData".into(), yes_no(self.immediate_data).into());
        m
    }

    /// Resolves this side's offer against a peer's keys, RFC-style:
    /// numeric limits take the minimum, `InitialR2T` is OR-ed,
    /// `ImmediateData` is AND-ed.
    pub fn negotiate(&self, peer: &BTreeMap<String, String>) -> SessionParams {
        let num = |key: &str, ours: u32| -> u32 {
            peer.get(key)
                .and_then(|v| v.parse::<u32>().ok())
                .map(|theirs| theirs.min(ours))
                .unwrap_or(ours)
        };
        let boolean =
            |key: &str| -> Option<bool> { peer.get(key).map(|v| v.eq_ignore_ascii_case("yes")) };
        SessionParams {
            max_recv_data_segment_length: num(
                "MaxRecvDataSegmentLength",
                self.max_recv_data_segment_length,
            ),
            max_burst_length: num("MaxBurstLength", self.max_burst_length),
            first_burst_length: num("FirstBurstLength", self.first_burst_length),
            initial_r2t: boolean("InitialR2T").map_or(self.initial_r2t, |t| t || self.initial_r2t),
            immediate_data: boolean("ImmediateData")
                .map_or(self.immediate_data, |t| t && self.immediate_data),
        }
    }
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}

/// Encodes key=value pairs as NUL-separated login/text data.
pub fn encode_text(keys: &BTreeMap<String, String>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in keys {
        out.extend_from_slice(k.as_bytes());
        out.push(b'=');
        out.extend_from_slice(v.as_bytes());
        out.push(0);
    }
    out
}

/// Decodes NUL-separated key=value login/text data (ignores malformed
/// entries).
pub fn decode_text(data: &[u8]) -> BTreeMap<String, String> {
    let mut m = BTreeMap::new();
    for entry in data.split(|&b| b == 0) {
        if entry.is_empty() {
            continue;
        }
        if let Some(eq) = entry.iter().position(|&b| b == b'=') {
            let k = String::from_utf8_lossy(&entry[..eq]).into_owned();
            let v = String::from_utf8_lossy(&entry[eq + 1..]).into_owned();
            m.insert(k, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let mut keys = BTreeMap::new();
        keys.insert(
            "InitiatorName".to_string(),
            "iqn.2016-04.org.storm:host-c1".to_string(),
        );
        keys.insert("MaxBurstLength".to_string(), "262144".to_string());
        let encoded = encode_text(&keys);
        assert_eq!(decode_text(&encoded), keys);
    }

    #[test]
    fn decode_skips_garbage() {
        let m = decode_text(b"ok=1\0novalue\0\0k=v\0");
        assert_eq!(m.len(), 2);
        assert_eq!(m["ok"], "1");
        assert_eq!(m["k"], "v");
    }

    #[test]
    fn negotiation_takes_minimum_of_numeric_limits() {
        let ours = SessionParams::default();
        let mut peer = BTreeMap::new();
        peer.insert("MaxRecvDataSegmentLength".to_string(), "8192".to_string());
        peer.insert("MaxBurstLength".to_string(), "1048576".to_string());
        let got = ours.negotiate(&peer);
        assert_eq!(got.max_recv_data_segment_length, 8192);
        assert_eq!(got.max_burst_length, 256 * 1024); // ours was smaller
        assert_eq!(got.first_burst_length, 64 * 1024); // peer silent: keep ours
    }

    #[test]
    fn negotiation_boolean_semantics() {
        let ours = SessionParams::default(); // initial_r2t=No, immediate=Yes
        let mut peer = BTreeMap::new();
        peer.insert("InitialR2T".to_string(), "Yes".to_string());
        peer.insert("ImmediateData".to_string(), "No".to_string());
        let got = ours.negotiate(&peer);
        assert!(got.initial_r2t, "InitialR2T is OR-ed");
        assert!(!got.immediate_data, "ImmediateData is AND-ed");
    }

    #[test]
    fn params_to_keys_and_back_is_stable() {
        let p = SessionParams::default();
        let keys = p.to_keys();
        // Negotiating against our own keys must be a fixed point.
        assert_eq!(p.negotiate(&keys), p);
    }
}

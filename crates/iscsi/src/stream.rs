//! Incremental PDU framing over a TCP byte stream.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::pdu::{data_segment_length, padded, Pdu, PduError, BHS_LEN};

/// One reassembled PDU together with its original wire image.
///
/// `wire` holds the exact received bytes of the PDU (header, data, pad) as
/// refcounted chunks in order — usually a single chunk once adjacent TCP
/// segments re-join. An active relay forwarding the PDU verbatim pushes
/// these chunks straight into its send queue instead of re-encoding.
#[derive(Debug, Clone)]
pub struct PduWire {
    /// The decoded PDU.
    pub pdu: Pdu,
    /// The 48-byte basic header segment as received.
    pub bhs: [u8; BHS_LEN],
    /// The data segment view (shares wire storage when contiguous).
    pub data: Bytes,
    /// The PDU's wire bytes as received, in order.
    pub wire: Vec<Bytes>,
}

/// Reassembles PDUs from arbitrarily fragmented stream bytes.
///
/// This is the parsing core of StorM's middle-box API: pseudo-server and
/// pseudo-client processes feed received TCP bytes in and get whole PDUs
/// out, regardless of how the network segmented them.
///
/// Internally the stream is a deque of refcounted [`Bytes`] chunks, never
/// one flat buffer: adjacent chunks that continue the same backing
/// storage re-join for free ([`Bytes::try_join`]), so a data segment that
/// was cut into TCP segments on the sender side comes back out as a
/// single zero-copy slice of the sender's original allocation. The only
/// unconditional copy is the 48-byte header (read into a stack array for
/// decoding); data-segment bytes are copied *only* when a segment
/// genuinely straddles two allocations, and [`bytes_copied`] counts every
/// such byte so fast paths can prove themselves copy-free.
///
/// [`bytes_copied`]: PduStream::bytes_copied
#[derive(Debug, Default)]
pub struct PduStream {
    chunks: VecDeque<Bytes>,
    len: usize,
    pdus_out: u64,
    bytes_copied: u64,
    header_bytes_copied: u64,
}

impl PduStream {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends stream bytes and returns every PDU completed by them
    /// (copying convenience wrapper over [`PduStream::feed_bytes`]).
    ///
    /// # Errors
    ///
    /// Propagates [`PduError`] for undecodable headers; the stream is
    /// unusable afterwards (callers drop the connection, as a real
    /// initiator/target would).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Pdu>, PduError> {
        // storm-lint: allow(no-hot-path-copy): documented copying
        // convenience wrapper; hot callers use feed_bytes.
        let out = self.feed_bytes(Bytes::copy_from_slice(bytes))?;
        Ok(out.into_iter().map(|p| p.pdu).collect())
    }

    /// Appends a received chunk *by reference* and returns every PDU
    /// completed by it, each with its original wire image.
    ///
    /// # Errors
    ///
    /// Propagates [`PduError`] for undecodable headers.
    pub fn feed_bytes(&mut self, bytes: Bytes) -> Result<Vec<PduWire>, PduError> {
        if !bytes.is_empty() {
            self.push_chunk(bytes);
        }
        let mut out = Vec::new();
        while let Some(pw) = self.next_pdu()? {
            out.push(pw);
        }
        Ok(out)
    }

    /// Bytes buffered awaiting a complete PDU.
    pub fn pending_bytes(&self) -> usize {
        self.len
    }

    /// Total PDUs produced.
    pub fn pdus_out(&self) -> u64 {
        self.pdus_out
    }

    /// Data-segment bytes that had to be memcpy'd during reassembly
    /// (segments straddling two receive allocations). Zero on the relay
    /// fast path.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Header bytes copied to the decode scratch buffer (48 per PDU —
    /// the allowed fixed-size copy).
    pub fn header_bytes_copied(&self) -> u64 {
        self.header_bytes_copied
    }

    fn push_chunk(&mut self, bytes: Bytes) {
        self.len += bytes.len();
        if let Some(last) = self.chunks.back_mut() {
            if let Some(joined) = last.try_join(&bytes) {
                *last = joined;
                return;
            }
        }
        self.chunks.push_back(bytes);
    }

    /// Copies the first `n` buffered bytes into `dst` without consuming.
    fn peek_into(&self, dst: &mut [u8]) {
        let mut off = 0;
        for c in &self.chunks {
            if off == dst.len() {
                break;
            }
            let take = (dst.len() - off).min(c.len());
            // storm-lint: allow(no-hot-path-copy): the 48-byte header
            // decode copy, permitted by design and counted separately.
            dst[off..off + take].copy_from_slice(&c.chunk()[..take]);
            off += take;
        }
        debug_assert_eq!(off, dst.len());
    }

    /// Pops the next `total` bytes off the stream as wire chunks.
    ///
    /// # Errors
    ///
    /// [`PduError::Desync`] if the chunk list runs dry before `total`
    /// bytes — `len` accounting no longer matches the buffered chunks.
    /// The caller checks `len` first, so this only fires on an internal
    /// bookkeeping bug; reporting it (instead of panicking) lets a relay
    /// drop the one poisoned connection and keep serving the rest.
    fn take_wire(&mut self, mut total: usize) -> Result<Vec<Bytes>, PduError> {
        // storm-lint: allow(no-alloc-on-datapath): the wire image owns
        // its chunk list by contract — one exact-sized Vec per completed
        // PDU, not per byte; payload Bytes stay refcounted.
        let mut wire = Vec::with_capacity(1);
        while total > 0 {
            let Some(front) = self.chunks.front_mut() else {
                return Err(PduError::Desync);
            };
            if front.len() <= total {
                total -= front.len();
                self.len -= front.len();
                match self.chunks.pop_front() {
                    Some(c) => wire.push(c),
                    None => return Err(PduError::Desync),
                }
            } else {
                let head = front.slice(..total);
                *front = front.slice(total..);
                self.len -= total;
                wire.push(head);
                total = 0;
            }
        }
        Ok(wire)
    }

    /// Extracts `[start, start+len)` of the wire image as one `Bytes`:
    /// a zero-copy slice when the range sits inside a single chunk, an
    /// assembled (counted) copy otherwise.
    fn extract(&mut self, wire: &[Bytes], start: usize, len: usize) -> Bytes {
        if len == 0 {
            return Bytes::new();
        }
        let mut off = 0;
        for c in wire {
            if start >= off && start + len <= off + c.len() {
                return c.slice(start - off..start - off + len);
            }
            off += c.len();
        }
        // Straddles chunk boundaries: assemble (the counted slow path).
        self.bytes_copied += len as u64;
        // storm-lint: allow(no-alloc-on-datapath): counted slow path for
        // header fields straddling a chunk boundary; the verbatim fast
        // path above returns a refcounted slice without allocating.
        let mut buf = Vec::with_capacity(len);
        let mut off = 0;
        for c in wire {
            let c_start = start.max(off);
            let c_end = (start + len).min(off + c.len());
            if c_start < c_end {
                // storm-lint: allow(no-hot-path-copy): counted slow path
                // (bytes_copied above); zero on the relay fast path.
                buf.extend_from_slice(&c.chunk()[c_start - off..c_end - off]);
            }
            off += c.len();
        }
        Bytes::from(buf)
    }

    fn next_pdu(&mut self) -> Result<Option<PduWire>, PduError> {
        if self.len < BHS_LEN {
            return Ok(None);
        }
        let mut bhs = [0u8; BHS_LEN];
        self.peek_into(&mut bhs);
        self.header_bytes_copied += BHS_LEN as u64;
        let dsl = data_segment_length(&bhs)?;
        let total = BHS_LEN + padded(dsl);
        if self.len < total {
            return Ok(None);
        }
        let wire = self.take_wire(total)?;
        let data = self.extract(&wire, BHS_LEN, dsl);
        let pdu = Pdu::decode(&bhs, data.clone())?;
        self.pdus_out += 1;
        Ok(Some(PduWire {
            pdu,
            bhs,
            data,
            wire,
        }))
    }
}

/// Data segments at least this long are enqueued as shared [`Bytes`]
/// chunks instead of being copied into the scratch buffer. Control PDUs
/// (login, text, sense data) stay below it and coalesce into a single
/// allocation; sector-sized payloads ride above it copy-free.
pub const SHARE_THRESHOLD: usize = 512;

/// Chunked wire-output builder for PDU senders.
///
/// The legacy path appended every encoded PDU to one flat `Vec<u8>`,
/// memcpy'ing each data segment on the way out. `WireBuf` instead
/// accumulates an ordered chunk list: headers, pads, and small data
/// segments batch into a scratch allocation, while large data segments
/// are pushed as refcounted [`Bytes`] views of the caller's buffer.
/// [`bytes_copied`](WireBuf::bytes_copied) counts every data-segment
/// byte that went through the scratch copy.
#[derive(Debug, Default)]
pub struct WireBuf {
    scratch: Vec<u8>,
    chunks: Vec<Bytes>,
    len: usize,
    bytes_copied: u64,
}

impl WireBuf {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Data-segment bytes that were memcpy'd into the scratch buffer
    /// (small segments below [`SHARE_THRESHOLD`]).
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    fn flush_scratch(&mut self) {
        if !self.scratch.is_empty() {
            let batch = std::mem::take(&mut self.scratch);
            self.chunks.push(Bytes::from(batch));
        }
    }

    /// Appends raw bytes by copy (headers, handshake payloads).
    pub fn push_slice(&mut self, bytes: &[u8]) {
        self.len += bytes.len();
        // storm-lint: allow(no-hot-path-copy): header/pad scratch batch;
        // data segments above SHARE_THRESHOLD never take this path, and
        // push_pdu counts every data byte that does.
        self.scratch.extend_from_slice(bytes);
    }

    /// Appends a shared chunk without copying.
    pub fn push_bytes(&mut self, bytes: Bytes) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        self.flush_scratch();
        if let Some(last) = self.chunks.last_mut() {
            if let Some(joined) = last.try_join(&bytes) {
                *last = joined;
                return;
            }
        }
        self.chunks.push(bytes);
    }

    /// Encodes a PDU into the buffer: header and pad go to scratch; the
    /// data segment is shared when large, copied (and counted) when
    /// below [`SHARE_THRESHOLD`].
    pub fn push_pdu(&mut self, pdu: &Pdu) {
        let w = pdu.wire_chunks();
        self.push_slice(&w.header);
        if w.data.len() >= SHARE_THRESHOLD {
            self.push_bytes(w.data);
        } else {
            self.bytes_copied += w.data.len() as u64;
            self.push_slice(&w.data);
        }
        self.push_slice(w.pad);
    }

    /// Drains the queued wire image as ordered chunks.
    pub fn take_chunks(&mut self) -> Vec<Bytes> {
        self.flush_scratch();
        self.len = 0;
        std::mem::take(&mut self.chunks)
    }

    /// Drains the queued wire image as one flat vector (copying
    /// compatibility path for tests and non-hot callers).
    pub fn take_output(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for c in self.take_chunks() {
            // storm-lint: allow(no-hot-path-copy): flattening
            // compatibility path for tests and non-hot callers.
            out.extend_from_slice(&c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::{NopOut, TextRequest};

    fn nop(data: &'static [u8]) -> Pdu {
        Pdu::NopOut(NopOut {
            itt: 1,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data: Bytes::from_static(data),
        })
    }

    #[test]
    fn whole_pdus_parse() {
        let mut s = PduStream::new();
        let wire = nop(b"hello").encode();
        let got = s.feed(&wire).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], nop(b"hello"));
        assert_eq!(s.pending_bytes(), 0);
        assert_eq!(s.pdus_out(), 1);
    }

    #[test]
    fn byte_at_a_time_parse() {
        let mut s = PduStream::new();
        let wire = nop(b"fragmented!").encode();
        let mut got = Vec::new();
        for b in &wire {
            got.extend(s.feed(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got, vec![nop(b"fragmented!")]);
    }

    #[test]
    fn multiple_pdus_in_one_chunk() {
        let mut s = PduStream::new();
        let mut wire = nop(b"one").encode();
        wire.extend(nop(b"two").encode());
        wire.extend(
            Pdu::TextRequest(TextRequest {
                final_pdu: true,
                itt: 2,
                ttt: 0xFFFF_FFFF,
                cmd_sn: 2,
                exp_stat_sn: 1,
                data: Bytes::from_static(b"k=v\0"),
            })
            .encode(),
        );
        let got = s.feed(&wire).unwrap();
        assert_eq!(got.len(), 3);
        assert!(matches!(got[2], Pdu::TextRequest(_)));
    }

    #[test]
    fn partial_then_rest() {
        let mut s = PduStream::new();
        let wire = nop(b"partial-data-segment").encode();
        let (a, b) = wire.split_at(BHS_LEN + 3);
        assert!(s.feed(a).unwrap().is_empty());
        assert_eq!(s.pending_bytes(), a.len());
        let got = s.feed(b).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn garbage_header_errors() {
        let mut s = PduStream::new();
        let mut junk = [0u8; BHS_LEN];
        junk[0] = 0x3F;
        assert!(s.feed(&junk).is_err());
    }

    #[test]
    fn feed_bytes_keeps_wire_and_skips_copies() {
        // One allocation holding a whole PDU: the data view and the wire
        // image must share it, with zero data-segment copies.
        let pdu = nop(b"zero-copy-path!!");
        let whole = Bytes::from(pdu.encode());
        let mut s = PduStream::new();
        let got = s.feed_bytes(whole.clone()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pdu, pdu);
        assert_eq!(got[0].wire.len(), 1);
        assert!(got[0].wire[0].same_storage(&whole));
        assert!(got[0]
            .data
            .same_storage(&whole.slice(BHS_LEN..BHS_LEN + 16)));
        assert_eq!(s.bytes_copied(), 0);
        assert_eq!(s.header_bytes_copied(), BHS_LEN as u64);
    }

    #[test]
    fn split_segments_of_one_allocation_rejoin() {
        // Simulate sender-side TCP segmentation: slices of one allocation
        // arrive one by one and must re-join into a zero-copy data view.
        let pdu = nop(b"travels in many segments, one allocation");
        let whole = Bytes::from(pdu.encode());
        let mut s = PduStream::new();
        let mut got = Vec::new();
        let mut off = 0;
        while off < whole.len() {
            let end = (off + 7).min(whole.len());
            got.extend(s.feed_bytes(whole.slice(off..end)).unwrap());
            off = end;
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pdu, pdu);
        assert_eq!(got[0].wire.len(), 1, "adjacent slices re-join");
        assert_eq!(s.bytes_copied(), 0, "no data-segment copies");
    }

    #[test]
    fn wirebuf_shares_large_segments_and_batches_small() {
        let big = Bytes::from(vec![0xAB; SHARE_THRESHOLD]);
        let big_pdu = Pdu::NopOut(NopOut {
            itt: 7,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 3,
            exp_stat_sn: 1,
            data: big.clone(),
        });
        let small_pdu = nop(b"small");
        let mut w = WireBuf::new();
        w.push_pdu(&small_pdu);
        w.push_pdu(&big_pdu);
        assert_eq!(w.len(), small_pdu.wire_len() + big_pdu.wire_len());
        let chunks = w.take_chunks();
        // scratch batch (small pdu + big header), shared data, (no pad: aligned)
        assert_eq!(chunks.len(), 2);
        assert!(chunks[1].same_storage(&big));
        assert_eq!(w.bytes_copied(), 5, "only the small data segment copies");
        assert!(w.is_empty());

        // Flattened output must equal the legacy encoding.
        let mut w2 = WireBuf::new();
        w2.push_pdu(&small_pdu);
        w2.push_pdu(&big_pdu);
        let mut legacy = small_pdu.encode();
        legacy.extend(big_pdu.encode());
        assert_eq!(w2.take_output(), legacy);
    }

    #[test]
    fn foreign_chunks_count_copies() {
        // Two separate allocations carrying one PDU: the data segment
        // straddles them, so reassembly must copy and count it.
        let pdu = nop(b"straddles allocations");
        let wire = pdu.encode();
        let cut = BHS_LEN + 4;
        let mut s = PduStream::new();
        assert!(s
            .feed_bytes(Bytes::copy_from_slice(&wire[..cut]))
            .unwrap()
            .is_empty());
        let got = s.feed_bytes(Bytes::copy_from_slice(&wire[cut..])).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pdu, pdu);
        assert_eq!(s.bytes_copied(), pdu.data().len() as u64);
    }
}

//! Incremental PDU framing over a TCP byte stream.

use bytes::{Bytes, BytesMut};

use crate::pdu::{data_segment_length, padded, Pdu, PduError, BHS_LEN};

/// Reassembles PDUs from arbitrarily fragmented stream bytes.
///
/// This is the parsing core of StorM's middle-box API: pseudo-server and
/// pseudo-client processes feed received TCP bytes in and get whole PDUs
/// out, regardless of how the network segmented them.
#[derive(Debug, Default)]
pub struct PduStream {
    buf: BytesMut,
    pdus_out: u64,
}

impl PduStream {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends stream bytes and returns every PDU completed by them.
    ///
    /// # Errors
    ///
    /// Propagates [`PduError`] for undecodable headers; the stream is
    /// unusable afterwards (callers drop the connection, as a real
    /// initiator/target would).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Pdu>, PduError> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < BHS_LEN {
                break;
            }
            let dsl = data_segment_length(&self.buf[..BHS_LEN]);
            let total = BHS_LEN + padded(dsl);
            if self.buf.len() < total {
                break;
            }
            let whole = self.buf.split_to(total).freeze();
            let data: Bytes = whole.slice(BHS_LEN..BHS_LEN + dsl);
            out.push(Pdu::decode(&whole[..BHS_LEN], data)?);
            self.pdus_out += 1;
        }
        Ok(out)
    }

    /// Bytes buffered awaiting a complete PDU.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Total PDUs produced.
    pub fn pdus_out(&self) -> u64 {
        self.pdus_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::{NopOut, TextRequest};

    fn nop(data: &'static [u8]) -> Pdu {
        Pdu::NopOut(NopOut {
            itt: 1,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data: Bytes::from_static(data),
        })
    }

    #[test]
    fn whole_pdus_parse() {
        let mut s = PduStream::new();
        let wire = nop(b"hello").encode();
        let got = s.feed(&wire).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], nop(b"hello"));
        assert_eq!(s.pending_bytes(), 0);
        assert_eq!(s.pdus_out(), 1);
    }

    #[test]
    fn byte_at_a_time_parse() {
        let mut s = PduStream::new();
        let wire = nop(b"fragmented!").encode();
        let mut got = Vec::new();
        for b in &wire {
            got.extend(s.feed(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got, vec![nop(b"fragmented!")]);
    }

    #[test]
    fn multiple_pdus_in_one_chunk() {
        let mut s = PduStream::new();
        let mut wire = nop(b"one").encode();
        wire.extend(nop(b"two").encode());
        wire.extend(
            Pdu::TextRequest(TextRequest {
                final_pdu: true,
                itt: 2,
                ttt: 0xFFFF_FFFF,
                cmd_sn: 2,
                exp_stat_sn: 1,
                data: Bytes::from_static(b"k=v\0"),
            })
            .encode(),
        );
        let got = s.feed(&wire).unwrap();
        assert_eq!(got.len(), 3);
        assert!(matches!(got[2], Pdu::TextRequest(_)));
    }

    #[test]
    fn partial_then_rest() {
        let mut s = PduStream::new();
        let wire = nop(b"partial-data-segment").encode();
        let (a, b) = wire.split_at(BHS_LEN + 3);
        assert!(s.feed(a).unwrap().is_empty());
        assert_eq!(s.pending_bytes(), a.len());
        let got = s.feed(b).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn garbage_header_errors() {
        let mut s = PduStream::new();
        let mut junk = [0u8; BHS_LEN];
        junk[0] = 0x3F;
        assert!(s.feed(&junk).is_err());
    }
}

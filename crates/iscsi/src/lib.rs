//! iSCSI for StorM: wire-format codec and sans-io endpoint state machines.
//!
//! The paper's storage network speaks iSCSI between compute-host initiators
//! (Open-iSCSI) and Cinder targets (LIO); StorM's middle-box API
//! "provides iSCSI parsing logic ... to decapsulate and encapsulate iSCSI
//! packets". No maintained Rust iSCSI crate exists, so this crate
//! implements the needed subset of RFC 7143 from scratch:
//!
//! * [`Pdu`] — typed PDUs (Login, SCSI Command/Response, Data-In/Out, R2T,
//!   NOP, Text, Logout) with exact 48-byte BHS encode/decode.
//! * [`Cdb`] — SCSI CDBs (READ/WRITE 10/16, READ CAPACITY, INQUIRY, TEST
//!   UNIT READY, SYNCHRONIZE CACHE).
//! * [`PduStream`] — incremental framing over a TCP byte stream.
//! * [`Initiator`] / [`TargetConn`] — sans-io session state machines:
//!   bytes in, events + bytes out; no I/O or clock dependencies, so they
//!   run both inside the simulator and in threaded pipelines.
//!
//! # Example: login and a 4 KiB write, initiator against target
//!
//! ```
//! use storm_iscsi::{Initiator, InitiatorConfig, InitiatorEvent, TargetConn, TargetConfig,
//!                   TargetEvent, ScsiStatus};
//!
//! let mut ini = Initiator::new(InitiatorConfig::example());
//! let mut tgt = TargetConn::new(TargetConfig::example(2048));
//!
//! ini.start_login();
//! // Shuttle bytes until the session reaches full-feature phase.
//! let mut logged_in = false;
//! for _ in 0..8 {
//!     for ev in tgt.feed(&ini.take_output()) { let _ = ev; }
//!     for ev in ini.feed(&tgt.take_output()) {
//!         if matches!(ev, InitiatorEvent::LoginComplete) { logged_in = true; }
//!     }
//! }
//! assert!(logged_in);
//!
//! let tag = ini.write(0, bytes::Bytes::from(vec![0xAA; 4096]));
//! let mut done = false;
//! for _ in 0..8 {
//!     for ev in tgt.feed(&ini.take_output()) {
//!         if let TargetEvent::WriteReady { itt, lba, data } = ev {
//!             assert_eq!(lba, 0);
//!             assert_eq!(data.len(), 4096);
//!             tgt.complete_write(itt, ScsiStatus::Good);
//!         }
//!     }
//!     for ev in ini.feed(&tgt.take_output()) {
//!         if let InitiatorEvent::WriteComplete { tag: t, status } = ev {
//!             assert_eq!(t, tag);
//!             assert_eq!(status, ScsiStatus::Good);
//!             done = true;
//!         }
//!     }
//! }
//! assert!(done);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdb;
mod initiator;
mod iqn;
mod params;
mod pdu;
mod stream;
mod target;
mod transport;

pub use cdb::{Cdb, ScsiStatus};
pub use initiator::{Initiator, InitiatorConfig, InitiatorEvent, IoTag};
pub use iqn::Iqn;
pub use params::SessionParams;
pub use pdu::{
    data_segment_length, DataIn, DataOut, LoginRequest, LoginResponse, LogoutRequest,
    LogoutResponse, NopIn, NopOut, Pdu, PduError, R2t, ScsiCommand, ScsiResponse, TextRequest,
    TextResponse, WireChunks, BHS_LEN,
};
pub use stream::{PduStream, PduWire, WireBuf, SHARE_THRESHOLD};
pub use target::{TargetConfig, TargetConn, TargetEvent};
pub use transport::{IscsiTransport, TargetTransport, Transport, TransportEvent, TransportKind};

/// The IANA-assigned iSCSI target port.
pub const ISCSI_PORT: u16 = 3260;

//! Protocol-agnostic block transport traits.
//!
//! StorM's interception API claims to be wire-protocol agnostic; this
//! module makes that claim structural. [`Transport`] is the guest-side
//! face of a block session (login, tagged reads/writes/flushes, sans-io
//! bytes in/out) and [`TargetTransport`] the storage-server side. The
//! iSCSI stack implements both here ([`IscsiTransport`] wrapping
//! [`Initiator`], plus a [`TargetTransport`] impl on [`TargetConn`]);
//! `storm-nvmeq` implements them for the NVMe-oF-style multi-queue
//! protocol. The guest client, the cloud target host and the benches
//! select a protocol with [`TransportKind`] and never touch wire formats
//! again.
//!
//! Both traits stay sans-io: no clocks, no sockets. The one concession
//! to time is the completion-coalescing hook on [`TargetTransport`] —
//! interrupt moderation needs deadlines, so the hosting app passes the
//! current simulation time as plain nanoseconds and arms its own timer
//! for [`TargetTransport::cq_deadline_ns`].

use bytes::Bytes;

use crate::cdb::ScsiStatus;
use crate::initiator::{Initiator, InitiatorEvent, IoTag};
use crate::target::{TargetConn, TargetEvent};

/// Which wire protocol a session speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// RFC 7143 iSCSI over TCP (the paper's deployment).
    #[default]
    Iscsi,
    /// The NVMe-oF-style paired submission/completion queue protocol
    /// (`storm-nvmeq`): 64-byte SQEs, batched doorbell frames, coalesced
    /// completions.
    Nvmeq,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Iscsi => write!(f, "iscsi"),
            TransportKind::Nvmeq => write!(f, "nvmeq"),
        }
    }
}

/// Events a [`Transport`] surfaces to the guest client.
///
/// One-to-one with the I/O lifecycle the guest cares about; protocol
/// details (login phases, R2T rounds, ring doorbells) stay inside the
/// transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent {
    /// The session is ready for I/O.
    Ready,
    /// The target refused the session.
    ConnectFailed {
        /// Protocol-specific status class.
        class: u8,
        /// Detail within the class.
        detail: u8,
    },
    /// A read finished.
    ReadDone {
        /// The I/O's tag.
        tag: IoTag,
        /// Completion status.
        status: ScsiStatus,
        /// The data (empty on error).
        data: Bytes,
    },
    /// A write finished.
    WriteDone {
        /// The I/O's tag.
        tag: IoTag,
        /// Completion status.
        status: ScsiStatus,
    },
    /// A flush finished.
    FlushDone {
        /// The I/O's tag.
        tag: IoTag,
        /// Completion status.
        status: ScsiStatus,
    },
    /// The session shut down cleanly.
    Closed,
    /// The peer violated the protocol; drop the connection.
    ProtocolError(String),
}

/// Guest-side block transport: a sans-io session state machine.
///
/// Bytes from the socket go into [`feed_bytes`](Transport::feed_bytes),
/// completed events come out; queued wire bytes drain through
/// [`take_wire`](Transport::take_wire) as refcounted chunks so payloads
/// travel by reference. Commands are tagged with [`IoTag`]s that the
/// transport guarantees unique among in-flight I/O, which is what lets a
/// client keep `queue_depth` commands outstanding concurrently.
pub trait Transport: std::fmt::Debug {
    /// The protocol this session speaks.
    fn kind(&self) -> TransportKind;

    /// Begins session establishment (login / queue connect).
    fn start(&mut self);

    /// Whether the session is ready for I/O.
    fn is_ready(&self) -> bool;

    /// Issues a tagged read of `sectors` sectors at `lba`.
    fn read(&mut self, lba: u64, sectors: u32) -> IoTag;

    /// Issues a tagged write of whole sectors at `lba`.
    fn write(&mut self, lba: u64, data: Bytes) -> IoTag;

    /// Issues a tagged flush/barrier.
    fn flush(&mut self) -> IoTag;

    /// Begins a clean shutdown.
    fn shutdown(&mut self);

    /// Commands issued but not yet completed.
    fn in_flight(&self) -> usize;

    /// Feeds received bytes; returns completed events.
    fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TransportEvent>;

    /// Drains queued wire bytes as refcounted chunks.
    fn take_wire(&mut self) -> Vec<Bytes>;

    /// Payload bytes memcpy'd by this endpoint (encode + reassembly).
    fn bytes_copied(&self) -> u64;

    /// High-water mark of commands simultaneously in the submission
    /// ring. `0` for protocols without rings.
    fn sq_peak(&self) -> usize {
        0
    }

    /// `(doorbell frames sent, SQEs they carried)` — batching efficiency
    /// of the submission path. `(0, 0)` for protocols without doorbells.
    fn doorbell_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// `(completion frames received, CQEs they carried)` — coalescing
    /// efficiency of the completion path. `(0, 0)` for protocols without
    /// completion queues.
    fn cq_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Storage-server-side transport: one accepted connection.
///
/// The hosting app feeds received bytes, serves the surfaced
/// [`TargetEvent`]s against its disk model, and answers with the
/// `complete_*` calls. `now_ns` is the current simulation time in
/// nanoseconds; protocols with completion coalescing (nvmeq) use it to
/// run the interrupt-moderation clock, iSCSI ignores it.
pub trait TargetTransport: std::fmt::Debug {
    /// The protocol this connection speaks.
    fn kind(&self) -> TransportKind;

    /// Feeds received bytes; returns events for the hosting app.
    fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TargetEvent>;

    /// Completes a read surfaced by [`TargetEvent::ReadReady`].
    fn complete_read(&mut self, now_ns: u64, itt: u32, data: Bytes, status: ScsiStatus);

    /// Completes a write surfaced by [`TargetEvent::WriteReady`].
    fn complete_write(&mut self, now_ns: u64, itt: u32, status: ScsiStatus);

    /// Completes a flush surfaced by [`TargetEvent::FlushReady`].
    fn complete_flush(&mut self, now_ns: u64, itt: u32, status: ScsiStatus);

    /// Drains queued wire bytes as refcounted chunks.
    fn take_wire(&mut self) -> Vec<Bytes>;

    /// Whether session establishment completed.
    fn is_logged_in(&self) -> bool;

    /// Payload bytes memcpy'd on the encode path.
    fn bytes_copied(&self) -> u64;

    /// When the interrupt-moderation timer should next fire, if
    /// completions are being held for coalescing. The hosting app arms a
    /// timer for this instant and calls [`flush_cq`](Self::flush_cq)
    /// when it fires. `None` for protocols without coalescing.
    fn cq_deadline_ns(&self) -> Option<u64> {
        None
    }

    /// Flushes held completions to the wire (interrupt-moderation timer
    /// fired). No-op for protocols without coalescing.
    fn flush_cq(&mut self, _now_ns: u64) {}

    /// Commands accepted but not yet completed (queue occupancy).
    fn in_flight(&self) -> usize;

    /// High-water mark of [`in_flight`](Self::in_flight) over the
    /// connection's lifetime.
    fn occupancy_peak(&self) -> usize;
}

/// The iSCSI implementation of [`Transport`]: a thin adapter over
/// [`Initiator`] that maps [`InitiatorEvent`]s onto [`TransportEvent`]s.
#[derive(Debug)]
pub struct IscsiTransport {
    ini: Initiator,
}

impl IscsiTransport {
    /// Wraps a configured initiator.
    pub fn new(ini: Initiator) -> Self {
        IscsiTransport { ini }
    }

    /// The wrapped initiator (session parameters, counters).
    pub fn initiator(&self) -> &Initiator {
        &self.ini
    }
}

impl Transport for IscsiTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Iscsi
    }

    fn start(&mut self) {
        self.ini.start_login();
    }

    fn is_ready(&self) -> bool {
        self.ini.is_logged_in()
    }

    fn read(&mut self, lba: u64, sectors: u32) -> IoTag {
        self.ini.read(lba, sectors)
    }

    fn write(&mut self, lba: u64, data: Bytes) -> IoTag {
        self.ini.write(lba, data)
    }

    fn flush(&mut self) -> IoTag {
        self.ini.flush()
    }

    fn shutdown(&mut self) {
        self.ini.logout();
    }

    fn in_flight(&self) -> usize {
        self.ini.in_flight()
    }

    fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TransportEvent> {
        self.ini
            .feed_bytes(bytes)
            .into_iter()
            .map(|ev| match ev {
                InitiatorEvent::LoginComplete => TransportEvent::Ready,
                InitiatorEvent::LoginFailed { class, detail } => {
                    TransportEvent::ConnectFailed { class, detail }
                }
                InitiatorEvent::ReadComplete { tag, status, data } => {
                    TransportEvent::ReadDone { tag, status, data }
                }
                InitiatorEvent::WriteComplete { tag, status } => {
                    TransportEvent::WriteDone { tag, status }
                }
                InitiatorEvent::FlushComplete { tag, status } => {
                    TransportEvent::FlushDone { tag, status }
                }
                InitiatorEvent::LoggedOut => TransportEvent::Closed,
                InitiatorEvent::ProtocolError(e) => TransportEvent::ProtocolError(e),
            })
            .collect()
    }

    fn take_wire(&mut self) -> Vec<Bytes> {
        self.ini.take_wire()
    }

    fn bytes_copied(&self) -> u64 {
        self.ini.bytes_copied()
    }
}

impl TargetTransport for TargetConn {
    fn kind(&self) -> TransportKind {
        TransportKind::Iscsi
    }

    fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TargetEvent> {
        TargetConn::feed_bytes(self, bytes)
    }

    fn complete_read(&mut self, _now_ns: u64, itt: u32, data: Bytes, status: ScsiStatus) {
        TargetConn::complete_read(self, itt, data, status);
    }

    fn complete_write(&mut self, _now_ns: u64, itt: u32, status: ScsiStatus) {
        TargetConn::complete_write(self, itt, status);
    }

    fn complete_flush(&mut self, _now_ns: u64, itt: u32, status: ScsiStatus) {
        TargetConn::complete_flush(self, itt, status);
    }

    fn take_wire(&mut self) -> Vec<Bytes> {
        TargetConn::take_wire(self)
    }

    fn is_logged_in(&self) -> bool {
        TargetConn::is_logged_in(self)
    }

    fn bytes_copied(&self) -> u64 {
        TargetConn::bytes_copied(self)
    }

    fn in_flight(&self) -> usize {
        TargetConn::in_flight(self)
    }

    fn occupancy_peak(&self) -> usize {
        TargetConn::occupancy_peak(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initiator::InitiatorConfig;
    use crate::target::TargetConfig;

    /// The full write/read cycle from the crate example, driven purely
    /// through the trait objects — no iSCSI types leak through.
    #[test]
    fn iscsi_session_through_trait_objects() {
        let mut ini: Box<dyn Transport> = Box::new(IscsiTransport::new(Initiator::new(
            InitiatorConfig::example(),
        )));
        let mut tgt: Box<dyn TargetTransport> =
            Box::new(TargetConn::new(TargetConfig::example(2048)));
        assert_eq!(ini.kind(), TransportKind::Iscsi);
        assert_eq!(tgt.kind(), TransportKind::Iscsi);

        ini.start();
        let mut ready = false;
        for _ in 0..8 {
            for c in ini.take_wire() {
                let _ = tgt.feed_bytes(c);
            }
            for c in tgt.take_wire() {
                ready |= ini
                    .feed_bytes(c)
                    .iter()
                    .any(|e| matches!(e, TransportEvent::Ready));
            }
        }
        assert!(ready && ini.is_ready() && tgt.is_logged_in());
        assert_eq!(tgt.cq_deadline_ns(), None, "iscsi never coalesces");

        let wtag = ini.write(0, Bytes::from(vec![0xAA; 4096]));
        let mut done = false;
        for _ in 0..8 {
            for c in ini.take_wire() {
                for ev in tgt.feed_bytes(c) {
                    if let TargetEvent::WriteReady { itt, lba, data } = ev {
                        assert_eq!((lba, data.len()), (0, 4096));
                        tgt.complete_write(0, itt, ScsiStatus::Good);
                    }
                }
            }
            for c in tgt.take_wire() {
                for ev in ini.feed_bytes(c) {
                    if let TransportEvent::WriteDone { tag, status } = ev {
                        assert_eq!((tag, status), (wtag, ScsiStatus::Good));
                        done = true;
                    }
                }
            }
        }
        assert!(done);
        assert_eq!(ini.in_flight(), 0);
        assert_eq!(tgt.in_flight(), 0);
        assert!(tgt.occupancy_peak() >= 1);
    }
}
